#!/usr/bin/env python
"""Scenario: end-to-end SpMV tuning (the paper's Sec. IV-D story).

A solver team wants the fastest repeated SpMV for its matrix.  The knobs
are (1) which partitioner produces the MPI ranks and (2) which mapping
algorithm places them on the allocated nodes.  This script sweeps both
and simulates 500 SpMV iterations for every combination — reproducing
the paper's observation that partitioning *and* mapping both matter, and
that TH tracks the execution time.

Run:  python examples/spmv_pipeline.py
"""

import numpy as np

from repro import (
    AllocationSpec,
    Hypergraph,
    MapRequest,
    MappingService,
    SparseAllocator,
    SpMVSimulator,
    TaskGraph,
    generate_matrix,
    get_partitioner,
    torus_for_job,
)

PROCS, PPN = 128, 4
PARTITIONERS = ("SCOTCH", "PATOH", "UMPATM")
MAPPERS = ("DEF", "UG", "UWH")


def main() -> None:
    matrix = generate_matrix("cage", 3000, seed=0)
    h = Hypergraph.from_matrix(matrix)
    nodes = PROCS // PPN
    machine = SparseAllocator(torus_for_job(nodes)).allocate(
        AllocationSpec(num_nodes=nodes, procs_per_node=PPN, fragmentation=0.4, seed=2)
    )
    sim = SpMVSimulator(iterations=500)
    service = MappingService()  # one shared artifact cache for the sweep

    print(f"SpMV on {matrix.name}: {PROCS} ranks, {nodes} nodes, torus "
          f"{machine.torus.dims}")
    print(f"\n{'partitioner':>12s} {'mapper':>6s} {'TH':>8s} {'MC':>8s} "
          f"{'time(s)':>9s}")
    print("-" * 48)

    best = (None, None, np.inf)
    for pname in PARTITIONERS:
        part = get_partitioner(pname).partition(
            matrix, PROCS, seed=1, hypergraph=h
        ).part
        loads = np.bincount(part, weights=h.loads, minlength=PROCS)
        tg = TaskGraph.from_comm_triplets(
            PROCS, h.comm_triplets(part, PROCS), loads=loads
        )
        # One batched request per task graph: the service computes the
        # shared grouping once and runs every mapper on top of it.
        responses = service.map_batch(
            MapRequest(
                task_graph=tg,
                machine=machine,
                algorithms=MAPPERS,
                seed=3,
                evaluate=True,
            )
        )
        for res in responses:
            t = sim.execution_time(tg, machine, res.fine_gamma)
            print(f"{pname:>12s} {res.algorithm:>6s} {res.metrics.th:8.0f} "
                  f"{res.metrics.mc:8.2f} {t:9.4f}")
            if t < best[2]:
                best = (pname, res.algorithm, t)

    print(f"\nFastest combination: {best[0]} + {best[1]} ({best[2]:.4f} s)")


if __name__ == "__main__":
    main()
