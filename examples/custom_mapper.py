#!/usr/bin/env python
"""Scenario: plug a third-party mapping algorithm into the registry.

The service's registry is open: any function that places the coarse
(node-level) task graph can be registered with the public
``@register_mapper`` decorator and immediately composes with the
built-in stages — it inherits the shared grouping, the Δ-budget WH
refinement, batch execution and the artifact cache, and it shows up in
``python -m repro.api list`` next to the paper's algorithms.

The custom algorithm here is a *geometric ordering* placement in the
spirit of Deveci et al.'s "Geometric Partitioning and Ordering
Strategies for Task Mapping": allocated nodes are linearized along a
boustrophedon space-filling curve through the torus (the ALPS
intuition), the task groups are linearized by a heaviest-edge graph
traversal, and the two linear orders are zipped together — heavy
communicators end up on curve-adjacent nodes.

This prototype has since been promoted into a first-class family:
``repro.mapping.sfc`` registers ``SFC``/``SFCWH`` (Hilbert/Gray curves
from ``repro.util.sfc``, capacity-aware zip) as builtins — the run
below puts the built-in SFC next to the hand-rolled SNAKE so you can
see the registry treating both identically.

Run:  python examples/custom_mapper.py
"""

import numpy as np

from repro import (
    AllocationSpec,
    Hypergraph,
    MapRequest,
    MappingService,
    SparseAllocator,
    TaskGraph,
    generate_matrix,
    get_partitioner,
    register_mapper,
    registered_mappers,
    torus_for_job,
)
from repro.util.sfc import snake3d_order

PROCS, PPN = 96, 4


@register_mapper("SNAKE", refine=("wh",))
def snake_placement(ctx):
    """Zip a heavy-edge group order onto an SFC node order."""
    coarse = ctx.view
    machine = ctx.machine
    graph = coarse.symmetrized()

    # Nodes along the space-filling curve, restricted to the allocation.
    mask = machine.alloc_mask()
    curve = [int(n) for n in snake3d_order(machine.torus.dims) if mask[n]]

    # Groups linearized by a heaviest-edge-first traversal.
    n = coarse.num_tasks
    volume = np.zeros(n)
    np.add.at(volume, np.repeat(np.arange(n), np.diff(graph.indptr)), graph.weights)
    seen = np.zeros(n, dtype=bool)
    order = []
    while len(order) < n:
        start = int(np.argmax(np.where(seen, -np.inf, volume)))
        stack = [start]
        seen[start] = True
        while stack:
            u = stack.pop()
            order.append(u)
            nbrs = graph.indices[graph.indptr[u]:graph.indptr[u + 1]]
            wts = graph.weights[graph.indptr[u]:graph.indptr[u + 1]]
            for v in nbrs[np.argsort(wts)]:  # heaviest popped first
                if not seen[v]:
                    seen[v] = True
                    stack.append(int(v))

    # Zip the two orders, respecting per-node capacities.
    gamma = np.full(n, -1, dtype=np.int64)
    caps = machine.node_capacities().astype(np.float64)
    weights = coarse.graph.vertex_weights
    pending = list(order)
    for node in curve:
        for i, g in enumerate(pending):
            if weights[g] <= caps[node] + 1e-9:
                gamma[g] = node
                pending.pop(i)
                break
    for g in pending:  # leftover (heterogeneous caps): biggest free node
        free = [node for node in curve if node not in gamma]
        gamma[g] = max(free, key=lambda x: caps[x])
    return gamma


def main() -> None:
    print(f"Registered mappers: {', '.join(registered_mappers())}")

    matrix = generate_matrix("cage", 2400, seed=1)
    h = Hypergraph.from_matrix(matrix)
    part = get_partitioner("PATOH").partition(matrix, PROCS, seed=1, hypergraph=h).part
    loads = np.bincount(part, weights=h.loads, minlength=PROCS)
    tg = TaskGraph.from_comm_triplets(PROCS, h.comm_triplets(part, PROCS), loads=loads)
    nodes = PROCS // PPN
    machine = SparseAllocator(torus_for_job(nodes)).allocate(
        AllocationSpec(num_nodes=nodes, procs_per_node=PPN, fragmentation=0.35, seed=2)
    )

    service = MappingService()
    responses = service.map_batch(
        MapRequest(
            task_graph=tg,
            machine=machine,
            algorithms=("DEF", "UG", "UWH", "SNAKE", "SFC"),
            seed=1,
            evaluate=True,
        )
    )

    print(f"\n{'mapper':>7s} {'WH':>10s} {'MC':>8s} {'map(ms)':>8s}")
    print("-" * 38)
    for r in responses:
        print(
            f"{r.algorithm:>7s} {r.metrics.wh:10.0f} {r.metrics.mc:8.2f} "
            f"{r.map_time * 1e3:8.2f}"
        )
    # The custom mapper shares UG/UWH's cached grouping:
    grouping = service.cache.stats("grouping")
    print(
        f"\nGrouping computed {grouping.misses}× for "
        f"{len(responses)} algorithms ({grouping.hits} cache hits)."
    )


if __name__ == "__main__":
    main()
