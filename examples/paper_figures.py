#!/usr/bin/env python
"""Scenario: regenerate the paper's figures programmatically.

The experiment harness is a library, not just a benchmark suite: this
script re-creates Figure 2 (mapping metrics vs DEF) and the Table I
summary at smoke scale, then inspects the results object directly —
useful when embedding the reproduction in a notebook or sweeping custom
profiles.

Equivalent CLI:  python -m repro.experiments fig2 --profile smoke

Run:  python examples/paper_figures.py
"""

from repro.experiments import (
    format_fig2,
    format_fig3,
    format_table1,
    get_profile,
    run_fig2,
    run_table1,
)
from repro.experiments.harness import WorkloadCache


def main() -> None:
    profile = get_profile("smoke")
    cache = WorkloadCache(profile)  # shared across runners: partitions reused

    fig2 = run_fig2(profile, cache)
    print(format_fig2(fig2))
    print()
    print(format_fig3(fig2))

    # Programmatic access: which mapper wins WH at the largest scale?
    procs = fig2.proc_counts[-1]
    wh = {a: fig2.values[(procs, a, "WH")] for a in ("UG", "UWH", "UMC", "UMMC")}
    best = min(wh, key=wh.get)
    print(f"\nBest WH at {procs} procs: {best} ({wh[best]:.3f} vs DEF 1.0)")

    print()
    table1 = run_table1(profile, cache)
    print(format_table1(table1))
    gm = table1.gmean("cage_spmv")
    print(f"\nSpMV geo-mean (UWH): {gm['UWH']:.2f}  (paper: 0.91)")


if __name__ == "__main__":
    main()
