#!/usr/bin/env python
"""Quickstart: the paper's headline result in one screen.

Generates a cage15-like matrix, partitions it into MPI ranks with the
PaToH personality, allocates a sparse set of torus nodes, and maps the
ranks with all seven algorithms of the paper — printing the Sec. II
metrics for each.  UG/UWH should beat DEF on weighted hops (WH); UMC
should post the lowest maximum congestion (MC).

Run:  python examples/quickstart.py
"""

from repro import quick_map


def main() -> None:
    print("Partitioning + mapping a cage-like matrix on a 3-D torus ...")
    report = quick_map(rows=2000, procs=64, group="cage", seed=1)

    print(f"\n{'mapper':>6s} {'TH':>8s} {'WH':>10s} {'MMC':>6s} {'MC':>8s} {'AMC':>7s}")
    print("-" * 50)
    for name, m in report.items():
        print(
            f"{name:>6s} {m.th:8.0f} {m.wh:10.0f} {m.mmc:6.0f} "
            f"{m.mc:8.2f} {m.amc:7.2f}"
        )

    def_wh = report["DEF"].wh
    best = min(report, key=lambda k: report[k].wh)
    print(
        f"\nBest WH: {best} "
        f"({100 * (1 - report[best].wh / def_wh):.1f}% better than DEF)"
    )
    print(
        f"Best MC: {min(report, key=lambda k: report[k].mc)} "
        f"(DEF MC = {report['DEF'].mc:.2f})"
    )


if __name__ == "__main__":
    main()
