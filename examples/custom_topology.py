#!/usr/bin/env python
"""Scenario: bring your own machine — topology introspection and routing.

The library's machine model is not tied to the experiment harness: build
a torus with your own dimensions and bandwidths, inspect static routes,
and find the hot links of a mapping — the workflow an operator would use
to understand why a job is slow on a specific allocation.

Run:  python examples/custom_topology.py
"""

import numpy as np

from repro import Machine, TaskGraph, Torus3D, evaluate_mapping
from repro.metrics.mapping import link_congestion
from repro.topology.routing import route


def main() -> None:
    # An 8x4x4 torus with a slow Y dimension (like Gemini's).
    torus = Torus3D((8, 4, 4), bandwidths=(9.4, 4.7, 9.4))
    print(f"torus {torus.dims}: {torus.num_nodes} nodes, diameter {torus.diameter}")

    # Inspect one static route: dimension order, shortest wrap direction.
    u, v = torus.node_id(0, 0, 0), torus.node_id(6, 3, 1)
    links = route(torus, u, v)
    print(f"\nroute {u} -> {v}: {len(links)} hops "
          f"(hop distance {int(torus.hop_distance(u, v))})")
    src_nodes, dst_nodes = torus.link_endpoints(np.asarray(links))
    path = [int(src_nodes[0])] + [int(x) for x in dst_nodes]
    print("  node path:", " -> ".join(str(p) for p in path))

    # A job owns one z-plane; a 3D stencil-ish ring of 32 task groups.
    alloc = [torus.node_id(x, y, 0) for x in range(8) for y in range(4)]
    machine = Machine(torus, alloc, procs_per_node=1)
    n = 32
    src = list(range(n)) + list(range(n))
    dst = [(i + 1) % n for i in range(n)] + [(i + 5) % n for i in range(n)]
    tg = TaskGraph.from_edges(n, src, dst, [8.0] * n + [2.0] * n)

    # Identity mapping: group i on the i-th allocated node.
    gamma = np.asarray(alloc)
    metrics = evaluate_mapping(tg, machine, gamma)
    print(f"\nmapping metrics: {metrics}")

    # Find the three hottest links.
    msgs, vols = link_congestion(tg, machine, gamma)
    bw = torus.link_bandwidths()
    vc = np.divide(vols, bw, out=np.zeros_like(vols), where=bw > 0)
    hot = np.argsort(-vc)[:3]
    print("\nhottest links (volume congestion):")
    for lid in hot:
        s, d = torus.link_endpoints(int(lid))
        dim = "xyz"[(int(lid) % 6) // 2]
        print(f"  link {int(lid)} ({dim}-dim) {int(s)}->{int(d)}: "
              f"VC={vc[lid]:.2f}, {int(msgs[lid])} messages")


if __name__ == "__main__":
    main()
