#!/usr/bin/env python
"""Scenario: how allocation fragmentation changes the value of mapping.

The paper targets *sparse* allocations — non-contiguous node sets handed
out by a busy scheduler.  The natural operational question: how much
does topology-aware mapping buy as the machine gets more fragmented?

This script fixes one workload and sweeps the background occupancy of
the torus from 0% (the job gets a contiguous SFC block) to 60%
(scattered nodes), comparing DEF vs UG/UWH on weighted hops and on the
simulated communication-only runtime.  Expect the mapping gain to grow
with fragmentation — topology-awareness matters most when the scheduler
cannot give you locality for free.

Run:  python examples/allocation_study.py
"""

import numpy as np

from repro import (
    AllocationSpec,
    CommOnlyApp,
    Hypergraph,
    MapRequest,
    MappingService,
    SparseAllocator,
    TaskGraph,
    generate_matrix,
    get_partitioner,
    torus_for_job,
)

PROCS, PPN = 128, 4


def main() -> None:
    matrix = generate_matrix("rgg", 3000, seed=5)
    h = Hypergraph.from_matrix(matrix)
    part = get_partitioner("PATOH").partition(matrix, PROCS, seed=1, hypergraph=h).part
    loads = np.bincount(part, weights=h.loads, minlength=PROCS)
    tg = TaskGraph.from_comm_triplets(PROCS, h.comm_triplets(part, PROCS), loads=loads)
    nodes = PROCS // PPN
    torus = torus_for_job(nodes, headroom=3.0)
    app = CommOnlyApp(scale=65536.0)
    service = MappingService()  # shared artifact cache across the sweep

    print(f"Workload: {matrix.name}, {PROCS} ranks on {nodes} nodes "
          f"(torus {torus.dims})")
    print(f"\n{'frag':>5s} {'WH(DEF)':>9s} {'WH(UWH)':>9s} {'gain%':>6s} "
          f"{'t(DEF)':>9s} {'t(UWH)':>9s} {'speedup':>8s}")
    print("-" * 60)

    for frag in (0.0, 0.15, 0.3, 0.45, 0.6):
        machine = SparseAllocator(torus).allocate(
            AllocationSpec(
                num_nodes=nodes, procs_per_node=PPN, fragmentation=frag, seed=11
            )
        )
        responses = service.map_batch(
            MapRequest(
                task_graph=tg,
                machine=machine,
                algorithms=("DEF", "UWH"),
                seed=7,
                evaluate=True,
            )
        )
        out = {}
        for res in responses:
            t = app.execution_time(tg, machine, res.fine_gamma)
            out[res.algorithm] = (res.metrics.wh, t)
        gain = 100 * (1 - out["UWH"][0] / out["DEF"][0])
        speedup = out["DEF"][1] / out["UWH"][1]
        print(f"{frag:5.2f} {out['DEF'][0]:9.0f} {out['UWH'][0]:9.0f} "
              f"{gain:6.1f} {out['DEF'][1]:9.5f} {out['UWH'][1]:9.5f} "
              f"{speedup:8.2f}")


if __name__ == "__main__":
    main()
