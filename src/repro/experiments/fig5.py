"""Figure 5 — Trilinos/Tpetra SpMV times (cage15-like).

Same grid as Figure 4 (7 partitioners × 6 mappers) but running the SpMV
kernel simulator with *unscaled* message sizes over 500 iterations, and
reporting TH instead of WH ("its correlation with the total execution
time is better" for the latency-bound kernel).  Expected shape
(Sec. IV-D): UWH best overall (up to ~23% vs DEF), UG close, UMC less
competitive than in the comm-only case, TMAP ≈ DEF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.api.request import MapRequest
from repro.experiments.fig4 import FIG4_MAPPERS, FIG4_PARTITIONERS
from repro.experiments.harness import WorkloadCache
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.sim.spmv import SpMVSimulator
from repro.util.rng import mix_seed

__all__ = ["run_fig5", "format_fig5", "Fig5Result", "FIG5_METRICS"]

FIG5_METRICS: Tuple[str, ...] = ("TH", "MMC", "MC")


@dataclass
class Fig5Result:
    """``values[(partitioner, mapper, column)]`` normalized to DEF@PATOH."""

    profile: str
    matrix: str
    num_procs: int
    iterations: int
    values: Dict[Tuple[str, str, str], float]
    time_std: Dict[Tuple[str, str], float]


def run_fig5(
    matrix_name: str = "cage15_like",
    profile: Optional[ExperimentProfile] = None,
    cache: Optional[WorkloadCache] = None,
    *,
    alloc_seed: int = 0,
    iterations: int = 500,
) -> Fig5Result:
    """SpMV sweep for the cage-like flagship."""
    profile = profile or get_profile("ci")
    cache = cache or WorkloadCache(profile)
    procs = profile.largest_procs
    sim = SpMVSimulator(iterations=iterations)
    machine = cache.machine(procs, alloc_seed)

    raw: Dict[Tuple[str, str], Dict[str, float]] = {}
    stds: Dict[Tuple[str, str], float] = {}
    for part_tool in FIG4_PARTITIONERS:
        wl = cache.workload(matrix_name, part_tool, procs)
        responses = cache.service.map_batch(
            MapRequest(
                task_graph=wl.task_graph,
                machine=machine,
                algorithms=FIG4_MAPPERS,
                seed=mix_seed(profile.seed, 31 + alloc_seed),
                grouping_seed=cache.grouping_seed(
                    matrix_name, part_tool, procs, alloc_seed
                ),
                evaluate=True,
            )
        )
        for response in responses:
            algo = response.algorithm
            times = sim.run(
                wl.task_graph,
                machine,
                response.fine_gamma,
                repetitions=profile.repetitions,
                seed=mix_seed(profile.seed, 41 + alloc_seed),
            )
            d = response.metrics.as_dict()
            raw[(part_tool, algo)] = {
                "TH": d["TH"],
                "MMC": d["MMC"],
                "MC": d["MC"],
                "time": float(np.mean(times)),
            }
            stds[(part_tool, algo)] = float(np.std(times))

    ref = raw[("PATOH", "DEF")]
    values = {
        (pt, al, col): raw[(pt, al)][col] / ref[col]
        for (pt, al) in raw
        for col in ("TH", "MMC", "MC", "time")
    }
    time_std = {k: stds[k] / ref["time"] for k in stds}
    return Fig5Result(
        profile=profile.name,
        matrix=matrix_name,
        num_procs=procs,
        iterations=iterations,
        values=values,
        time_std=time_std,
    )


def format_fig5(result: Fig5Result) -> str:
    """Paper-layout block: per partitioner, one row per mapper."""
    lines = [
        f"Figure 5 (profile={result.profile}): SpMV on {result.matrix}, "
        f"#procs={result.num_procs}, {result.iterations} iters, "
        "normalized to DEF on PATOH"
    ]
    header = (
        f"{'partitioner':>12s} {'mapper':>6s} "
        + " ".join(f"{m:>7s}" for m in FIG5_METRICS)
        + f" {'time':>7s} {'±std':>6s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for pt in FIG4_PARTITIONERS:
        for al in FIG4_MAPPERS:
            row = " ".join(f"{result.values[(pt, al, m)]:7.3f}" for m in FIG5_METRICS)
            t = result.values[(pt, al, "time")]
            s = result.time_std[(pt, al)]
            lines.append(f"{pt:>12s} {al:>6s} {row} {t:7.3f} {s:6.3f}")
    return "\n".join(lines)
