"""Shared plumbing for the experiment runners.

Workload construction (matrix → partition → MPI task graph), machine
construction (torus sizing + sparse allocation), and a per-process memo
cache so figure runners sharing inputs (e.g. Fig. 2 and Fig. 3) don't
repeat partitioning work.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.corpus import CORPUS, load_matrix
from repro.graph.matrices import SparseMatrix
from repro.graph.task_graph import TaskGraph
from repro.hypergraph.model import Hypergraph
from repro.mapping.pipeline import MapperResult, TwoPhaseMapper, prepare_groups
from repro.metrics.mapping import MappingMetrics, evaluate_mapping
from repro.metrics.nodes import NodeMetrics, evaluate_node_metrics
from repro.metrics.partition import PartitionMetrics, evaluate_partition
from repro.partition.toolbox import get_partitioner
from repro.experiments.profiles import ExperimentProfile
from repro.topology.allocation import AllocationSpec, SparseAllocator, torus_for_job
from repro.topology.machine import Machine
from repro.util.rng import mix_seed

__all__ = ["Workload", "build_workload", "build_machine", "run_mapper", "WorkloadCache"]


@dataclass
class Workload:
    """A partitioned matrix ready for mapping experiments."""

    matrix: SparseMatrix
    hypergraph: Hypergraph
    partitioner: str
    num_procs: int
    part: np.ndarray
    task_graph: TaskGraph
    partition_metrics: PartitionMetrics


def build_workload(
    matrix: SparseMatrix,
    hypergraph: Hypergraph,
    partitioner: str,
    num_procs: int,
    seed: int,
) -> Workload:
    """Partition *matrix* into ranks with one tool; derive the task graph."""
    tool = get_partitioner(partitioner)
    result = tool.partition(matrix, num_procs, seed=seed, hypergraph=hypergraph)
    pm = evaluate_partition(hypergraph, result.part, num_procs)
    loads = np.bincount(result.part, weights=hypergraph.loads, minlength=num_procs)
    tg = TaskGraph.from_comm_triplets(
        num_procs, hypergraph.comm_triplets(result.part, num_procs), loads=loads
    )
    return Workload(
        matrix=matrix,
        hypergraph=hypergraph,
        partitioner=partitioner,
        num_procs=num_procs,
        part=result.part,
        task_graph=tg,
        partition_metrics=pm,
    )


def build_machine(
    profile: ExperimentProfile, num_procs: int, alloc_seed: int
) -> Machine:
    """Torus + sparse allocation for *num_procs* under *profile*."""
    nodes = profile.nodes_for(num_procs)
    torus = torus_for_job(nodes, headroom=profile.torus_headroom)
    allocator = SparseAllocator(torus)
    return allocator.allocate(
        AllocationSpec(
            num_nodes=nodes,
            procs_per_node=profile.procs_per_node,
            fragmentation=profile.fragmentation,
            seed=mix_seed(profile.seed, 7_700_000 + alloc_seed),
        )
    )


def run_mapper(
    name: str,
    workload: Workload,
    machine: Machine,
    *,
    seed: int,
    groups: Optional[Tuple[np.ndarray, TaskGraph]] = None,
) -> Tuple[MapperResult, MappingMetrics, NodeMetrics]:
    """Run one mapping algorithm; return result + fine-level metrics."""
    mapper = TwoPhaseMapper(algorithm=name, seed=seed)
    result = mapper.map(workload.task_graph, machine, groups=groups)
    metrics = evaluate_mapping(workload.task_graph, machine, result.fine_gamma)
    node_metrics = evaluate_node_metrics(result.coarse)
    return result, metrics, node_metrics


class WorkloadCache:
    """Per-process memoization of matrices, hypergraphs and workloads."""

    def __init__(self, profile: ExperimentProfile) -> None:
        self.profile = profile
        self._matrices: Dict[str, SparseMatrix] = {}
        self._hypergraphs: Dict[str, Hypergraph] = {}
        self._workloads: Dict[Tuple[str, str, int], Workload] = {}
        self._machines: Dict[Tuple[int, int], Machine] = {}
        self._groups: Dict[Tuple[str, str, int, int, int], Tuple[np.ndarray, TaskGraph]] = {}

    # ------------------------------------------------------------------
    def corpus_entries(self):
        names = self.profile.corpus_names
        return [e for e in CORPUS if not names or e.name in names]

    def matrix(self, name: str) -> SparseMatrix:
        if name not in self._matrices:
            entry = next(e for e in CORPUS if e.name == name)
            self._matrices[name] = load_matrix(
                entry, self.profile.rows_per_unit, self.profile.seed
            )
        return self._matrices[name]

    def hypergraph(self, name: str) -> Hypergraph:
        if name not in self._hypergraphs:
            self._hypergraphs[name] = Hypergraph.from_matrix(self.matrix(name))
        return self._hypergraphs[name]

    def workload(self, matrix_name: str, partitioner: str, num_procs: int) -> Workload:
        key = (matrix_name, partitioner, num_procs)
        if key not in self._workloads:
            self._workloads[key] = build_workload(
                self.matrix(matrix_name),
                self.hypergraph(matrix_name),
                partitioner,
                num_procs,
                seed=mix_seed(self.profile.seed, hash_key(key)),
            )
        return self._workloads[key]

    def machine(self, num_procs: int, alloc_seed: int) -> Machine:
        key = (num_procs, alloc_seed)
        if key not in self._machines:
            self._machines[key] = build_machine(self.profile, num_procs, alloc_seed)
        return self._machines[key]

    def groups(
        self, matrix_name: str, partitioner: str, num_procs: int, alloc_seed: int
    ) -> Tuple[np.ndarray, TaskGraph]:
        """Shared grouping (phase-1 partition of ranks into nodes)."""
        key = (matrix_name, partitioner, num_procs, alloc_seed, 0)
        if key not in self._groups:
            wl = self.workload(matrix_name, partitioner, num_procs)
            mach = self.machine(num_procs, alloc_seed)
            self._groups[key] = prepare_groups(
                wl.task_graph, mach, seed=mix_seed(self.profile.seed, hash_key(key))
            )
        return self._groups[key]


def hash_key(key) -> int:
    """Stable small hash of a tuple of strs/ints (process-independent)."""
    import zlib

    return zlib.crc32(repr(key).encode()) & 0xFFFF
