"""Shared plumbing for the experiment runners.

Workload construction (matrix → partition → MPI task graph), machine
construction (torus sizing + sparse allocation), and a per-process memo
layer so figure runners sharing inputs (e.g. Fig. 2 and Fig. 3) don't
repeat partitioning work.

Since the API redesign all memoization lives in one
:class:`~repro.api.cache.ArtifactCache` shared with a
:class:`~repro.api.service.MappingService`: matrices, hypergraphs,
workloads, machines *and* groupings are namespaces in the same store the
service uses for its own artifacts (DEF baselines, message-count coarse
graphs), so a figure runner batching seven algorithms over one workload
computes the grouping exactly once.

Every figure runner calls ``cache.service.map_batch(...)``, which since
the planner/executor split routes through the parallel execution engine
(:mod:`repro.api.plan` / :mod:`repro.api.executor`).  The backend is
``serial`` by default — bit-identical to the legacy sequential sweeps —
and selectable per :class:`WorkloadCache` (or via the ``REPRO_BACKEND``
/ ``REPRO_WORKERS`` environment variables), so the fig1–5/table1 sweeps
and ``benchmarks/emit_bench.py`` can fan requests out over a thread or
process pool without touching the runners.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.api.cache import ArtifactCache
from repro.api.request import MapRequest
from repro.api.service import MappingService
from repro.data.corpus import CORPUS, load_matrix
from repro.graph.matrices import SparseMatrix
from repro.graph.task_graph import TaskGraph
from repro.hypergraph.model import Hypergraph
from repro.mapping.pipeline import MapperResult
from repro.metrics.mapping import MappingMetrics
from repro.metrics.nodes import NodeMetrics, evaluate_node_metrics
from repro.metrics.partition import PartitionMetrics, evaluate_partition
from repro.partition.toolbox import get_partitioner
from repro.experiments.profiles import ExperimentProfile
from repro.topology.allocation import AllocationSpec, SparseAllocator, torus_for_job
from repro.topology.machine import Machine
from repro.util.rng import mix_seed

__all__ = [
    "Workload",
    "build_workload",
    "build_machine",
    "run_mapper",
    "WorkloadCache",
    "hash_key",
]


@dataclass
class Workload:
    """A partitioned matrix ready for mapping experiments."""

    matrix: SparseMatrix
    hypergraph: Hypergraph
    partitioner: str
    num_procs: int
    part: np.ndarray
    task_graph: TaskGraph
    partition_metrics: PartitionMetrics


def build_workload(
    matrix: SparseMatrix,
    hypergraph: Hypergraph,
    partitioner: str,
    num_procs: int,
    seed: int,
) -> Workload:
    """Partition *matrix* into ranks with one tool; derive the task graph."""
    tool = get_partitioner(partitioner)
    result = tool.partition(matrix, num_procs, seed=seed, hypergraph=hypergraph)
    pm = evaluate_partition(hypergraph, result.part, num_procs)
    loads = np.bincount(result.part, weights=hypergraph.loads, minlength=num_procs)
    tg = TaskGraph.from_comm_triplets(
        num_procs, hypergraph.comm_triplets(result.part, num_procs), loads=loads
    )
    return Workload(
        matrix=matrix,
        hypergraph=hypergraph,
        partitioner=partitioner,
        num_procs=num_procs,
        part=result.part,
        task_graph=tg,
        partition_metrics=pm,
    )


def build_machine(
    profile: ExperimentProfile, num_procs: int, alloc_seed: int
) -> Machine:
    """Torus + sparse allocation for *num_procs* under *profile*."""
    nodes = profile.nodes_for(num_procs)
    torus = torus_for_job(nodes, headroom=profile.torus_headroom)
    allocator = SparseAllocator(torus)
    return allocator.allocate(
        AllocationSpec(
            num_nodes=nodes,
            procs_per_node=profile.procs_per_node,
            fragmentation=profile.fragmentation,
            seed=mix_seed(profile.seed, 7_700_000 + alloc_seed),
        )
    )


def run_mapper(
    name: str,
    workload: Workload,
    machine: Machine,
    *,
    seed: int,
    groups: Optional[Tuple[np.ndarray, TaskGraph]] = None,
    service: Optional[MappingService] = None,
) -> Tuple[MapperResult, MappingMetrics, NodeMetrics]:
    """Run one mapping algorithm; return result + fine-level metrics.

    Routed through the :class:`MappingService`; pass *service* (e.g.
    ``cache.service``) to share its artifact cache across calls.
    """
    service = service or MappingService()
    response = service.map(
        MapRequest(
            task_graph=workload.task_graph,
            machine=machine,
            algorithms=(name,),
            seed=seed,
            groups=groups,
            evaluate=True,
        )
    )
    result = response.result
    node_metrics = evaluate_node_metrics(result.coarse)
    return result, response.metrics, node_metrics


class WorkloadCache:
    """Per-process memoization of matrices, hypergraphs and workloads.

    A façade over one shared :class:`ArtifactCache` plus the
    :class:`MappingService` bound to it (``self.service``); figure
    runners hand ``service`` their batched requests so groupings, DEF
    baselines and derived coarse graphs are shared across algorithms,
    allocations and runners.
    """

    def __init__(
        self,
        profile: ExperimentProfile,
        artifacts: Optional[ArtifactCache] = None,
        *,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> None:
        self.profile = profile
        self.artifacts = artifacts if artifacts is not None else ArtifactCache()
        if backend is None:
            backend = os.environ.get("REPRO_BACKEND", "serial")
        if workers is None:
            env_workers = os.environ.get("REPRO_WORKERS")
            if env_workers:
                try:
                    workers = int(env_workers)
                except ValueError:
                    raise ValueError(
                        f"REPRO_WORKERS must be an integer, got {env_workers!r}"
                    ) from None
        self.service = MappingService(
            cache=self.artifacts, backend=backend, workers=workers
        )
        # Key harness artifacts by the profile's *content*, not just its
        # display name — two same-named profiles with different
        # parameters sharing one ArtifactCache must not collide.
        self._pkey = hash_key(repr(profile))

    # ------------------------------------------------------------------
    def corpus_entries(self):
        names = self.profile.corpus_names
        return [e for e in CORPUS if not names or e.name in names]

    def matrix(self, name: str) -> SparseMatrix:
        return self.artifacts.get_or_compute(
            "matrix",
            (self._pkey, name),
            lambda: load_matrix(
                next(e for e in CORPUS if e.name == name),
                self.profile.rows_per_unit,
                self.profile.seed,
            ),
        )

    def hypergraph(self, name: str) -> Hypergraph:
        return self.artifacts.get_or_compute(
            "hypergraph",
            (self._pkey, name),
            lambda: Hypergraph.from_matrix(self.matrix(name)),
        )

    def workload(self, matrix_name: str, partitioner: str, num_procs: int) -> Workload:
        key = (matrix_name, partitioner, num_procs)
        return self.artifacts.get_or_compute(
            "workload",
            (self._pkey,) + key,
            lambda: build_workload(
                self.matrix(matrix_name),
                self.hypergraph(matrix_name),
                partitioner,
                num_procs,
                seed=mix_seed(self.profile.seed, hash_key(key)),
            ),
        )

    def machine(self, num_procs: int, alloc_seed: int) -> Machine:
        return self.artifacts.get_or_compute(
            "machine",
            (self._pkey, num_procs, alloc_seed),
            lambda: build_machine(self.profile, num_procs, alloc_seed),
        )

    # ------------------------------------------------------------------
    def grouping_seed(
        self, matrix_name: str, partitioner: str, num_procs: int, alloc_seed: int
    ) -> int:
        """Deterministic seed of the shared grouping for one workload.

        Figure runners pass this as ``MapRequest.grouping_seed`` so the
        service's content-keyed grouping cache is shared across
        algorithms, allocations sweeps and runners.
        """
        key = (matrix_name, partitioner, num_procs, alloc_seed, 0)
        return mix_seed(self.profile.seed, hash_key(key))

    def groups(
        self, matrix_name: str, partitioner: str, num_procs: int, alloc_seed: int
    ) -> Tuple[np.ndarray, TaskGraph]:
        """Shared grouping (phase-1 partition of ranks into nodes)."""
        wl = self.workload(matrix_name, partitioner, num_procs)
        mach = self.machine(num_procs, alloc_seed)
        return self.service.grouping(
            wl.task_graph,
            mach,
            seed=self.grouping_seed(matrix_name, partitioner, num_procs, alloc_seed),
        )


def hash_key(key) -> int:
    """Stable hash of a tuple of strs/ints (process-independent).

    The full 32-bit CRC digest of the key's repr (an earlier version
    truncated to ``crc32 & 0xFFFF``, colliding distinct workload keys
    onto the same 16-bit seed), avalanched through
    :func:`repro.util.rng.mix_seed` so that keys with near-identical
    reprs land far apart across the 64-bit seed space.
    """
    return mix_seed(zlib.crc32(repr(key).encode()) & 0xFFFFFFFF, 0)
