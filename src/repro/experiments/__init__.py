"""Experiment harness: one module per paper artifact.

========  =========================================  =======================
module    paper artifact                              entry point
========  =========================================  =======================
fig1      Fig. 1  partition metrics vs PATOH          :func:`run_fig1`
fig2      Fig. 2  mapping metrics vs DEF              :func:`run_fig2`
fig3      Fig. 3  mapping times                       :func:`run_fig3`
fig4      Fig. 4  comm-only app times (cage / rgg)    :func:`run_fig4`
fig5      Fig. 5  Tpetra SpMV times (cage)            :func:`run_fig5`
table1    Table I summary improvements               :func:`run_table1`
regression Sec. IV-E NNLS analysis                   :func:`run_regression`
========  =========================================  =======================

All runners accept an :class:`ExperimentProfile` that scales matrices,
processor counts and repetition counts; the ``ci`` profile (default)
finishes on a laptop, the ``paper`` profile matches the publication's
sizes.  Every runner returns plain data structures and offers a
``format_*`` helper printing the same rows the paper reports.
"""

from repro.experiments.profiles import ExperimentProfile, get_profile, PROFILES
from repro.experiments.fig1 import run_fig1, format_fig1
from repro.experiments.fig2 import run_fig2, format_fig2, format_fig3
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4, format_fig4
from repro.experiments.fig5 import run_fig5, format_fig5
from repro.experiments.table1 import run_table1, format_table1
from repro.experiments.regression import run_regression, format_regression

__all__ = [
    "ExperimentProfile",
    "get_profile",
    "PROFILES",
    "run_fig1",
    "format_fig1",
    "run_fig2",
    "format_fig2",
    "run_fig3",
    "format_fig3",
    "run_fig4",
    "format_fig4",
    "run_fig5",
    "format_fig5",
    "run_table1",
    "format_table1",
    "run_regression",
    "format_regression",
]
