"""Figure 1 — partition metrics of the seven tools, normalized to PATOH.

"Figure 1 shows the mean metric values normalized with that metric value
of PATOH" for TV, TM, MSV and MSM at each part count.  Expected shape
(paper Sec. IV-A): all tools are similar on TV with the edge-cut
minimizers (SCOTCH, KAFFPA) slightly worse; UMPA-MV has the best MSV;
UMPA-MM the best MSM (16–19% better than PATOH); UMPA-TM the best TM
(9–10% better).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.stats import geo_mean_ratio
from repro.experiments.harness import WorkloadCache
from repro.experiments.profiles import ExperimentProfile, get_profile

__all__ = ["run_fig1", "format_fig1", "Fig1Result", "PARTITIONERS", "FIG1_METRICS"]

PARTITIONERS: Tuple[str, ...] = (
    "KAFFPA",
    "METIS",
    "PATOH",
    "SCOTCH",
    "UMPAMM",
    "UMPAMV",
    "UMPATM",
)
FIG1_METRICS: Tuple[str, ...] = ("TV", "TM", "MSV", "MSM")


@dataclass
class Fig1Result:
    """Normalized geo-mean metrics: ``values[(procs, tool, metric)]``."""

    profile: str
    proc_counts: Tuple[int, ...]
    values: Dict[Tuple[int, str, str], float]


def run_fig1(
    profile: Optional[ExperimentProfile] = None,
    cache: Optional[WorkloadCache] = None,
) -> Fig1Result:
    """Partition the corpus with all seven tools at every part count."""
    profile = profile or get_profile("ci")
    cache = cache or WorkloadCache(profile)
    values: Dict[Tuple[int, str, str], float] = {}
    entries = cache.corpus_entries()
    for procs in profile.proc_counts:
        # Collect raw metric values per tool across the corpus.
        raw: Dict[str, Dict[str, List[float]]] = {
            t: {m: [] for m in FIG1_METRICS} for t in PARTITIONERS
        }
        for entry in entries:
            for tool in PARTITIONERS:
                pm = cache.workload(entry.name, tool, procs).partition_metrics
                d = pm.as_dict()
                for metric in FIG1_METRICS:
                    raw[tool][metric].append(float(d[metric]))
        for tool in PARTITIONERS:
            for metric in FIG1_METRICS:
                values[(procs, tool, metric)] = geo_mean_ratio(
                    raw[tool][metric], raw["PATOH"][metric]
                )
    return Fig1Result(
        profile=profile.name, proc_counts=tuple(profile.proc_counts), values=values
    )


def format_fig1(result: Fig1Result) -> str:
    """Render the figure as the table of normalized geo-means."""
    lines = [f"Figure 1 (profile={result.profile}): partition metrics w.r.t. PATOH"]
    header = f"{'procs':>7s} {'tool':>8s} " + " ".join(f"{m:>7s}" for m in FIG1_METRICS)
    lines.append(header)
    lines.append("-" * len(header))
    for procs in result.proc_counts:
        for tool in PARTITIONERS:
            row = " ".join(
                f"{result.values[(procs, tool, m)]:7.3f}" for m in FIG1_METRICS
            )
            lines.append(f"{procs:>7d} {tool:>8s} {row}")
    return "\n".join(lines)
