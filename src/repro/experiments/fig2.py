"""Figure 2 — mapping metrics on PATOH graphs, normalized to DEF.

"Mean metric values of the algorithms on G^PATOH_t graphs normalized
w.r.t. those of DEF" for TH, WH, MMC and MC at every processor count,
over the mapping algorithms DEF, TMAP, SMAP, UG, UWH, UMC, UMMC and the
profile's allocations.  Expected shape (Sec. IV-B): UG improves WH/TH by
5–18%; UWH adds another few percent; UMC cuts MC by 27–37%; UMMC cuts
MMC by 24–37%; TMAP improves MC by only 1–7%; SMAP is worse than DEF on
most metrics.

Figure 3 (mapping times) falls out of the same runs, so this module also
records per-algorithm geometric-mean mapping times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.stats import geo_mean_ratio, geometric_mean
from repro.api.request import MapRequest
from repro.experiments.harness import WorkloadCache
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.mapping.pipeline import MAPPER_NAMES
from repro.util.rng import mix_seed

__all__ = [
    "run_fig2",
    "sweep_requests",
    "format_fig2",
    "format_fig3",
    "Fig2Result",
    "FIG2_METRICS",
]

FIG2_METRICS: Tuple[str, ...] = ("TH", "WH", "MMC", "MC")


@dataclass
class Fig2Result:
    """Normalized metrics ``values[(procs, mapper, metric)]`` + times."""

    profile: str
    proc_counts: Tuple[int, ...]
    values: Dict[Tuple[int, str, str], float]
    #: geometric-mean mapping seconds per (procs, mapper) — Figure 3.
    times: Dict[Tuple[int, str], float]
    #: the algorithms the sweep actually ran (figure order).
    mappers: Tuple[str, ...] = MAPPER_NAMES


def sweep_requests(
    profile: ExperimentProfile,
    cache: WorkloadCache,
    partitioner: str = "PATOH",
    mappers: Tuple[str, ...] = MAPPER_NAMES,
) -> List[MapRequest]:
    """The Fig. 2/3 sweep as one request list, in sweep order.

    The single authority on the sweep's request construction — per-run
    seed formula, shared grouping seed, evaluation flag — used both by
    :func:`run_fig2` and by ``benchmarks/emit_bench.py``'s
    batch-throughput section, so the two always measure the same sweep.
    Each request is tagged ``procs`` for aggregation.  *mappers*
    defaults to the paper's seven algorithms; the perf snapshot passes
    an extended list so new families get Fig. 3 entries too.
    """
    requests: List[MapRequest] = []
    for procs in profile.proc_counts:
        for entry in cache.corpus_entries():
            wl = cache.workload(entry.name, partitioner, procs)
            for alloc_seed in profile.alloc_seeds:
                machine = cache.machine(procs, alloc_seed)
                requests.append(
                    MapRequest(
                        task_graph=wl.task_graph,
                        machine=machine,
                        algorithms=mappers,
                        seed=mix_seed(profile.seed, alloc_seed * 37 + procs),
                        grouping_seed=cache.grouping_seed(
                            entry.name, partitioner, procs, alloc_seed
                        ),
                        evaluate=True,
                        tag=procs,
                    )
                )
    return requests


def run_fig2(
    profile: Optional[ExperimentProfile] = None,
    cache: Optional[WorkloadCache] = None,
    partitioner: str = "PATOH",
    mappers: Tuple[str, ...] = MAPPER_NAMES,
) -> Fig2Result:
    """Map every PATOH task graph with all seven algorithms.

    Each processor count's requests go through ``map_batch`` as one
    plan, so the execution engine sees all of that group's
    grouping/baseline/route artifacts at once (shared groupings
    computed exactly once, DEF/TMAP run their own by spec) and a
    parallel backend (``WorkloadCache(backend=...)`` or
    ``REPRO_BACKEND``) fans the whole ready frontier out instead of
    seven algorithms at a time.  Batching per processor count — not
    the entire sweep — bounds peak memory to one group's responses
    (rank-sized Γ vectors and coarse graphs) while still giving the
    engine dozens of independent nodes per plan.
    """
    profile = profile or get_profile("ci")
    cache = cache or WorkloadCache(profile)
    if "DEF" not in mappers:
        raise ValueError("run_fig2 normalizes to DEF; include it in mappers")
    values: Dict[Tuple[int, str, str], float] = {}
    times: Dict[Tuple[int, str], float] = {}
    requests = sweep_requests(profile, cache, partitioner, mappers)

    for procs in profile.proc_counts:
        raw: Dict[str, Dict[str, List[float]]] = {
            a: {m: [] for m in FIG2_METRICS} for a in mappers
        }
        raw_times: Dict[str, List[float]] = {a: [] for a in mappers}
        group = [r for r in requests if r.tag == procs]
        for response in cache.service.map_batch(group):
            algo = response.algorithm
            d = response.metrics.as_dict()
            for m in FIG2_METRICS:
                raw[algo][m].append(float(d[m]))
            raw_times[algo].append(max(response.map_time, 1e-6))
        for algo in mappers:
            for m in FIG2_METRICS:
                values[(procs, algo, m)] = geo_mean_ratio(raw[algo][m], raw["DEF"][m])
            times[(procs, algo)] = geometric_mean(raw_times[algo])
    return Fig2Result(
        profile=profile.name,
        proc_counts=tuple(profile.proc_counts),
        values=values,
        times=times,
        mappers=tuple(mappers),
    )


def format_fig2(result: Fig2Result) -> str:
    """Paper-layout table: one row per (procs, mapper)."""
    lines = [
        f"Figure 2 (profile={result.profile}): mapping metrics on PATOH graphs, "
        "normalized to DEF"
    ]
    header = f"{'procs':>7s} {'mapper':>6s} " + " ".join(
        f"{m:>7s}" for m in FIG2_METRICS
    )
    lines.append(header)
    lines.append("-" * len(header))
    for procs in result.proc_counts:
        for algo in result.mappers:
            row = " ".join(
                f"{result.values[(procs, algo, m)]:7.3f}" for m in FIG2_METRICS
            )
            lines.append(f"{procs:>7d} {algo:>6s} {row}")
    return "\n".join(lines)


def format_fig3(result: Fig2Result) -> str:
    """Figure 3 companion table: geometric-mean mapping times (seconds)."""
    lines = [f"Figure 3 (profile={result.profile}): geo-mean mapping times (s)"]
    mappers = [a for a in result.mappers if a != "DEF"]
    header = f"{'procs':>7s} " + " ".join(f"{a:>9s}" for a in mappers)
    lines.append(header)
    lines.append("-" * len(header))
    for procs in result.proc_counts:
        row = " ".join(f"{result.times[(procs, a)]:9.4f}" for a in mappers)
        lines.append(f"{procs:>7d} {row}")
    return "\n".join(lines)
