"""Experiment scale profiles.

The paper's evaluation runs on Hopper with 1024–16384 processors (16 used
per node) over 25 matrices with millions of rows.  A pure-Python
reproduction sweeps the same *structure* at configurable scale:

* ``smoke``  — seconds; used by the test suite.
* ``ci``     — minutes; the default for the benchmark harness.
* ``small``  — tens of minutes; closer shapes, still laptop-friendly.
* ``paper``  — the paper's processor counts (hours in pure Python).

Select via ``REPRO_PROFILE=ci pytest benchmarks ...`` or pass a profile
object explicitly to any runner.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["ExperimentProfile", "PROFILES", "get_profile", "profile_from_env"]


@dataclass(frozen=True)
class ExperimentProfile:
    """Scale knobs shared by all experiment runners."""

    name: str
    #: matrix rows per corpus size unit (flagships are 2 units).
    rows_per_unit: int
    #: the "number of processors" x-axis (Figs. 1-3 sweep these).
    proc_counts: Tuple[int, ...]
    #: processors used per node (paper: 16 of Hopper's 24).
    procs_per_node: int
    #: allocation fragmentation (fraction of torus busy with other jobs).
    fragmentation: float
    #: allocation seeds; Fig. 2 averages over 5 allocations, Table I uses 2.
    alloc_seeds: Tuple[int, ...]
    #: corpus entries used for the metric sweeps ((); = all 25).
    corpus_names: Tuple[str, ...] = ()
    #: repetitions for timed simulations (paper: 5).
    repetitions: int = 5
    #: torus head-room: torus nodes >= headroom * allocated nodes.
    torus_headroom: float = 2.5
    #: base RNG seed for the whole experiment family.
    seed: int = 2015

    @property
    def largest_procs(self) -> int:
        return max(self.proc_counts)

    def nodes_for(self, procs: int) -> int:
        if procs % self.procs_per_node:
            raise ValueError(
                f"{procs} processors not divisible by {self.procs_per_node}/node"
            )
        return procs // self.procs_per_node


_MID_CORPUS = (
    "cage15_like",
    "rgg_n23_like",
    "cage12_like",
    "rgg_n21_like",
    "ecology_like",
    "atmosmodd_like",
    "webbase_like",
    "af_shell_like",
    "freescale_like",
    "roadnet_like",
    "econ_fwd_like",
)

PROFILES: Dict[str, ExperimentProfile] = {
    "smoke": ExperimentProfile(
        name="smoke",
        rows_per_unit=600,
        proc_counts=(32, 64),
        procs_per_node=4,
        fragmentation=0.3,
        alloc_seeds=(0,),
        corpus_names=("cage15_like", "rgg_n23_like", "ecology_like"),
        repetitions=2,
    ),
    "ci": ExperimentProfile(
        name="ci",
        rows_per_unit=1200,
        proc_counts=(64, 128, 256),
        procs_per_node=4,
        fragmentation=0.35,
        alloc_seeds=(0, 1),
        corpus_names=_MID_CORPUS[:7],
        repetitions=3,
    ),
    "small": ExperimentProfile(
        name="small",
        rows_per_unit=2500,
        proc_counts=(128, 256, 512),
        procs_per_node=8,
        fragmentation=0.35,
        alloc_seeds=(0, 1, 2),
        corpus_names=_MID_CORPUS,
        repetitions=5,
    ),
    "paper": ExperimentProfile(
        name="paper",
        rows_per_unit=40000,
        proc_counts=(1024, 2048, 4096, 8192, 16384),
        procs_per_node=16,
        fragmentation=0.35,
        alloc_seeds=(0, 1, 2, 3, 4),
        corpus_names=(),
        repetitions=5,
    ),
}


def get_profile(name: str) -> ExperimentProfile:
    """Look up a profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(f"unknown profile {name!r}; available: {sorted(PROFILES)}") from None


def profile_from_env(default: str = "ci") -> ExperimentProfile:
    """Profile selected by the ``REPRO_PROFILE`` environment variable."""
    return get_profile(os.environ.get("REPRO_PROFILE", default))
