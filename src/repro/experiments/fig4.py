"""Figure 4 — communication-only application times (cage15 / rgg).

For each of the 7 partitioners' task graphs of a flagship matrix, run the
mapping algorithms DEF, TMAP, UG, UWH, UMC, UMMC (SMAP is excluded from
the paper's figure "for clarity"), simulate the communication-only
application 5 times, and report WH/MMC/MC plus the mean execution time —
everything normalized to DEF on the PATOH graph.

Message scaling follows the paper: 4K for the cage-like flagship, 256K
for the rgg-like one, which pushes both apps into the bandwidth-bound
regime where WH and MC dominate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.api.request import MapRequest
from repro.experiments.harness import WorkloadCache
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.sim.commapp import CommOnlyApp
from repro.util.rng import mix_seed

__all__ = ["run_fig4", "format_fig4", "Fig4Result", "FIG4_MAPPERS", "FIG4_SCALES"]

FIG4_MAPPERS: Tuple[str, ...] = ("DEF", "TMAP", "UG", "UWH", "UMC", "UMMC")
FIG4_PARTITIONERS: Tuple[str, ...] = (
    "KAFFPA",
    "METIS",
    "PATOH",
    "SCOTCH",
    "UMPAMM",
    "UMPAMV",
    "UMPATM",
)
#: Paper scaling factors (bytes per volume unit).
FIG4_SCALES: Dict[str, float] = {"cage15_like": 4096.0, "rgg_n23_like": 262144.0}
FIG4_METRICS: Tuple[str, ...] = ("WH", "MMC", "MC")


@dataclass
class Fig4Result:
    """``values[(partitioner, mapper, column)]`` normalized to DEF@PATOH.

    Columns: WH, MMC, MC, time; ``time_std`` carries the normalized
    standard deviation across repetitions.
    """

    profile: str
    matrix: str
    num_procs: int
    values: Dict[Tuple[str, str, str], float]
    time_std: Dict[Tuple[str, str], float]


def run_fig4(
    matrix_name: str = "cage15_like",
    profile: Optional[ExperimentProfile] = None,
    cache: Optional[WorkloadCache] = None,
    *,
    alloc_seed: int = 0,
) -> Fig4Result:
    """Communication-only sweep for one flagship matrix."""
    profile = profile or get_profile("ci")
    cache = cache or WorkloadCache(profile)
    if matrix_name not in FIG4_SCALES:
        raise ValueError(f"fig4 runs on {sorted(FIG4_SCALES)}, got {matrix_name!r}")
    procs = profile.largest_procs
    app = CommOnlyApp(scale=FIG4_SCALES[matrix_name])
    machine = cache.machine(procs, alloc_seed)

    raw: Dict[Tuple[str, str], Dict[str, float]] = {}
    stds: Dict[Tuple[str, str], float] = {}
    for part_tool in FIG4_PARTITIONERS:
        wl = cache.workload(matrix_name, part_tool, procs)
        responses = cache.service.map_batch(
            MapRequest(
                task_graph=wl.task_graph,
                machine=machine,
                algorithms=FIG4_MAPPERS,
                seed=mix_seed(profile.seed, 17 + alloc_seed),
                grouping_seed=cache.grouping_seed(
                    matrix_name, part_tool, procs, alloc_seed
                ),
                evaluate=True,
            )
        )
        for response in responses:
            algo = response.algorithm
            times = app.run(
                wl.task_graph,
                machine,
                response.fine_gamma,
                repetitions=profile.repetitions,
                seed=mix_seed(profile.seed, 23 + alloc_seed),
            )
            d = response.metrics.as_dict()
            raw[(part_tool, algo)] = {
                "WH": d["WH"],
                "MMC": d["MMC"],
                "MC": d["MC"],
                "time": float(np.mean(times)),
            }
            stds[(part_tool, algo)] = float(np.std(times))

    ref = raw[("PATOH", "DEF")]
    values = {
        (pt, al, col): raw[(pt, al)][col] / ref[col]
        for (pt, al) in raw
        for col in ("WH", "MMC", "MC", "time")
    }
    time_std = {k: stds[k] / ref["time"] for k in stds}
    return Fig4Result(
        profile=profile.name,
        matrix=matrix_name,
        num_procs=procs,
        values=values,
        time_std=time_std,
    )


def format_fig4(result: Fig4Result) -> str:
    """Paper-layout block: per partitioner, one row per mapper."""
    lines = [
        f"Figure 4 (profile={result.profile}): comm-only on {result.matrix}, "
        f"#procs={result.num_procs}, normalized to DEF on PATOH"
    ]
    header = (
        f"{'partitioner':>12s} {'mapper':>6s} "
        + " ".join(f"{m:>7s}" for m in FIG4_METRICS)
        + f" {'time':>7s} {'±std':>6s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for pt in FIG4_PARTITIONERS:
        for al in FIG4_MAPPERS:
            row = " ".join(f"{result.values[(pt, al, m)]:7.3f}" for m in FIG4_METRICS)
            t = result.values[(pt, al, "time")]
            s = result.time_std[(pt, al)]
            lines.append(f"{pt:>12s} {al:>6s} {row} {t:7.3f} {s:6.3f}")
    return "\n".join(lines)
