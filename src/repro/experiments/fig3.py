"""Figure 3 — geometric-mean mapping times per algorithm.

The timing data is collected by the Figure 2 runs (same sweep); this
module just re-exposes it under the figure's own name so the per-
experiment index stays one-to-one with the paper.

Expected shape: SMAP/UG/UWH cheapest, UMC/UMMC next, TMAP the most
expensive (it re-partitions the task graph itself) and growing with the
processor count.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.harness import WorkloadCache
from repro.experiments.profiles import ExperimentProfile

__all__ = ["run_fig3"]


def run_fig3(
    profile: Optional[ExperimentProfile] = None,
    cache: Optional[WorkloadCache] = None,
) -> Fig2Result:
    """Run (or reuse) the Figure 2 sweep; timing lives in ``result.times``."""
    return run_fig2(profile=profile, cache=cache)
