"""Command-line experiment runner.

Usage::

    python -m repro.experiments fig1 --profile ci
    python -m repro.experiments fig4 --matrix rgg_n23_like --profile smoke
    python -m repro.experiments all --profile smoke

Each command prints the same table the corresponding paper artifact
reports (see EXPERIMENTS.md for recorded outputs).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    format_fig1,
    format_fig2,
    format_fig3,
    format_fig4,
    format_fig5,
    format_regression,
    format_table1,
    get_profile,
    run_fig1,
    run_fig2,
    run_fig4,
    run_fig5,
    run_regression,
    run_table1,
)
from repro.experiments.harness import WorkloadCache

COMMANDS = ("fig1", "fig2", "fig3", "fig4a", "fig4b", "fig5", "table1", "regression", "all")


def main(argv=None) -> int:
    """Parse arguments and run the requested experiment(s); returns 0."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument("command", choices=COMMANDS)
    parser.add_argument("--profile", default="ci", help="smoke | ci | small | paper")
    parser.add_argument("--matrix", default=None, help="flagship override for fig4/fig5")
    args = parser.parse_args(argv)

    profile = get_profile(args.profile)
    cache = WorkloadCache(profile)
    todo = COMMANDS[:-1] if args.command == "all" else (args.command,)

    for cmd in todo:
        t0 = time.perf_counter()
        if cmd == "fig1":
            print(format_fig1(run_fig1(profile, cache)))
        elif cmd == "fig2":
            print(format_fig2(run_fig2(profile, cache)))
        elif cmd == "fig3":
            print(format_fig3(run_fig2(profile, cache)))
        elif cmd == "fig4a":
            print(format_fig4(run_fig4(args.matrix or "cage15_like", profile, cache)))
        elif cmd == "fig4b":
            print(format_fig4(run_fig4(args.matrix or "rgg_n23_like", profile, cache)))
        elif cmd == "fig5":
            print(format_fig5(run_fig5(args.matrix or "cage15_like", profile, cache)))
        elif cmd == "table1":
            print(format_table1(run_table1(profile, cache)))
        elif cmd == "regression":
            print(format_regression(run_regression(profile, cache)))
        print(f"[{cmd} done in {time.perf_counter() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
