"""Sec. IV-E — NNLS regression of execution time on the 14 metrics.

Two analyses (both on the cage-like flagship at the largest processor
count, over two allocations, across all partitioner × mapper pairs):

* **comm-only** (scaled messages): the paper finds WH, MSV and MC with
  nonzero coefficients — volume metrics dominate;
* **SpMV** (latency-bound): AMC, ICV, MMC, TH and MNRV — with AMC highly
  Pearson-correlated (≥0.92) with MNRM, ICM and TM, which hides those
  three from the NNLS fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.regression import (
    METRIC_COLUMNS,
    RegressionResult,
    nnls_regression,
    pearson_matrix,
)
from repro.api.request import MapRequest
from repro.experiments.fig4 import FIG4_MAPPERS, FIG4_PARTITIONERS, FIG4_SCALES
from repro.experiments.harness import WorkloadCache
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.metrics.nodes import evaluate_node_metrics
from repro.sim.commapp import CommOnlyApp
from repro.sim.spmv import SpMVSimulator
from repro.util.rng import mix_seed

__all__ = ["run_regression", "format_regression", "RegressionStudy"]


@dataclass
class RegressionStudy:
    """NNLS fits for both applications plus the Pearson matrix."""

    profile: str
    comm_only: RegressionResult
    spmv: RegressionResult
    pearson_spmv: Dict[Tuple[str, str], float]
    num_rows: int


def _metric_row(pm, mm, nm) -> List[float]:
    """Assemble one row of V in METRIC_COLUMNS order."""
    d = {**pm.as_dict(), **mm.as_dict(), **nm.as_dict()}
    return [float(d[c]) for c in METRIC_COLUMNS]


def run_regression(
    profile: Optional[ExperimentProfile] = None,
    cache: Optional[WorkloadCache] = None,
    matrix_name: str = "cage15_like",
) -> RegressionStudy:
    """Collect (V, t) over partitioners × mappers × allocations; fit NNLS."""
    profile = profile or get_profile("ci")
    cache = cache or WorkloadCache(profile)
    procs = profile.largest_procs
    alloc_seeds = profile.alloc_seeds[:2]
    comm_app = CommOnlyApp(scale=FIG4_SCALES[matrix_name])
    spmv = SpMVSimulator(iterations=100)

    rows: List[List[float]] = []
    t_comm: List[float] = []
    t_spmv: List[float] = []
    for alloc_seed in alloc_seeds:
        machine = cache.machine(procs, alloc_seed)
        for part_tool in FIG4_PARTITIONERS:
            wl = cache.workload(matrix_name, part_tool, procs)
            responses = cache.service.map_batch(
                MapRequest(
                    task_graph=wl.task_graph,
                    machine=machine,
                    algorithms=FIG4_MAPPERS,
                    seed=mix_seed(profile.seed, 61 + alloc_seed),
                    grouping_seed=cache.grouping_seed(
                        matrix_name, part_tool, procs, alloc_seed
                    ),
                    evaluate=True,
                )
            )
            for response in responses:
                nm = evaluate_node_metrics(response.result.coarse)
                rows.append(
                    _metric_row(wl.partition_metrics, response.metrics, nm)
                )
                t_comm.append(
                    comm_app.execution_time(
                        wl.task_graph, machine, response.fine_gamma
                    )
                )
                t_spmv.append(
                    spmv.execution_time(wl.task_graph, machine, response.fine_gamma)
                )

    v = np.asarray(rows, dtype=np.float64)
    fit_comm = nnls_regression(v, np.asarray(t_comm))
    fit_spmv = nnls_regression(v, np.asarray(t_spmv))
    return RegressionStudy(
        profile=profile.name,
        comm_only=fit_comm,
        spmv=fit_spmv,
        pearson_spmv=pearson_matrix(v),
        num_rows=v.shape[0],
    )


def format_regression(study: RegressionStudy) -> str:
    """Report the nonzero coefficients and the AMC correlation block."""
    lines = [
        f"Regression (profile={study.profile}, rows={study.num_rows})",
        "comm-only nonzero coefficients:",
    ]
    for k, v in study.comm_only.nonzero().items():
        lines.append(f"  {k:>5s}: {v:.4g}")
    lines.append("SpMV nonzero coefficients:")
    for k, v in study.spmv.nonzero().items():
        lines.append(f"  {k:>5s}: {v:.4g}")
    lines.append("Pearson correlation with AMC:")
    for other in ("MNRM", "ICM", "TM", "TH"):
        key = ("AMC", other) if ("AMC", other) in study.pearson_spmv else (other, "AMC")
        lines.append(f"  AMC~{other}: {study.pearson_spmv[key]:.3f}")
    return "\n".join(lines)
