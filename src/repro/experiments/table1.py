"""Table I — summary of average improvements across allocations.

For each (application, processor count, allocation), the geometric mean
over all 7 partitioners' task graphs of each mapper's execution time,
normalized to DEF.  Rows:

* cage15 SpMV at the two largest processor counts × two allocations
  (500 / 1000 iterations respectively);
* cage15 comm-only at the same counts × two allocations;
* rgg comm-only at the largest count × two allocations;

plus the per-application geometric-mean row ("Gmean").  Expected shape:
UWH ≈ 0.91 / 0.86 / 0.80 for the three applications; TMAP ≈ 1.0;
UMMC > 1 on the scaled cage comm-only app.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.stats import geometric_mean
from repro.api.request import MapRequest
from repro.experiments.fig4 import FIG4_PARTITIONERS, FIG4_SCALES
from repro.experiments.harness import WorkloadCache
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.sim.commapp import CommOnlyApp
from repro.sim.spmv import SpMVSimulator
from repro.util.rng import mix_seed

__all__ = ["run_table1", "format_table1", "Table1Result", "TABLE1_MAPPERS"]

TABLE1_MAPPERS: Tuple[str, ...] = ("TMAP", "UG", "UWH", "UMC", "UMMC")


@dataclass
class Table1Result:
    """Rows: ``(app, procs, rep) -> {mapper: normalized time}`` + DEF secs."""

    profile: str
    rows: Dict[Tuple[str, int, int], Dict[str, float]]
    def_seconds: Dict[Tuple[str, int, int], float]

    def gmean(self, app: str) -> Dict[str, float]:
        """Per-application geometric mean across its rows."""
        keys = [k for k in self.rows if k[0] == app]
        return {
            m: geometric_mean([self.rows[k][m] for k in keys])
            for m in TABLE1_MAPPERS
        }


def _app_runner(app: str, iterations: int):
    if app == "cage_spmv":
        return lambda tg, mach, gamma, reps, seed: SpMVSimulator(
            iterations=iterations
        ).run(tg, mach, gamma, repetitions=reps, seed=seed)
    scale = FIG4_SCALES["cage15_like" if app == "cage_comm" else "rgg_n23_like"]
    return lambda tg, mach, gamma, reps, seed: CommOnlyApp(scale=scale).run(
        tg, mach, gamma, repetitions=reps, seed=seed
    )


def run_table1(
    profile: Optional[ExperimentProfile] = None,
    cache: Optional[WorkloadCache] = None,
) -> Table1Result:
    """Full Table I sweep at the profile's two largest processor counts."""
    profile = profile or get_profile("ci")
    cache = cache or WorkloadCache(profile)
    top_counts = sorted(profile.proc_counts)[-2:]
    alloc_reps = list(profile.alloc_seeds[:2])

    plan: List[Tuple[str, str, int, int, int]] = []
    for i, procs in enumerate(top_counts):
        for rep, alloc_seed in enumerate(alloc_reps, start=1):
            iters = 500 if rep == 1 else 1000
            plan.append(("cage_spmv", "cage15_like", procs, rep, iters))
            plan.append(("cage_comm", "cage15_like", procs, rep, 0))
    largest = top_counts[-1]
    for rep, alloc_seed in enumerate(alloc_reps, start=1):
        plan.append(("rgg_comm", "rgg_n23_like", largest, rep, 0))

    rows: Dict[Tuple[str, int, int], Dict[str, float]] = {}
    def_seconds: Dict[Tuple[str, int, int], float] = {}
    for app, matrix_name, procs, rep, iters in plan:
        alloc_seed = alloc_reps[rep - 1]
        machine = cache.machine(procs, alloc_seed)
        runner = _app_runner(app, iters)
        per_mapper_times: Dict[str, List[float]] = {
            m: [] for m in ("DEF",) + TABLE1_MAPPERS
        }
        for part_tool in FIG4_PARTITIONERS:
            wl = cache.workload(matrix_name, part_tool, procs)
            responses = cache.service.map_batch(
                MapRequest(
                    task_graph=wl.task_graph,
                    machine=machine,
                    algorithms=("DEF",) + TABLE1_MAPPERS,
                    seed=mix_seed(profile.seed, 53 + alloc_seed + procs),
                    grouping_seed=cache.grouping_seed(
                        matrix_name, part_tool, procs, alloc_seed
                    ),
                )
            )
            for response in responses:
                times = runner(
                    wl.task_graph,
                    machine,
                    response.fine_gamma,
                    profile.repetitions,
                    mix_seed(profile.seed, 59 + rep),
                )
                per_mapper_times[response.algorithm].append(float(np.mean(times)))
        def_gm = geometric_mean(per_mapper_times["DEF"])
        def_seconds[(app, procs, rep)] = def_gm
        rows[(app, procs, rep)] = {
            m: geometric_mean(per_mapper_times[m]) / def_gm for m in TABLE1_MAPPERS
        }
    return Table1Result(profile=profile.name, rows=rows, def_seconds=def_seconds)


def format_table1(result: Table1Result) -> str:
    """Render Table I: DEF seconds + normalized times per mapper."""
    lines = [f"Table I (profile={result.profile}): normalized geo-mean times"]
    header = (
        f"{'app':>10s} {'procs':>7s} {'rep':>4s} {'DEF(s)':>9s} "
        + " ".join(f"{m:>6s}" for m in TABLE1_MAPPERS)
    )
    lines.append(header)
    lines.append("-" * len(header))
    apps = ("cage_spmv", "cage_comm", "rgg_comm")
    for app in apps:
        keys = sorted(k for k in result.rows if k[0] == app)
        for key in keys:
            _, procs, rep = key
            row = " ".join(f"{result.rows[key][m]:6.2f}" for m in TABLE1_MAPPERS)
            lines.append(
                f"{app:>10s} {procs:>7d} {rep:>4d} "
                f"{result.def_seconds[key]:9.4f} {row}"
            )
        gm = result.gmean(app)
        row = " ".join(f"{gm[m]:6.2f}" for m in TABLE1_MAPPERS)
        lines.append(f"{app:>10s} {'Gmean':>7s} {'':>4s} {'':>9s} {row}")
    return "\n".join(lines)
