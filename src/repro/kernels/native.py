"""Numba ``@njit`` variants of the hottest kernels (optional backend).

Every function here is a compiled drop-in for one NumPy reference path;
:mod:`repro.kernels.backend` owns selection and fallback, and nothing
else imports this module directly.  Importing it requires numba — the
backend layer guards the import and falls back to NumPy when the
dependency is absent or a signature fails to compile.

Equivalence contract
--------------------
The integer-valued kernels (hop gathers, frontier expansion, the
comm-index counting sort, the route-table splice, message/volume
accumulation in CSR-entry order) reproduce the NumPy reference bit for
bit by construction: every intermediate is integer-exact or accumulated
in the same order as the reference.

The two float-reducing kernels follow the repo-wide volume contract
(see :mod:`repro.kernels.swapgain`): communication volumes are
integer-valued, which makes weighted-hop sums and load deltas exact in
float64 regardless of summation order.  The one reduction where the
*operands* are non-integer — the accept rule's ``Σ dv · inv_bw`` total
over non-uniform Gemini bandwidths — replicates NumPy's scalar pairwise
summation (sequential under 8 terms, 8-way unrolled to 128, recursive
block split above) so the verdict arithmetic tracks the reference to
the last ulp on typical delta-slice lengths.  The accept thresholds sit
at ``1e-9``, six orders of magnitude above any conceivable last-ulp
divergence, so refinement trajectories (and therefore the goldens) are
identical across backends.

All kernels compile with ``cache=True``: the first process to warm a
signature pays the compile, later processes (and later runs) load the
on-disk cache — exactly the amortization story the persistent
``ExecutorPool`` workers rely on.
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = [
    "hops_gather",
    "hops_row",
    "expand_frontier_csr",
    "expand_frontier_padded",
    "swap_gains",
    "verdicts",
    "comm_index",
    "accumulate_loads",
    "splice_routes",
]


# ---------------------------------------------------------------------------
# Hop-table lookups (kernels/hoptable.py, dense-matrix path).
# ---------------------------------------------------------------------------


@njit(cache=True)
def hops_gather(matrix, a, b):
    """Elementwise ``matrix[a[i], b[i]]`` gather (1-D, equal shapes)."""
    out = np.empty(a.shape[0], dtype=matrix.dtype)
    for i in range(a.shape[0]):
        out[i] = matrix[a[i], b[i]]
    return out


@njit(cache=True)
def hops_row(row, others):
    """``row[others]`` gather — one node against many."""
    out = np.empty(others.shape[0], dtype=row.dtype)
    for i in range(others.shape[0]):
        out[i] = row[others[i]]
    return out


# ---------------------------------------------------------------------------
# BFS frontier expansion (graph/csr.py).
# ---------------------------------------------------------------------------


@njit(cache=True)
def expand_frontier_csr(indptr, indices, frontier, seen):
    """Unseen CSR neighbours of *frontier*, sorted; marks ``seen`` in place.

    First-visit marking replaces the reference's gather + ``np.unique``
    (each fresh vertex is emitted exactly once); the final sort restores
    the reference's ascending output order.
    """
    total = 0
    for i in range(frontier.shape[0]):
        v = frontier[i]
        total += indptr[v + 1] - indptr[v]
    out = np.empty(total, dtype=np.int32)
    k = 0
    for i in range(frontier.shape[0]):
        v = frontier[i]
        for j in range(indptr[v], indptr[v + 1]):
            u = indices[j]
            if not seen[u]:
                seen[u] = True
                out[k] = u
                k += 1
    return np.sort(out[:k])


@njit(cache=True)
def expand_frontier_padded(pad, frontier, seen):
    """Padded-matrix variant (low-degree graphs: the torus ``Gm``)."""
    width = pad.shape[1]
    out = np.empty(frontier.shape[0] * width, dtype=np.int32)
    k = 0
    for i in range(frontier.shape[0]):
        v = frontier[i]
        for j in range(width):
            u = pad[v, j]
            if not seen[u]:
                seen[u] = True
                out[k] = u
                k += 1
    return np.sort(out[:k])


# ---------------------------------------------------------------------------
# Batched WH swap gains (kernels/swapgain.py, dense-matrix path).
# ---------------------------------------------------------------------------


@njit(cache=True)
def swap_gains(indptr, indices, weights, gamma, matrix, t1, n1, partners, whops_t1):
    """WH gain of swapping Γ[t1] with each partner (see batched_swap_gains).

    Same exclusions as the reference: the direct ``t1``–partner edge is
    skipped on the partner side (weight zeroed there) and contributes a
    zero hop on the t1 side (the partner's new position *is* the row
    node), so no correction term is needed.
    """
    k = partners.shape[0]
    out = np.empty(k, dtype=np.float64)
    lo1, hi1 = indptr[t1], indptr[t1 + 1]
    for j in range(k):
        t2 = partners[j]
        n2 = gamma[t2]
        if hi1 > lo1:
            cost_t1_after = 0.0
            direct_w = 0.0
            for p in range(lo1, hi1):
                nb = indices[p]
                cost_t1_after += matrix[n2, gamma[nb]] * weights[p]
                if nb == t2:
                    direct_w = weights[p]
            cost_t1_before = whops_t1 - direct_w * matrix[n1, n2]
        else:
            cost_t1_after = 0.0
            cost_t1_before = whops_t1
        cost_t2_before = 0.0
        cost_t2_after = 0.0
        for p in range(indptr[t2], indptr[t2 + 1]):
            nb = indices[p]
            if nb == t1:
                continue
            w = weights[p]
            gn = gamma[nb]
            cost_t2_before += matrix[n2, gn] * w
            cost_t2_after += matrix[n1, gn] * w
        out[j] = (cost_t1_before + cost_t2_before) - (cost_t1_after + cost_t2_after)
    return out


# ---------------------------------------------------------------------------
# Congestion accept rule (kernels/congestion.py).
# ---------------------------------------------------------------------------


@njit(cache=True)
def _pairwise_sum(a, lo, n):
    """NumPy's scalar pairwise summation over ``a[lo:lo+n]``.

    Mirrors ``numpy/core/src/umath/loops.c.src`` (non-SIMD path):
    sequential under 8 terms, 8 partial accumulators to 128, then a
    recursive split at a multiple-of-8 midpoint.
    """
    if n < 8:
        s = 0.0
        for i in range(lo, lo + n):
            s += a[i]
        return s
    if n <= 128:
        r0 = a[lo]
        r1 = a[lo + 1]
        r2 = a[lo + 2]
        r3 = a[lo + 3]
        r4 = a[lo + 4]
        r5 = a[lo + 5]
        r6 = a[lo + 6]
        r7 = a[lo + 7]
        i = 8
        stop = n - (n % 8)
        while i < stop:
            r0 += a[lo + i]
            r1 += a[lo + i + 1]
            r2 += a[lo + i + 2]
            r3 += a[lo + i + 3]
            r4 += a[lo + i + 4]
            r5 += a[lo + i + 5]
            r6 += a[lo + i + 6]
            r7 += a[lo + i + 7]
            i += 8
        s = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        while i < n:
            s += a[lo + i]
            i += 1
        return s
    n2 = n // 2
    n2 -= n2 % 8
    return _pairwise_sum(a, lo, n2) + _pairwise_sum(a, lo + n2, n - n2)


@njit(cache=True)
def verdicts(
    ul,
    dm,
    dv,
    bounds,
    vols,
    msgs,
    inv_bw,
    load,
    mc,
    ac,
    top,
    total_base,
    base_used,
    volume_metric,
    eps,
):
    """Batched Algorithm-3 accept rule — one candidate per ``bounds`` slice.

    Replaces the per-candidate Python loop over ``CongestionModel.
    _verdict`` (~10 small NumPy calls each) with one compiled pass.
    ``ul`` slices are sorted ascending (``np.unique`` order), which the
    unchanged-links max exploits via a merge walk.
    """
    K = bounds.shape[0] - 1
    out = np.zeros(K, dtype=np.bool_)
    nl = load.shape[0]
    for k in range(K):
        s, e = bounds[k], bounds[k + 1]
        if e == s:
            continue
        top_touched = False
        first = vols[ul[s]] + dv[s]
        if volume_metric:
            first *= inv_bw[ul[s]]
        new_changed_max = first
        for i in range(s, e):
            l = ul[i]
            if l == top:
                top_touched = True
            nv = vols[l] + dv[i]
            if volume_metric:
                nv *= inv_bw[l]
            if nv > new_changed_max:
                new_changed_max = nv
        if top_touched:
            # Max load over links outside this candidate's sorted slice.
            max_unchanged = 0.0
            any_unchanged = False
            ptr = s
            for l in range(nl):
                while ptr < e and ul[ptr] < l:
                    ptr += 1
                if ptr < e and ul[ptr] == l:
                    continue
                if not any_unchanged or load[l] > max_unchanged:
                    max_unchanged = load[l]
                    any_unchanged = True
        else:
            max_unchanged = load[top]
        new_mc = max_unchanged if max_unchanged > new_changed_max else new_changed_max
        if new_mc < mc - eps:
            out[k] = True
            continue
        if new_mc > mc + eps:
            continue
        # Equal MC: accept on AC improvement.
        used_new = base_used
        for i in range(s, e):
            l = ul[i]
            before = msgs[l] > eps
            after = msgs[l] + dm[i] > eps
            if after and not before:
                used_new += 1
            elif before and not after:
                used_new -= 1
        n_terms = e - s
        terms = np.empty(n_terms, dtype=np.float64)
        if volume_metric:
            for i in range(s, e):
                terms[i - s] = dv[i] * inv_bw[ul[i]]
        else:
            for i in range(s, e):
                terms[i - s] = dv[i]
        total_new = total_base + _pairwise_sum(terms, 0, n_terms)
        new_ac = total_new / used_new if used_new != 0 else 0.0
        out[k] = new_ac < ac - eps
    return out


# ---------------------------------------------------------------------------
# commTasks index refresh (kernels/congestion.py).
# ---------------------------------------------------------------------------


@njit(cache=True)
def comm_index(links, edge_of_entry, src_t, dst_t, nl):
    """Link → interleaved (src, dst) task CSR via stable counting sort.

    A counting sort that appends entries in input order within each
    link bucket *is* ``np.argsort(kind='stable')`` over the link keys,
    so the bucket contents match the reference ordering exactly.
    """
    ne = links.shape[0]
    per_link = np.zeros(nl, dtype=np.int64)
    for i in range(ne):
        per_link[links[i]] += 1
    comm_ptr = np.zeros(nl + 1, dtype=np.int64)
    for l in range(nl):
        comm_ptr[l + 1] = comm_ptr[l] + 2 * per_link[l]
    fill = comm_ptr[:nl].copy()
    tasks = np.empty(2 * ne, dtype=np.int64)
    for i in range(ne):
        l = links[i]
        p = fill[l]
        e = edge_of_entry[i]
        tasks[p] = src_t[e]
        tasks[p + 1] = dst_t[e]
        fill[l] = p + 2
    return comm_ptr, tasks


# ---------------------------------------------------------------------------
# RouteTable kernels (topology/routing.py).
# ---------------------------------------------------------------------------


@njit(cache=True)
def accumulate_loads(ptr, links, volumes, nl):
    """Per-link ``(message_count, volume)`` over all routed pairs.

    Accumulation runs pair-major in CSR-entry order — the exact order
    ``np.add.at`` (unbuffered, sequential) applies the reference's
    repeated-volume updates, so even non-integer volumes agree bit for
    bit.  Message counts are integer-exact either way.
    """
    msgs = np.zeros(nl, dtype=np.float64)
    vols = np.zeros(nl, dtype=np.float64)
    for pair in range(ptr.shape[0] - 1):
        v = volumes[pair]
        for i in range(ptr[pair], ptr[pair + 1]):
            l = links[i]
            msgs[l] += 1.0
            vols[l] += v
    return msgs, vols


@njit(cache=True)
def splice_routes(ptr, links, pairs, new_links, new_counts):
    """Replace the CSR segments of *pairs*; returns ``(next_ptr, out)``.

    Pure integer moves: kept segments scatter to their new offsets,
    replacement segments (concatenated in *pairs* order) fill the rest.
    """
    npairs = ptr.shape[0] - 1
    moved = np.zeros(npairs, dtype=np.bool_)
    counts_next = np.empty(npairs, dtype=np.int64)
    for p in range(npairs):
        counts_next[p] = ptr[p + 1] - ptr[p]
    for i in range(pairs.shape[0]):
        moved[pairs[i]] = True
        counts_next[pairs[i]] = new_counts[i]
    next_ptr = np.zeros(npairs + 1, dtype=np.int64)
    for p in range(npairs):
        next_ptr[p + 1] = next_ptr[p] + counts_next[p]
    out = np.empty(next_ptr[npairs], dtype=np.int64)
    for p in range(npairs):
        if not moved[p]:
            src0 = ptr[p]
            dst0 = next_ptr[p]
            for i in range(ptr[p + 1] - ptr[p]):
                out[dst0 + i] = links[src0 + i]
    off = 0
    for i in range(pairs.shape[0]):
        dst0 = next_ptr[pairs[i]]
        for j in range(new_counts[i]):
            out[dst0 + j] = new_links[off + j]
        off += new_counts[i]
    return next_ptr, out
