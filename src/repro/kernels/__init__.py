"""Vectorized hot-path kernels shared by the mapping algorithms.

The mappers' inner loops — hop-distance lookups, BFS frontier sweeps,
swap-gain evaluation — live here as batched NumPy kernels so the
algorithm modules stay readable while the arithmetic stays in contiguous
arrays.  Everything in this package is *behaviour-preserving*: the
kernels reproduce the scalar reference paths bit for bit (see
``tests/test_kernels.py`` and ``tests/test_kernels_golden.py``).

:mod:`repro.kernels.backend` adds a second implementation tier: the
hottest kernels dispatch to Numba-compiled variants
(:mod:`repro.kernels.native`) when the optional ``numba`` dependency is
installed (or explicitly requested via ``REPRO_KERNEL_BACKEND`` /
``--kernel-backend``), with the NumPy paths remaining the
always-available bit-identical reference.
"""

# Backend first: it has no intra-package dependencies, and the sibling
# modules below import it at module scope.
from repro.kernels.backend import (
    KERNEL_BACKENDS,
    backend_info,
    get_backend,
    numba_available,
    resolve_backend,
    set_backend,
    use_backend,
    warm_up,
)
from repro.kernels.congestion import CongestionModel
from repro.kernels.hoptable import DEFAULT_MATRIX_MAX_NODES, HopTable, hop_table_for
from repro.kernels.swapgain import (
    all_task_whops,
    batched_swap_gains,
    refresh_whops_around,
    task_whops_many,
    total_weighted_hops,
)

__all__ = [
    "CongestionModel",
    "DEFAULT_MATRIX_MAX_NODES",
    "HopTable",
    "KERNEL_BACKENDS",
    "hop_table_for",
    "all_task_whops",
    "backend_info",
    "batched_swap_gains",
    "get_backend",
    "numba_available",
    "refresh_whops_around",
    "resolve_backend",
    "set_backend",
    "task_whops_many",
    "total_weighted_hops",
    "use_backend",
    "warm_up",
]
