"""Vectorized hot-path kernels shared by the mapping algorithms.

The mappers' inner loops — hop-distance lookups, BFS frontier sweeps,
swap-gain evaluation — live here as batched NumPy kernels so the
algorithm modules stay readable while the arithmetic stays in contiguous
arrays.  Everything in this package is *behaviour-preserving*: the
kernels reproduce the scalar reference paths bit for bit (see
``tests/test_kernels.py`` and ``tests/test_kernels_golden.py``).
"""

from repro.kernels.congestion import CongestionModel
from repro.kernels.hoptable import DEFAULT_MATRIX_MAX_NODES, HopTable, hop_table_for
from repro.kernels.swapgain import (
    all_task_whops,
    batched_swap_gains,
    refresh_whops_around,
    task_whops_many,
    total_weighted_hops,
)

__all__ = [
    "CongestionModel",
    "DEFAULT_MATRIX_MAX_NODES",
    "HopTable",
    "hop_table_for",
    "all_task_whops",
    "batched_swap_gains",
    "refresh_whops_around",
    "task_whops_many",
    "total_weighted_hops",
]
