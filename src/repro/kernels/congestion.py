"""Incremental congestion model — the shared route/congestion subsystem.

One :class:`CongestionModel` owns everything Algorithm 3 (and every
other congestion consumer) needs about the network state of a mapping:

* the static routes of all task-graph edges, held as a
  :class:`~repro.topology.routing.RouteTable` (CSR ``edge -> directed
  link ids``) and **delta-updated** on every committed swap — only the
  O(deg) edges incident to the swapped tasks are re-routed, everything
  else is spliced from cached segments;
* the per-link ``msgs``/``vols`` load arrays, updated by exact sparse
  deltas in O(deg·D) per commit (D = torus diameter) — never rebuilt;
* the ``commTasks`` search index (link → tasks routed through it) as a
  CSR pair, re-derived from the cached route segments on the paper's
  refresh cadence instead of re-enumerating every route.

The batched-candidate kernel :meth:`CongestionModel.evaluate_swaps` is
the performance headline: it scores all ≤Δ BFS-ordered swap partners of
a task in one shot — old-route deltas gathered from the table, new
routes for *all* candidates enumerated in a single ``routes_bulk``
call — instead of two route enumerations per candidate.  The accept /
reject verdicts reproduce the scalar :meth:`swap_improves` arithmetic
exactly (same unique-link deltas, same MC/AC comparisons, same
epsilons), so refinement trajectories are unchanged; with the repo's
integer communication volumes the equality is bit-exact.

Staleness contract: the route table and the load arrays are *never*
stale — they are updated on every commit.  The ``commTasks`` index is
deliberately refreshed only every ``refresh_interval`` commits, exactly
like the reference implementation's periodic rebuild (it is a search
index, not a correctness structure, and the paper's pop order depends
on that cadence); the refresh itself costs a sort over cached segments,
not a route enumeration.  ``tests/test_congestion_model.py`` pins both
halves of the contract.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.kernels.backend import get_backend
from repro.topology.routing import RouteTable, _ranges, routes_bulk
from repro.topology.torus import Torus3D

__all__ = ["CongestionModel"]

_EPS = 1e-9


def _gather_segments(
    data: np.ndarray, starts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Concatenate ``data[starts[i]:starts[i]+counts[i]]`` segments."""
    return data[np.repeat(starts, counts) + _ranges(counts)]


class CongestionModel:
    """Delta-updated per-link congestion state of one mapping.

    Parameters
    ----------
    torus:
        The machine network (routes, bandwidths, link id space).
    src_t, dst_t, vol:
        Edge list of the (directed) task communication graph.
    gamma:
        Task → node mapping; the model owns (and mutates) this array.
    metric:
        ``'volume'`` tracks volume congestion VC (``UMC``), ``'message'``
        tracks message counts (``UMMC`` hands in multiplicity weights).
    route_table:
        Optional pre-built :class:`RouteTable` for ``gamma``'s endpoint
        pairs (e.g. shared through the API's artifact cache).  The model
        copies it, so cached tables stay pristine.
    refresh_interval:
        Commits between ``commTasks`` index refreshes (the reference
        implementation's rebuild cadence; the pop order of Algorithm 3
        depends on it, so changing it changes refinement trajectories).
    """

    def __init__(
        self,
        torus: Torus3D,
        src_t: np.ndarray,
        dst_t: np.ndarray,
        vol: np.ndarray,
        gamma: np.ndarray,
        *,
        metric: str = "volume",
        route_table: RouteTable | None = None,
        refresh_interval: int = 8,
    ) -> None:
        if metric not in ("volume", "message"):
            raise ValueError("metric must be 'volume' or 'message'")
        self.torus = torus
        self.metric = metric
        self.refresh_interval = int(refresh_interval)
        self.gamma = np.asarray(gamma, dtype=np.int64)
        self.src_t = np.asarray(src_t, dtype=np.int64)
        self.dst_t = np.asarray(dst_t, dtype=np.int64)
        self.vol = np.asarray(vol, dtype=np.float64)

        bw = torus.link_bandwidths()
        self._inv_bw = np.zeros_like(bw)
        np.divide(1.0, bw, out=self._inv_bw, where=bw > 0)

        n = self.gamma.shape[0]
        self.host = np.full(torus.num_nodes, -1, dtype=np.int64)
        self.host[self.gamma] = np.arange(n)

        # Per-task incident edge ids (both directions), precomputed once:
        # swap evaluation is then O(deg·D) instead of scanning all edges.
        m = self.src_t.shape[0]
        ends = np.concatenate([self.src_t, self.dst_t])
        eids = np.concatenate([np.arange(m, dtype=np.int64)] * 2)
        order = np.argsort(ends, kind="stable")
        counts = np.bincount(ends, minlength=n)
        self._inc_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self._inc_ptr[1:])
        self._inc_ids = eids[order]

        if route_table is None:
            route_table = RouteTable.build(
                torus, self.gamma[self.src_t], self.gamma[self.dst_t]
            )
        else:
            route_table = route_table.copy()
        self.routes = route_table
        #: Per-candidate deltas stashed by the last ``evaluate_swaps``
        #: batch so the winning candidate's commit can reuse them
        #: instead of re-deriving (one ``routes_bulk`` saved per
        #: commit); invalidated by every committed swap.
        self._eval_stash = None
        self._refresh_comm_index()  # also accumulates msgs/vols

    # ------------------------------------------------------------------
    # commTasks search index (CSR link -> tasks, paper refresh cadence)
    # ------------------------------------------------------------------
    def _refresh_comm_index(self) -> None:
        """Re-derive the link → tasks CSR from the cached route segments.

        Bucket order matches a fresh ``routes_bulk`` rebuild bit for
        bit: within one link's bucket every entry shares that link's
        dimension and a static route crosses a link at most once, so
        both the reference (dimension-major over edges) and a stable
        sort of the edge-major CSR order the bucket by edge id.

        The load arrays are re-accumulated from the table on the same
        cadence: a no-op for integer volumes (the deltas are exact) but
        it bounds float round-off drift to one refresh interval, like
        the reference implementation's periodic rebuild did — still
        with zero route enumeration.
        """
        self._commits_since_refresh = 0
        self.msgs, self.vols = self.routes.accumulate(self.vol)
        edge_of_entry = self.routes.pair_of_entry()
        links = self.routes.links
        fn = get_backend().comm_index
        if fn is not None:
            self._comm_ptr, self._comm_tasks = fn(
                links, edge_of_entry, self.src_t, self.dst_t, self.torus.num_links
            )
            return
        order = np.argsort(links, kind="stable")
        links_final = links[order]
        edges_final = edge_of_entry[order]

        nl = self.torus.num_links
        per_link = np.bincount(links_final, minlength=nl)
        self._comm_ptr = np.zeros(nl + 1, dtype=np.int64)
        np.cumsum(per_link * 2, out=self._comm_ptr[1:])
        tasks = np.empty(2 * links_final.shape[0], dtype=np.int64)
        tasks[0::2] = self.src_t[edges_final]
        tasks[1::2] = self.dst_t[edges_final]
        self._comm_tasks = tasks

    def tasks_through(self, link: int) -> List[int]:
        """Distinct tasks routed through *link*, in route-traversal order.

        (Both endpoints of a message can move its route, so each crossing
        contributes its sender and receiver.)  Reads the refreshed index,
        which intentionally lags commits by up to ``refresh_interval``.
        """
        link = int(link)
        seg = self._comm_tasks[self._comm_ptr[link] : self._comm_ptr[link + 1]]
        if seg.size == 0:
            return []
        uniq, first = np.unique(seg, return_index=True)
        return uniq[np.argsort(first, kind="stable")].tolist()

    # ------------------------------------------------------------------
    # metric views
    # ------------------------------------------------------------------
    def _load(self) -> np.ndarray:
        """The per-link congestion the refiner optimizes (VC or messages).

        ``message`` mode reads ``self.vols`` too: the pipeline hands the
        message variant a graph whose edge *weights* are fine message
        multiplicities, so the tracked maximum is exactly the rank-level
        MMC (a coarse edge aggregates many rank pairs).
        """
        if self.metric == "volume":
            return self.vols * self._inv_bw
        return self.vols

    def most_congested_link(self) -> int:
        load = self._load()
        top = int(np.argmax(load))
        return top if load[top] > _EPS else -1

    def current_mc_ac(self) -> Tuple[float, float]:
        _, mc, ac, _, _, _ = self._probe_context()
        return mc, ac

    # ------------------------------------------------------------------
    # swap machinery
    # ------------------------------------------------------------------
    def _incident_edges(self, t1: int, t2: int) -> np.ndarray:
        """Distinct edge ids touching either task."""
        a = self._inc_ids[self._inc_ptr[t1] : self._inc_ptr[t1 + 1]]
        b = self._inc_ids[self._inc_ptr[t2] : self._inc_ptr[t2 + 1]]
        return np.unique(np.concatenate([a, b]))

    def _swap_route_delta(self, t1: int, t2: int):
        """Deltas and replacement segments of swapping ``Γ[t1] ↔ Γ[t2]``.

        Returns ``(links, d_msgs, d_vols, edges, new_links, new_counts)``
        where the first three are the unique-link sparse load deltas and
        the last three feed :meth:`RouteTable.replace_routes`.  Old
        routes come from the cached table; only the new positions of the
        incident edges are enumerated.
        """
        edges = self._incident_edges(t1, t2)
        n1, n2 = int(self.gamma[t1]), int(self.gamma[t2])

        lo = self.routes.ptr[edges]
        old_counts = self.routes.ptr[edges + 1] - lo
        old_links = _gather_segments(self.routes.links, lo, old_counts)
        old_vol = np.repeat(self.vol[edges], old_counts)

        src_tasks = self.src_t[edges]
        dst_tasks = self.dst_t[edges]

        def translate(task_ids: np.ndarray) -> np.ndarray:
            out = self.gamma[task_ids].copy()
            moved = (task_ids == t1) | (task_ids == t2)
            out[moved] = np.where(task_ids[moved] == t1, n2, n1)
            return out

        new_src = translate(src_tasks)
        new_dst = translate(dst_tasks)
        keep_new = new_src != new_dst
        links_n, msg_n = routes_bulk(self.torus, new_src[keep_new], new_dst[keep_new])

        # Replacement CSR segments, pair-major (stable sort keeps the
        # traversal order within each route).
        order = np.argsort(msg_n, kind="stable")
        new_links = links_n[order]
        kept_counts = np.bincount(msg_n, minlength=int(keep_new.sum()))
        new_counts = np.zeros(edges.shape[0], dtype=np.int64)
        new_counts[keep_new] = kept_counts

        all_links = np.concatenate([old_links, links_n])
        if all_links.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty, edges, new_links, new_counts
        d_msg = np.concatenate(
            [
                -np.ones_like(old_links, dtype=np.float64),
                np.ones_like(links_n, dtype=np.float64),
            ]
        )
        d_vol = np.concatenate([-old_vol, self.vol[edges][keep_new][msg_n]])
        uniq, inv = np.unique(all_links, return_inverse=True)
        dm = np.bincount(inv, weights=d_msg, minlength=uniq.shape[0])
        dv = np.bincount(inv, weights=d_vol, minlength=uniq.shape[0])
        return uniq, dm, dv, edges, new_links, new_counts

    def _swap_deltas(
        self, t1: int, t2: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sparse per-link ``(links, d_msgs, d_vols)`` of swapping t1 ↔ t2."""
        links, dm, dv, _, _, _ = self._swap_route_delta(t1, t2)
        return links, dm, dv

    def _probe_context(self):
        """Per-probe global state, computed once per candidate batch.

        One pass over the load array serves every comparison the accept
        rule makes: ``load.sum()`` doubles as the AC numerator and the
        volume-metric base total (``load`` *is* ``vols * inv_bw`` there,
        and plain ``vols`` in message mode).
        """
        load = self._load()
        n_used = int(np.count_nonzero(self.msgs > 0))
        total_base = load.sum()
        mc = float(load.max()) if n_used else 0.0
        ac = float(total_base / n_used) if n_used else 0.0
        top = int(np.argmax(load))
        base_used = int(np.count_nonzero(self.msgs > _EPS))
        return load, mc, ac, top, float(total_base), base_used

    def swap_improves(self, t1: int, t2: int) -> bool:
        """Virtual swap: does MC improve — or AC at equal MC?"""
        links, dm, dv = self._swap_deltas(t1, t2)
        if links.size == 0:
            return False
        load, mc, ac, top, total_base, base_used = self._probe_context()
        bounds = np.asarray([0, links.shape[0]], dtype=np.int64)
        return bool(
            self._verdicts(
                links, dm, dv, bounds, load, mc, ac, top, total_base, base_used
            )[0]
        )

    def _verdict(
        self,
        links: np.ndarray,
        dm: np.ndarray,
        dv: np.ndarray,
        load: np.ndarray,
        mc: float,
        ac: float,
        top: int,
        total_base: float,
        base_used: int,
    ) -> bool:
        """The scalar accept rule on precomputed deltas (Algorithm 3)."""
        if links.size == 0:
            return False
        new_changed = (
            (self.vols[links] + dv) * self._inv_bw[links]
            if self.metric == "volume"
            else self.vols[links] + dv
        )
        # Max over unchanged links: cheap when the argmax is untouched.
        if top in set(links.tolist()):
            mask = np.ones(load.shape[0], dtype=bool)
            mask[links] = False
            max_unchanged = float(load[mask].max()) if mask.any() else 0.0
        else:
            max_unchanged = float(load[top])
        new_mc = max(
            max_unchanged, float(new_changed.max()) if new_changed.size else 0.0
        )
        if new_mc < mc - _EPS:
            return True
        if new_mc > mc + _EPS:
            return False
        # Equal MC: accept on AC improvement.  The used-link count only
        # changes on the touched links, so adjust the global count by
        # their before/after difference.
        seg = self.msgs[links]
        used_new = base_used + int(
            np.count_nonzero(seg + dm > _EPS) - np.count_nonzero(seg > _EPS)
        )
        if self.metric == "volume":
            total_new = total_base + float((dv * self._inv_bw[links]).sum())
        else:
            total_new = total_base + float(dv.sum())
        new_ac = total_new / used_new if used_new else 0.0
        return new_ac < ac - _EPS

    def _verdicts(
        self,
        ul: np.ndarray,
        dm: np.ndarray,
        dv: np.ndarray,
        bounds: np.ndarray,
        load: np.ndarray,
        mc: float,
        ac: float,
        top: int,
        total_base: float,
        base_used: int,
    ) -> np.ndarray:
        """Accept verdicts of many candidates (``bounds`` slices ul/dm/dv).

        The single dispatch point of the accept rule: the scalar probe
        (:meth:`swap_improves`, K=1) and the batched Δ-kernel
        (:meth:`evaluate_swaps`) both land here, so within one process
        the two paths always share the exact same arithmetic — native
        when the kernel backend carries a compiled ``verdicts``, the
        per-candidate :meth:`_verdict` reference otherwise.
        """
        fn = get_backend().verdicts
        if fn is not None:
            return fn(
                ul,
                dm,
                dv,
                bounds,
                self.vols,
                self.msgs,
                self._inv_bw,
                load,
                float(mc),
                float(ac),
                int(top),
                float(total_base),
                int(base_used),
                self.metric == "volume",
                _EPS,
            )
        K = bounds.shape[0] - 1
        out = np.zeros(K, dtype=bool)
        for k in range(K):
            s, e = bounds[k], bounds[k + 1]
            out[k] = self._verdict(
                ul[s:e], dm[s:e], dv[s:e], load, mc, ac, top, total_base, base_used
            )
        return out

    # ------------------------------------------------------------------
    # batched candidate evaluation (the Δ-kernel)
    # ------------------------------------------------------------------
    def evaluate_swaps(self, t1: int, cands: np.ndarray) -> np.ndarray:
        """Score swapping *t1* against every candidate in one shot.

        Returns ``bool[K]`` — candidate *k*'s verdict equals
        ``swap_improves(t1, cands[k])`` — with one ``routes_bulk`` call
        for all candidates' moved edges (old-route deltas are gathered
        from the cached table) instead of two enumerations per
        candidate.  The per-candidate deltas and replacement segments
        are stashed so a following :meth:`commit_swap` of any candidate
        reuses them instead of re-deriving (zero routing work per
        commit).
        """
        self._eval_stash = None
        cands = np.asarray(cands, dtype=np.int64)
        K = cands.shape[0]
        out = np.zeros(K, dtype=bool)
        if K == 0:
            return out
        m = self.src_t.shape[0]
        nl = self.torus.num_links

        # -- per-candidate unique incident edge sets (composite keys) --
        e1 = self._inc_ids[self._inc_ptr[t1] : self._inc_ptr[t1 + 1]]
        lo2 = self._inc_ptr[cands]
        cnt2 = self._inc_ptr[cands + 1] - lo2
        e2 = _gather_segments(self._inc_ids, lo2, cnt2)
        ks = np.arange(K, dtype=np.int64)
        comp = np.concatenate(
            [
                (ks[:, None] * m + e1[None, :]).ravel(),
                np.repeat(ks, cnt2) * m + e2,
            ]
        )
        comp = np.unique(comp)
        k_of = comp // m
        e_of = comp % m

        # -- old-route deltas from the cached segments -----------------
        r_lo = self.routes.ptr[e_of]
        r_cnt = self.routes.ptr[e_of + 1] - r_lo
        old_links = _gather_segments(self.routes.links, r_lo, r_cnt)
        old_k = np.repeat(k_of, r_cnt)
        old_vol = np.repeat(self.vol[e_of], r_cnt)

        # -- new routes: one bulk enumeration over all candidates ------
        n1 = int(self.gamma[t1])
        n2 = self.gamma[cands]  # per candidate
        s_tasks = self.src_t[e_of]
        d_tasks = self.dst_t[e_of]
        c_k = cands[k_of]
        new_src = np.where(
            s_tasks == t1, n2[k_of], np.where(s_tasks == c_k, n1, self.gamma[s_tasks])
        )
        new_dst = np.where(
            d_tasks == t1, n2[k_of], np.where(d_tasks == c_k, n1, self.gamma[d_tasks])
        )
        keep = new_src != new_dst
        links_n, msg_n = routes_bulk(self.torus, new_src[keep], new_dst[keep])
        new_k = k_of[keep][msg_n]
        new_vol = self.vol[e_of][keep][msg_n]

        # -- per-(candidate, link) sparse deltas -----------------------
        comp_links = np.concatenate([old_k * nl + old_links, new_k * nl + links_n])
        if comp_links.size == 0:
            return out
        d_msg = np.concatenate(
            [
                -np.ones_like(old_links, dtype=np.float64),
                np.ones_like(links_n, dtype=np.float64),
            ]
        )
        d_vol = np.concatenate([-old_vol, new_vol])
        uniq, inv = np.unique(comp_links, return_inverse=True)
        dm = np.bincount(inv, weights=d_msg, minlength=uniq.shape[0])
        dv = np.bincount(inv, weights=d_vol, minlength=uniq.shape[0])
        uk = uniq // nl
        ul = uniq % nl
        bounds = np.searchsorted(uk, np.arange(K + 1))

        # -- stash per-candidate commit payloads -----------------------
        # Everything a commit needs is already here: the unique-link
        # deltas per candidate (``ul``/``dm``/``dv`` sliced by
        # ``bounds``) and the replacement CSR segments, reordered
        # pair-major exactly like ``_swap_route_delta`` builds them.
        # The slices reproduce the scalar derivation bit for bit — same
        # unique-link order, same bincount accumulation order.
        order_n = np.argsort(msg_n, kind="stable")
        kept_total = int(keep.sum())
        kept_counts = np.bincount(msg_n, minlength=kept_total)
        msg_ptr = np.zeros(kept_total + 1, dtype=np.int64)
        np.cumsum(kept_counts, out=msg_ptr[1:])
        kept_k = k_of[keep]
        self._eval_stash = {
            "t1": int(t1),
            "cands": cands,
            "ul": ul,
            "dm": dm,
            "dv": dv,
            "bounds": bounds,
            "e_of": e_of,
            "edge_bounds": np.searchsorted(k_of, np.arange(K + 1)),
            "kept_e": e_of[keep],
            "kept_counts": kept_counts,
            "msg_bounds": np.searchsorted(kept_k, np.arange(K + 1)),
            "msg_ptr": msg_ptr,
            "sorted_new_links": links_n[order_n],
        }

        # -- verdicts (accept rule per candidate; K ≤ Δ) ---------------
        load, mc, ac, top, total_base, base_used = self._probe_context()
        return self._verdicts(
            ul, dm, dv, bounds, load, mc, ac, top, total_base, base_used
        )

    # ------------------------------------------------------------------
    # commits
    # ------------------------------------------------------------------
    def _stashed_commit_payload(self, t1: int, t2: int):
        """The last ``evaluate_swaps`` batch's payload for (t1, t2), if any.

        Returns the same six-tuple ``_swap_route_delta`` derives —
        unique-link deltas plus replacement CSR segments — sliced out of
        the stashed batch, or ``None`` when the pair was not in the
        batch (the scalar probe path, or a foreign swap).
        """
        stash = self._eval_stash
        if stash is None or stash["t1"] != int(t1):
            return None
        hit = np.flatnonzero(stash["cands"] == int(t2))
        if hit.size == 0:
            return None
        k = int(hit[0])
        s, e = int(stash["bounds"][k]), int(stash["bounds"][k + 1])
        es, ee = int(stash["edge_bounds"][k]), int(stash["edge_bounds"][k + 1])
        edges = stash["e_of"][es:ee]
        ms, me = int(stash["msg_bounds"][k]), int(stash["msg_bounds"][k + 1])
        new_links = stash["sorted_new_links"][
            stash["msg_ptr"][ms] : stash["msg_ptr"][me]
        ]
        new_counts = np.zeros(edges.shape[0], dtype=np.int64)
        if me > ms:
            pos = np.searchsorted(edges, stash["kept_e"][ms:me])
            new_counts[pos] = stash["kept_counts"][ms:me]
        return (
            stash["ul"][s:e],
            stash["dm"][s:e],
            stash["dv"][s:e],
            edges,
            new_links,
            new_counts,
        )

    def commit_swap(self, t1: int, t2: int) -> None:
        """Apply the swap: exact sparse load deltas + route-table splice.

        The per-link deltas are exact (see the delta-vs-rebuild property
        test), so the load arrays update in O(deg·D); the incident
        edges' new routes are spliced into the shared table and the
        ``commTasks`` index refreshes on its cadence — nothing is ever
        re-enumerated from scratch.  When the swap was scored by the
        preceding :meth:`evaluate_swaps` batch, the winning candidate's
        deltas and replacement segments are reused verbatim, eliding
        even the single ``routes_bulk`` pass ``_swap_route_delta`` would
        spend.
        """
        payload = self._stashed_commit_payload(t1, t2)
        if payload is None:
            payload = self._swap_route_delta(t1, t2)
        links, dm, dv, edges, new_links, new_counts = payload
        if links.size:
            self.msgs[links] += dm
            self.vols[links] += dv
            np.maximum(self.msgs, 0.0, out=self.msgs)
            np.maximum(self.vols, 0.0, out=self.vols)
        n1, n2 = int(self.gamma[t1]), int(self.gamma[t2])
        self.gamma[t1] = n2
        self.gamma[t2] = n1
        self.host[n1] = t2
        self.host[n2] = t1
        self.routes.replace_routes(edges, new_links, new_counts)
        self._eval_stash = None  # Γ changed: stale candidate deltas
        self._commits_since_refresh += 1
        if self._commits_since_refresh >= self.refresh_interval:
            self._refresh_comm_index()
