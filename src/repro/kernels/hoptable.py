"""Cached hop-distance tables for the 3-D torus.

``Torus3D.hop_distance`` recomputes per-dimension ring distances from the
coordinate arrays on every call — correct, but the mapping algorithms'
hot loops call it thousands of times with tiny operands, so the
coordinate gathers and ``min``/``abs`` temporaries dominate.  The paper's
complexity argument ("the hop count between two arbitrary nodes can be
found in O(1)") deserves O(1) with a small constant:

* per-dimension *ring tables* ``ring[d][k] = min(k, size_d - k)`` turn
  the distance into three gathers and two adds;
* below :data:`DEFAULT_MATRIX_MAX_NODES` nodes, a full ``int16[n, n]``
  pairwise hop matrix makes every lookup a single fancy-index gather —
  32 MB at the 4096-node cap, far beyond the torus sizes the paper's
  16384-processor runs need.

The produced hop values are exactly the integers ``hop_distance``
returns, so kernels built on either path yield bit-identical metrics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels.backend import get_backend

__all__ = ["HopTable", "hop_table_for", "DEFAULT_MATRIX_MAX_NODES"]

#: Largest node count for which the dense pairwise matrix is built
#: (``n^2`` int16 entries: 4096 nodes = 32 MB).
DEFAULT_MATRIX_MAX_NODES = 4096


class HopTable:
    """Precomputed hop-distance lookups for one torus.

    Parameters
    ----------
    torus:
        Any object with ``dims``, ``num_nodes`` and ``coords()`` — in
        practice a :class:`repro.topology.torus.Torus3D`.
    matrix_max_nodes:
        Build the dense pairwise matrix only when ``num_nodes`` does not
        exceed this threshold; above it the per-dimension ring tables
        serve every query.
    """

    __slots__ = ("dims", "num_nodes", "_coords", "_ring", "_matrix")

    def __init__(self, torus, matrix_max_nodes: int = DEFAULT_MATRIX_MAX_NODES) -> None:
        self.dims = tuple(int(d) for d in torus.dims)
        self.num_nodes = int(torus.num_nodes)
        self._coords = torus.coords()
        max_size = max(self.dims)
        ring = np.zeros((3, max_size), dtype=np.int64)
        for d, size in enumerate(self.dims):
            k = np.arange(size, dtype=np.int64)
            ring[d, :size] = np.minimum(k, size - k)
        self._ring = ring
        self._matrix: Optional[np.ndarray] = None
        if self.num_nodes <= int(matrix_max_nodes):
            self._matrix = self._build_matrix()

    # ------------------------------------------------------------------
    def _build_matrix(self) -> np.ndarray:
        """Dense ``int16[n, n]`` hop matrix from the per-dim ring tables.

        Assembled dimension by dimension through small per-coordinate
        matrices so no int64 ``n x n`` temporary is ever materialized.
        """
        c = self._coords
        out: Optional[np.ndarray] = None
        for d, size in enumerate(self.dims):
            k = np.arange(size, dtype=np.int64)
            diff = np.abs(k[:, None] - k[None, :])
            per_coord = np.minimum(diff, size - diff).astype(np.int16)
            block = per_coord[np.ix_(c[:, d], c[:, d])]
            if out is None:
                out = block
            else:
                out += block
        assert out is not None
        return out

    @property
    def has_matrix(self) -> bool:
        """True when lookups go through the dense pairwise matrix."""
        return self._matrix is not None

    # ------------------------------------------------------------------
    # batched lookups
    # ------------------------------------------------------------------
    def pairwise_hops(self, a, b) -> np.ndarray:
        """Elementwise hop counts between node-id arrays *a* and *b*.

        Drop-in for ``torus.hop_distance`` (same integer values).
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if self._matrix is not None:
            if a.ndim == 1 and a.shape == b.shape:
                fn = get_backend().hops_gather
                if fn is not None:
                    return fn(self._matrix, a, b)
            return self._matrix[a, b]
        ca = self._coords[a]
        cb = self._coords[b]
        ring = self._ring
        sizes = self.dims
        return (
            ring[0][(ca[..., 0] - cb[..., 0]) % sizes[0]]
            + ring[1][(ca[..., 1] - cb[..., 1]) % sizes[1]]
            + ring[2][(ca[..., 2] - cb[..., 2]) % sizes[2]]
        )

    def hops_to_many(self, node: int, others) -> np.ndarray:
        """Hop counts from one *node* to every id in *others* (1-D)."""
        others = np.asarray(others, dtype=np.int64)
        if self._matrix is not None:
            if others.ndim == 1:
                fn = get_backend().hops_row
                if fn is not None:
                    return fn(self._matrix[int(node)], others)
            return self._matrix[int(node)][others]
        return self.pairwise_hops(np.int64(node), others)

    def cross_hops(self, a, b) -> np.ndarray:
        """Hop matrix ``[len(a), len(b)]`` between two node-id arrays.

        Replaces the ``repeat``/``tile``/``reshape`` dance of the scalar
        call sites with one gather (matrix path) or one broadcast.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if self._matrix is not None:
            return self._matrix[a[:, None], b[None, :]]
        return self.pairwise_hops(a[:, None], b[None, :])


def hop_table_for(torus, matrix_max_nodes: int = DEFAULT_MATRIX_MAX_NODES) -> HopTable:
    """The (cached) :class:`HopTable` of *torus*.

    The table is stored on the torus instance so every mapper, refiner
    and metric evaluation working on the same machine shares one build.
    Only default-threshold tables go through the cache — a custom
    *matrix_max_nodes* always builds (and returns) a fresh table, so an
    explicit threshold is never silently overridden by a cache hit.
    Objects without the cache slot just get a fresh table.
    """
    if matrix_max_nodes != DEFAULT_MATRIX_MAX_NODES:
        return HopTable(torus, matrix_max_nodes=matrix_max_nodes)
    cached = getattr(torus, "_hop_table", None)
    if cached is not None:
        return cached
    table = HopTable(torus)
    try:
        torus._hop_table = table
    except AttributeError:
        pass
    return table
