"""Pluggable kernel-backend dispatch: NumPy reference vs Numba natives.

The kernel layer keeps exactly one behaviour — the NumPy reference
implementations in :mod:`repro.kernels` / :mod:`repro.topology.routing`
/ :mod:`repro.graph.csr` — and this module decides, per process, whether
the hottest inner loops run through those references or through the
compiled variants in :mod:`repro.kernels.native`.

Selection order (first hit wins):

1. an explicit backend name (``--kernel-backend``, ``set_backend``,
   ``ExecutorPool(kernel_backend=...)``),
2. the ``REPRO_KERNEL_BACKEND`` environment variable,
3. auto-detection: ``numba`` when importable, else ``numpy``.

Fallback is always graceful: requesting ``numba`` without numba
installed resolves to ``numpy`` with a recorded reason (never an
ImportError), and a kernel whose warm-up compile fails is individually
disabled — its call sites take the NumPy path while the rest of the set
stays native.  ``numpy`` therefore remains the always-available
bit-identical reference; the golden tests parametrize over both
backends to pin the equivalence.

Warm-up
-------
:func:`warm_up` compiles every native kernel once with
representative-dtype arguments and records per-kernel compile times.
Persistent pool workers call it from their initializer, so serving
traffic never pays JIT latency and the cost is per *worker lifetime*
(``@njit(cache=True)`` additionally persists compiled code on disk
across processes).  The module-level :func:`warmup_count` is the
observable the warm-once tests pin.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "KERNEL_BACKENDS",
    "KERNEL_NAMES",
    "ENV_VAR",
    "KernelBackend",
    "numba_available",
    "resolve_backend",
    "backend_info",
    "get_backend",
    "set_backend",
    "use_backend",
    "warm_up",
    "warmup_count",
]

#: Backends a process can select.
KERNEL_BACKENDS: Tuple[str, ...] = ("numpy", "numba")

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Dispatch slots — one per escalated kernel.  ``None`` in a slot means
#: "take the NumPy reference path" at that call site.
KERNEL_NAMES: Tuple[str, ...] = (
    "hops_gather",
    "hops_row",
    "expand_frontier_csr",
    "expand_frontier_padded",
    "swap_gains",
    "verdicts",
    "comm_index",
    "accumulate_loads",
    "splice_routes",
)

_availability: Optional[bool] = None


def numba_available() -> bool:
    """Whether the optional numba dependency imports (probed once)."""
    global _availability
    if _availability is None:
        try:
            import numba  # noqa: F401

            _availability = True
        except Exception:
            _availability = False
    return _availability


class KernelBackend:
    """One resolved backend: a name plus per-kernel dispatch slots.

    Call sites read the slots directly (``get_backend().verdicts``);
    a ``None`` slot routes to the NumPy reference.  ``numpy`` backends
    carry all-``None`` slots by construction.
    """

    __slots__ = ("name", "requested", "fallback_reason", "warmup") + KERNEL_NAMES

    def __init__(
        self,
        name: str,
        requested: str,
        fallback_reason: Optional[str] = None,
        kernels: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.requested = requested
        self.fallback_reason = fallback_reason
        #: Per-kernel warm-up record of the last :func:`warm_up` pass
        #: over this backend (None until warmed).
        self.warmup: Optional[dict] = None
        kernels = kernels or {}
        for slot in KERNEL_NAMES:
            setattr(self, slot, kernels.get(slot))

    def info(self) -> dict:
        """JSON-ready description (CLI ``list``/``stats``, pool stats)."""
        return {
            "backend": self.name,
            "requested": self.requested,
            "fallback_reason": self.fallback_reason,
            "numba_available": numba_available(),
            "native_kernels": [
                slot for slot in KERNEL_NAMES if getattr(self, slot) is not None
            ],
            "warmup": self.warmup,
        }


def resolve_backend(name: Optional[str] = None) -> Tuple[str, str, Optional[str]]:
    """``(resolved, requested, fallback_reason)`` of a backend choice.

    *name* ``None`` consults :data:`ENV_VAR`, then auto-detects.  An
    unknown name raises; an unsatisfiable ``numba`` request degrades to
    ``numpy`` with the reason recorded instead of raising, so optional
    acceleration can never break a deployment.
    """
    requested = name if name is not None else os.environ.get(ENV_VAR) or "auto"
    requested = str(requested).strip().lower()
    if requested not in KERNEL_BACKENDS + ("auto",):
        raise ValueError(
            f"unknown kernel backend {requested!r}; "
            f"choose from {('auto',) + KERNEL_BACKENDS}"
        )
    if requested == "numpy":
        return "numpy", requested, None
    if numba_available():
        return "numba", requested, None
    reason = (
        "numba is not installed (pip install -e .[native]); using numpy"
        if requested == "numba"
        else None
    )
    return "numpy", requested, reason


def backend_info(name: Optional[str] = None) -> dict:
    """Resolve *name* without installing it — observability helper."""
    resolved, requested, reason = resolve_backend(name)
    return {
        "backend": resolved,
        "requested": requested,
        "fallback_reason": reason,
        "numba_available": numba_available(),
    }


def _build_backend(name: Optional[str]) -> KernelBackend:
    resolved, requested, reason = resolve_backend(name)
    if resolved != "numba":
        return KernelBackend("numpy", requested, reason)
    try:
        from repro.kernels import native
    except Exception as exc:  # pragma: no cover - broken numba install
        return KernelBackend(
            "numpy", requested, f"native kernels failed to import: {exc!r}"
        )
    kernels = {slot: getattr(native, slot) for slot in KERNEL_NAMES}
    return KernelBackend("numba", requested, None, kernels)


_lock = threading.Lock()
_active: Optional[KernelBackend] = None
_warmup_count = 0


def get_backend() -> KernelBackend:
    """The process-wide active backend (resolved lazily on first use)."""
    backend = _active
    if backend is None:
        with _lock:
            backend = _active
            if backend is None:
                backend = set_backend(None)
    return backend


def set_backend(name: Optional[str] = None) -> KernelBackend:
    """Resolve and install the active backend; returns it.

    ``None`` re-resolves from the environment (useful after changing
    :data:`ENV_VAR`).  Installation is process-wide: every dispatching
    call site sees the new backend on its next call.
    """
    global _active
    backend = _build_backend(name)
    _active = backend
    return backend


@contextmanager
def use_backend(name: Optional[str]):
    """Temporarily install a backend (tests, benchmarks).

    Also mirrors the request into :data:`ENV_VAR` so process-pool
    workers spawned inside the block inherit the same choice; both the
    active backend and the environment are restored on exit.
    """
    global _active
    prev_backend = _active
    prev_env = os.environ.get(ENV_VAR)
    backend = set_backend(name)
    if name is None:
        os.environ.pop(ENV_VAR, None)
    else:
        os.environ[ENV_VAR] = str(name)
    try:
        yield backend
    finally:
        if prev_env is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = prev_env
        _active = prev_backend


def warmup_count() -> int:
    """Warm-up passes performed in this process (per-lifetime observable)."""
    return _warmup_count


def _warm_inputs() -> dict:
    """Representative-dtype arguments, one tiny call per kernel slot.

    Dtypes mirror the production call sites exactly (int16 hop matrix,
    int32 CSR indices, int64 ids/pointers, float64 weights/loads) so
    the warm-up compile is the signature serving traffic hits.
    """
    matrix = np.zeros((3, 3), dtype=np.int16)
    ids = np.asarray([0, 1], dtype=np.int64)
    indptr = np.asarray([0, 1, 2], dtype=np.int64)
    indices = np.asarray([1, 0], dtype=np.int32)
    weights = np.ones(2, dtype=np.float64)
    gamma = np.asarray([0, 1], dtype=np.int64)
    frontier = np.asarray([0], dtype=np.int64)
    pad = np.asarray([[1], [0]], dtype=np.int32)
    f64 = np.asarray([1.0, -1.0], dtype=np.float64)
    ones = np.ones(2, dtype=np.float64)
    bounds = np.asarray([0, 2], dtype=np.int64)
    return {
        "hops_gather": (matrix, ids, ids[::-1].copy()),
        "hops_row": (matrix[0], ids),
        "expand_frontier_csr": (
            indptr,
            indices,
            frontier,
            np.asarray([True, False]),
        ),
        "expand_frontier_padded": (pad, frontier, np.asarray([True, False])),
        "swap_gains": (indptr, indices, weights, gamma, matrix, 0, 0, ids[1:], 0.0),
        "verdicts": (
            ids,
            f64,
            f64,
            bounds,
            ones,
            ones,
            ones,
            ones,
            1.0,
            1.0,
            0,
            2.0,
            2,
            True,
            1e-9,
        ),
        "comm_index": (ids, np.asarray([0, 0], dtype=np.int64), ids, ids[::-1].copy(), 2),
        "accumulate_loads": (bounds, ids, ones[:1], 2),
        "splice_routes": (indptr, ids, ids[:1], ids[1:], np.asarray([1], dtype=np.int64)),
    }


def warm_up(backend: Optional[KernelBackend] = None) -> dict:
    """Compile every native kernel once; returns the warm-up record.

    Slots whose compile fails are disabled individually (set to
    ``None`` → NumPy path) with the error recorded, keeping partial
    acceleration over hard failure.  On the ``numpy`` backend this is
    a cheap no-op that still bumps :func:`warmup_count`, so the
    warm-once lifecycle is observable without numba installed.
    """
    global _warmup_count
    be = backend if backend is not None else get_backend()
    t0 = time.perf_counter()
    kernels: dict = {}
    if be.name == "numba":
        for slot, args in _warm_inputs().items():
            fn = getattr(be, slot)
            if fn is None:
                continue
            k0 = time.perf_counter()
            try:
                fn(*args)
            except Exception as exc:
                setattr(be, slot, None)
                kernels[slot] = {
                    "compiled": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            else:
                kernels[slot] = {
                    "compiled": True,
                    "compile_s": time.perf_counter() - k0,
                }
    with _lock:
        _warmup_count += 1
        seq = _warmup_count
    record = {
        "backend": be.name,
        "requested": be.requested,
        "fallback_reason": be.fallback_reason,
        "warmup_s": time.perf_counter() - t0,
        "kernels": kernels,
        "seq": seq,
    }
    be.warmup = record
    return record
