"""Batched weighted-hop kernels for the swap refiners.

Algorithm 2 evaluates up to Δ swap candidates per popped task; the scalar
path paid four ``hop_distance`` calls plus fresh ``np.full`` temporaries
*per candidate*.  The kernels here score a whole candidate batch with a
fixed number of NumPy calls:

* :func:`all_task_whops` / :func:`task_whops_many` — the per-task
  ``TASKWHOPS`` rows (Σ hops·volume over the task's neighbours) for all
  tasks or a touched subset, used to build and refresh the ``whHeap``;
* :func:`batched_swap_gains` — the exact WH change of swapping one task
  against each of ``k`` partners, in one ragged-gather pass.

All sums are over integer hop counts times the task graph's communication
volumes.  Volumes in this reproduction are integer-valued (message/byte
counts), which makes every weighted-hop sum exact in float64 and the
batched results equal to the scalar reference *bit for bit* — the
golden-equivalence tests pin this down end to end.  With non-integer
volumes the reduction orders differ, so agreement is only to a few ulp
(~1e-9 in the equivalence tests) and a swap whose scalar gain is exactly
zero could in principle tip over ``WHRefiner``'s 1e-12 acceptance
threshold.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, _ranges
from repro.kernels.backend import get_backend
from repro.kernels.hoptable import HopTable

__all__ = [
    "all_task_whops",
    "task_whops_many",
    "batched_swap_gains",
    "refresh_whops_around",
    "total_weighted_hops",
]


def total_weighted_hops(graph: CSRGraph, table: HopTable, gamma: np.ndarray) -> float:
    """WH of mapping *gamma* over *graph*'s directed edges (Σ hops·vol).

    The single implementation behind ``wh_of``, ``fine_wh_of`` and the
    ``weighted_hops`` metric, so the refiners' internal WH bookkeeping
    can never diverge from the reported metric.
    """
    src, dst, vol = graph.edge_list()
    hops = table.pairwise_hops(gamma[src], gamma[dst])
    return float((hops * vol).sum())


def all_task_whops(sym: CSRGraph, table: HopTable, gamma: np.ndarray) -> np.ndarray:
    """``TASKWHOPS`` of every task under Γ in one pass (float64[n]).

    Equivalent to calling the scalar per-task helper n times; one edge
    gather plus a ``bincount`` instead.
    """
    n = sym.num_vertices
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(sym.indptr))
    if rows.size == 0:
        return np.zeros(n, dtype=np.float64)
    hops = table.pairwise_hops(gamma[rows], gamma[sym.indices])
    return np.bincount(rows, weights=hops * sym.weights, minlength=n)


def task_whops_many(
    sym: CSRGraph, table: HopTable, gamma: np.ndarray, tasks: np.ndarray
) -> np.ndarray:
    """``TASKWHOPS`` of a task subset (float64[len(tasks)]).

    Used to refresh the cached per-task rows around a committed swap —
    only the swapped pair and their neighbourhoods can change.
    """
    tasks = np.asarray(tasks, dtype=np.int64)
    starts = sym.indptr[tasks]
    counts = sym.indptr[tasks + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.zeros(tasks.size, dtype=np.float64)
    gather = np.repeat(starts, counts) + _ranges(counts)
    nbrs = sym.indices[gather]
    hops = table.pairwise_hops(np.repeat(gamma[tasks], counts), gamma[nbrs])
    seg = np.repeat(np.arange(tasks.size, dtype=np.int64), counts)
    return np.bincount(seg, weights=hops * sym.weights[gather], minlength=tasks.size)


def refresh_whops_around(
    heap, sym: CSRGraph, table: HopTable, gamma: np.ndarray, swapped, whops=None
) -> None:
    """Refresh ``whHeap`` priorities around a committed swap.

    Only the swapped tasks and their neighbourhoods can change, and only
    entries still *in* the heap are updated (popped tasks stay processed
    for the pass, as in the paper's Algorithm 2 lines 5–6).  With
    *whops* given, the cached per-task rows are refreshed as well.
    Shared by the coarse and fine WH refiners.
    """
    t1, t2 = swapped
    touched = np.unique(
        np.concatenate([sym.neighbors(t1), sym.neighbors(t2), np.asarray([t1, t2])])
    ).astype(np.int64)
    fresh = task_whops_many(sym, table, gamma, touched)
    if whops is not None:
        whops[touched] = fresh
    for u, w in zip(touched.tolist(), fresh.tolist()):
        if u in heap:
            heap.update(u, w)


def batched_swap_gains(
    sym: CSRGraph,
    table: HopTable,
    gamma: np.ndarray,
    t1: int,
    partners: np.ndarray,
    *,
    whops_t1: float,
) -> np.ndarray:
    """Exact WH gains of swapping Γ[*t1*] with each partner (float64[k]).

    Positive entries are improvements.  The direct ``t1``–partner edge
    keeps its dilation under a swap and is excluded from both sides of
    the difference, exactly as in the scalar ``_swap_gain``.

    Parameters
    ----------
    whops_t1:
        ``TASKWHOPS(t1)`` under the current Γ (the cached heap row) —
        the "before" cost of ``t1`` including a possible direct edge.
    """
    partners = np.asarray(partners, dtype=np.int64)
    k = partners.size
    if k == 0:
        return np.zeros(0, dtype=np.float64)
    if table._matrix is not None:
        fn = get_backend().swap_gains
        if fn is not None:
            gamma = np.asarray(gamma, dtype=np.int64)
            return fn(
                sym.indptr,
                sym.indices,
                sym.weights,
                gamma,
                table._matrix,
                int(t1),
                int(gamma[t1]),
                partners,
                float(whops_t1),
            )
    nbrs1 = sym.neighbors(t1)
    w1 = sym.neighbor_weights(t1)
    n1 = int(gamma[t1])
    n2s = gamma[partners]
    nbr_nodes1 = gamma[nbrs1]

    # -- t1 side ------------------------------------------------------
    if nbrs1.size:
        # cost(t1, n2_j, t2_j): the excluded direct neighbour sits at
        # n2_j itself (hop 0), so the full row sum needs no correction.
        cost_t1_after = table.cross_hops(n2s, nbr_nodes1) @ w1
        # cost(t1, n1, t2_j): subtract the direct edge's contribution
        # from the cached full row (rows sorted: binary-search member).
        idx = np.searchsorted(nbrs1, partners)
        idxc = np.minimum(idx, nbrs1.size - 1)
        direct_w = np.where(nbrs1[idxc] == partners, w1[idxc], 0.0)
        cost_t1_before = whops_t1 - direct_w * table.hops_to_many(n1, n2s)
    else:
        # Isolated pivot: only the partners' costs move.
        cost_t1_after = np.zeros(k, dtype=np.float64)
        cost_t1_before = np.full(k, float(whops_t1))

    # -- partner side (ragged over the partners' neighbour lists) -----
    starts = sym.indptr[partners]
    counts = sym.indptr[partners + 1] - starts
    if int(counts.sum()):
        gather = np.repeat(starts, counts) + _ranges(counts)
        nbrs2 = sym.indices[gather]
        w2 = np.where(nbrs2 == t1, 0.0, sym.weights[gather])
        nodes2 = gamma[nbrs2]
        seg = np.repeat(np.arange(k, dtype=np.int64), counts)
        before_hops = table.pairwise_hops(np.repeat(n2s, counts), nodes2)
        cost_t2_before = np.bincount(seg, weights=before_hops * w2, minlength=k)
        cost_t2_after = np.bincount(
            seg, weights=table.hops_to_many(n1, nodes2) * w2, minlength=k
        )
    else:
        cost_t2_before = np.zeros(k, dtype=np.float64)
        cost_t2_after = np.zeros(k, dtype=np.float64)

    return (cost_t1_before + cost_t2_before) - (cost_t1_after + cost_t2_after)
