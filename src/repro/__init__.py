"""repro — reproduction of "Fast and High Quality Topology-Aware Task Mapping".

Deveci, Kaya, Uçar, Çatalyürek — IPDPS 2015 (hal-01159677).

The package rebuilds, in pure NumPy-backed Python, the paper's three
mapping algorithms (greedy WH mapping, WH swap refinement, MC congestion
refinement), the baselines they are compared against (DEF, LibTopoMap- and
Scotch-like mappers), and every substrate the evaluation needs: a CSR
graph kernel, a column-net hypergraph model, a multilevel partitioner with
seven tool personalities, a Gemini-like 3-D torus with static routing and
ALPS-like sparse allocations, mapping/partition/node metrics, a flow-level
network simulator with two applications (communication-only, SpMV), and
an NNLS regression analysis — plus an experiment harness regenerating all
five figures and Table I.

Quickstart
----------
>>> from repro import quick_map
>>> report = quick_map(rows=2000, procs=64)     # doctest: +SKIP
>>> report["UG"].wh < report["DEF"].wh          # doctest: +SKIP
True
"""

from repro.graph import CSRGraph, SparseMatrix, TaskGraph, generate_matrix
from repro.hypergraph import Hypergraph
from repro.partition import get_partitioner, PARTITIONER_NAMES, partition_graph
from repro.topology import (
    AllocationSpec,
    Machine,
    SparseAllocator,
    Torus3D,
    torus_for_job,
)
from repro.metrics import (
    MappingMetrics,
    NodeMetrics,
    PartitionMetrics,
    evaluate_mapping,
    evaluate_node_metrics,
    evaluate_partition,
)
from repro.mapping import (
    DefaultMapper,
    GreedyMapper,
    MCRefiner,
    MAPPER_NAMES,
    ScotchMapper,
    TopoMapper,
    TwoPhaseMapper,
    WHRefiner,
    get_mapper,
)
from repro.sim import CommOnlyApp, FlowSimulator, SpMVSimulator
from repro.analysis import nnls_regression, geometric_mean
from repro.api import (
    ArtifactCache,
    AsyncMappingService,
    ExecutorPool,
    MapRequest,
    MapResponse,
    MapperSpec,
    MappingService,
    register_mapper,
    registered_mappers,
)

__version__ = "1.1.0"

__all__ = [
    "CSRGraph",
    "SparseMatrix",
    "TaskGraph",
    "generate_matrix",
    "Hypergraph",
    "get_partitioner",
    "PARTITIONER_NAMES",
    "partition_graph",
    "Torus3D",
    "Machine",
    "SparseAllocator",
    "AllocationSpec",
    "torus_for_job",
    "MappingMetrics",
    "PartitionMetrics",
    "NodeMetrics",
    "evaluate_mapping",
    "evaluate_partition",
    "evaluate_node_metrics",
    "GreedyMapper",
    "WHRefiner",
    "MCRefiner",
    "DefaultMapper",
    "TopoMapper",
    "ScotchMapper",
    "TwoPhaseMapper",
    "MAPPER_NAMES",
    "get_mapper",
    "CommOnlyApp",
    "FlowSimulator",
    "SpMVSimulator",
    "nnls_regression",
    "geometric_mean",
    "quick_map",
    "ArtifactCache",
    "AsyncMappingService",
    "ExecutorPool",
    "MapRequest",
    "MapResponse",
    "MapperSpec",
    "MappingService",
    "register_mapper",
    "registered_mappers",
]


def quick_map(rows: int = 2000, procs: int = 64, *, group: str = "cage", seed: int = 0):
    """One-call demo: generate, partition, map with every algorithm.

    Returns ``{mapper_name: MappingMetrics}`` at rank granularity — the
    fastest way to see the paper's headline effect (UG/UWH beating DEF on
    WH, UMC on MC).
    """
    import numpy as np

    matrix = generate_matrix(group, rows, seed=seed)
    h = Hypergraph.from_matrix(matrix)
    tool = get_partitioner("PATOH")
    part = tool.partition(matrix, procs, seed=seed, hypergraph=h).part
    loads = np.bincount(part, weights=h.loads, minlength=procs)
    tg = TaskGraph.from_comm_triplets(procs, h.comm_triplets(part, procs), loads=loads)

    ppn = 4
    nodes = procs // ppn
    torus = torus_for_job(nodes)
    machine = SparseAllocator(torus).allocate(
        AllocationSpec(num_nodes=nodes, procs_per_node=ppn, seed=seed)
    )
    responses = MappingService().map_batch(
        MapRequest(
            task_graph=tg,
            machine=machine,
            algorithms=MAPPER_NAMES,
            seed=seed,
            evaluate=True,
        )
    )
    return {r.algorithm: r.metrics for r in responses}
