"""ShardRouter — workload-fingerprint plan partitioning across hosts.

The router answers three questions for the coordinator:

* **Where does a node run?**  Rendezvous (highest-random-weight)
  hashing of the node's *workload fingerprint* — the content keys
  ``(tg_key, m_key)`` of its request's task graph and machine — over
  the registered hosts.  Hashing the workload rather than the node
  means every node of one workload (its grouping, its DEF baseline,
  its route chains, every consumer) lands on the same host by
  construction: the locality guarantee is structural, not best-effort.
  Rendezvous hashing also gives minimal disruption on host loss — only
  the dead host's workloads move.
* **What may be stolen?**  Grouping nodes and DEF-baseline producer
  nodes are *pinned*: they are the shared artifacts the paper's
  prep-time accounting (Fig. 3) amortizes across a workload's
  algorithms, and moving one to another host would force its consumers
  to re-read (or worse, recompute) it across the store.  Everything
  else is fair game once a shard's ready backlog exceeds
  ``steal_threshold`` while another host sits idle — the
  run-time-rebalancing idea of the spiral-mapping line of work applied
  to plan scheduling.
* **Where does a node go when its host dies?**  :meth:`reroute`
  re-runs the rendezvous over the surviving hosts, so all of a dead
  host's workloads migrate consistently (consumers follow their
  producers to the same survivor).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.api.plan import Plan

__all__ = ["ShardRouter", "DEFAULT_STEAL_THRESHOLD"]

#: Ready-backlog depth above which an idle host may steal.
DEFAULT_STEAL_THRESHOLD = 2


def _score(host: str, workload: Tuple[int, int]) -> int:
    """Rendezvous weight of *host* for *workload* (stable across runs)."""
    raw = hashlib.sha256(
        f"{host}|{workload[0]:x}|{workload[1]:x}".encode()
    ).digest()
    return int.from_bytes(raw[:8], "big")


class ShardRouter:
    """Assigns one plan's nodes to hosts; pins shared-artifact producers.

    Parameters
    ----------
    plan:
        The planned batch (``build_plan`` output).
    hosts:
        Stable host identifiers (the coordinator uses ``host:port``
        addresses).  Order does not affect placement — rendezvous
        hashing is symmetric — so registering hosts in a different
        order yields the same shards.
    steal_threshold:
        Ready-queue backlog above which a hot shard's unpinned nodes
        may be stolen by an idle host.
    """

    def __init__(
        self,
        plan: Plan,
        hosts: Sequence[str],
        *,
        steal_threshold: int = DEFAULT_STEAL_THRESHOLD,
    ) -> None:
        if not hosts:
            raise ValueError("ShardRouter needs at least one host")
        if len(set(hosts)) != len(hosts):
            raise ValueError(f"duplicate host addresses: {list(hosts)}")
        self.plan = plan
        self.hosts: Tuple[str, ...] = tuple(hosts)
        self.steal_threshold = max(1, int(steal_threshold))
        self.steals = 0
        self.reroutes = 0
        #: node index -> assigned host (initial placement; stealing and
        #: rerouting update it so stats reflect where nodes actually ran)
        self.assignment: Dict[int, str] = {}
        self._pinned: Set[int] = set()
        baseline_nodes = set(plan.baseline_producers.values())
        for node in plan.nodes:
            workload = plan.workload_of(node.index)
            self.assignment[node.index] = self._place(workload, self.hosts)
            if node.kind == "grouping" or node.index in baseline_nodes:
                self._pinned.add(node.index)

    @staticmethod
    def _place(workload: Tuple[int, int], hosts: Sequence[str]) -> str:
        return max(hosts, key=lambda h: _score(h, workload))

    # ------------------------------------------------------------------
    def host_of(self, index: int) -> str:
        """The host currently assigned to run node *index*."""
        return self.assignment[index]

    def pinned(self, index: int) -> bool:
        """Whether node *index* must stay on its shard (never stolen)."""
        return index in self._pinned

    def shards(self) -> Dict[str, List[int]]:
        """Current node partition, host -> sorted node indices."""
        out: Dict[str, List[int]] = {h: [] for h in self.hosts}
        for index, host in self.assignment.items():
            out[host].append(index)
        for nodes in out.values():
            nodes.sort()
        return out

    # ------------------------------------------------------------------
    def steal(
        self,
        idle_host: str,
        ready_backlogs: Dict[str, List[int]],
    ) -> Optional[int]:
        """Pick one ready node for *idle_host* to steal, or ``None``.

        Victim selection: the live host with the deepest ready backlog,
        provided it exceeds :attr:`steal_threshold`.  The newest ready
        node that is not pinned is taken (tail stealing — the victim
        keeps the nodes it is about to run, preserving its locality
        streak).  The caller removes the node from the victim's queue;
        this method just updates the assignment and counters.
        """
        victim, backlog = None, None
        for host, queue in ready_backlogs.items():
            if host == idle_host or len(queue) <= self.steal_threshold:
                continue
            if backlog is None or len(queue) > len(backlog):
                victim, backlog = host, queue
        if backlog is None:
            return None
        for index in reversed(backlog):
            if not self.pinned(index):
                self.assignment[index] = idle_host
                self.steals += 1
                return index
        return None

    def reroute(self, index: int, live_hosts: Sequence[str]) -> str:
        """Re-place one node after host loss (rendezvous over survivors)."""
        if not live_hosts:
            raise ValueError("no live hosts to reroute onto")
        host = self._place(self.plan.workload_of(index), live_hosts)
        self.assignment[index] = host
        self.reroutes += 1
        return host

    def stats(self) -> dict:
        shards = self.shards()
        return {
            "hosts": len(self.hosts),
            "nodes": len(self.assignment),
            "pinned": len(self._pinned),
            "steals": self.steals,
            "reroutes": self.reroutes,
            "shard_sizes": {h: len(v) for h, v in shards.items()},
            "steal_threshold": self.steal_threshold,
        }
