"""Multi-host plan sharding over a remote content-addressed store.

The distributed layer stacks three pieces on machinery the engine
already has:

* :mod:`repro.dist.remote` — a TCP object protocol over the store's
  content-addressed ``.npz`` byte format: ``ArtifactStoreServer``
  (``repro-map store-serve``) fronts one directory, and
  :class:`~repro.dist.remote.RemoteArtifactStore` is the
  :class:`~repro.api.store.ArtifactStore` client that
  :class:`~repro.api.shm.TieredArtifactStore` layers under shm/disk so
  remote reads promote into host-local memory.
* :mod:`repro.dist.host` — ``HostServer`` (``repro-map shard-serve``)
  executes individual plan nodes against its own
  :class:`~repro.api.service.MappingService` (or a local
  :class:`~repro.api.pool.ExecutorPool`), reading batch payloads and
  shared artifacts through the remote store; ``HostClient`` is its
  future-returning counterpart.
* :mod:`repro.dist.router` / :mod:`repro.dist.coordinator` —
  :class:`~repro.dist.router.ShardRouter` assigns plan subgraphs to
  hosts by workload fingerprint (groupings and DEF-baseline producers
  pinned host-local with their consumers, work-stealing when a shard
  runs hot), and the coordinator drives the whole plan to outcomes the
  single-host executor's collector already understands.
"""

from repro.dist.coordinator import run_sharded
from repro.dist.host import HostClient, HostLostError, HostServer
from repro.dist.remote import ArtifactStoreServer, RemoteArtifactStore
from repro.dist.router import ShardRouter

__all__ = [
    "ArtifactStoreServer",
    "RemoteArtifactStore",
    "HostServer",
    "HostClient",
    "HostLostError",
    "ShardRouter",
    "run_sharded",
]
