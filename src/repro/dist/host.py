"""Shard host — executes individual plan nodes for a remote coordinator.

``HostServer`` (the process behind ``repro-map shard-serve``) owns a
:class:`~repro.api.service.MappingService` whose cache layers over a
:class:`~repro.api.shm.TieredArtifactStore` with the cluster's remote
store underneath, so

* batch request payloads published by the coordinator are read through
  the remote tier and promoted into host-local shm/memory,
* shared artifacts this host computes (groupings, DEF baselines, route
  tables) replicate to the remote store, where sibling hosts' reads
  find them, and
* everything this host computes twice is a cache hit the second time,
  exactly as on a single host.

The wire protocol reuses the serve layer's JSON framing plus binary
blobs.  Ops: ``hello`` (identity + capacity), ``run_node`` (execute one
plan node; grouping nodes answer with JSON timings, algo nodes with an
encoded :class:`~repro.api.request.MapResponse` blob, failures with the
engine's :class:`~repro.api.fault.PlanError` shape), ``stats`` and
``shutdown``.  One node runs per connection-handler thread; the
client opens one connection per in-flight slot, so a host's concurrency
equals the coordinator's view of its capacity.

With ``backend="process"`` the host drives a local
:class:`~repro.api.pool.ExecutorPool` instead of running nodes inline —
the coordinator is then literally driving remote ``ExecutorPool``\\ s —
and the pool's workers rebuild the same remote-tiered store from
initargs.

``HostClient`` is the coordinator-side counterpart: ``submit`` returns
a ``concurrent.futures.Future`` executed on a per-host thread pool
(one thread ↔ one connection ↔ one in-flight node).  A broken socket
surfaces as :class:`HostLostError`, the signal the coordinator's
retry-on-host-loss rerouting keys off.

For deterministic chaos tests, :meth:`HostServer.arm_kill` makes the
host *die* — close its listener and every live connection without
replying — the moment it is asked to run a node whose request carries
an armed tag, emulating a mid-batch host crash without needing a real
subprocess.
"""

from __future__ import annotations

import os
import socket
import socketserver
import tempfile
import threading
import uuid
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, Optional, Set, Tuple

from repro.api.store import decode_artifact_bytes, encode_artifact_bytes, make_store
from repro.dist.remote import parse_address
from repro.serve.protocol import recv_blob, recv_frame, send_blob, send_frame

__all__ = ["HostServer", "HostClient", "HostLostError", "RemoteNodeError"]

#: Decoded batch payloads kept per host (mirrors the pool workers').
_BATCH_LIMIT = 4

_OP_TIMEOUT = 300.0


class HostLostError(ConnectionError):
    """The shard host's connection died (crash, kill, network loss)."""

    def __init__(self, host: str, message: str = "") -> None:
        super().__init__(message or f"shard host {host} lost")
        self.host = host


class RemoteNodeError(RuntimeError):
    """A node raised *on the host*; carries the PlanError-shaped dict."""

    def __init__(self, error: dict) -> None:
        super().__init__(error.get("message", "remote node failed"))
        self.error = dict(error)


class _HostHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        server: "HostServer" = self.server.owner  # type: ignore[attr-defined]
        sock = self.request
        sock.settimeout(_OP_TIMEOUT)
        server._track(sock, add=True)
        try:
            while True:
                try:
                    frame = recv_frame(sock)
                except Exception:
                    return
                if frame is None:
                    return
                try:
                    stop = server.handle_op(sock, frame)
                except Exception:
                    return
                if stop:
                    return
        finally:
            server._track(sock, add=False)


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class HostServer:
    """One shard host: a mapping service fronted by the node protocol.

    Parameters
    ----------
    address:
        ``(host, port)`` or ``"host:port"`` to bind (port 0 = ephemeral).
    store_remote:
        Address of the cluster's ``store-serve`` process; layered under
        this host's local store tiers.  ``None`` runs store-less
        cross-host sharing (each host still correct, nothing shared).
    store_dir:
        Local store root (default: a private temp directory).
    store_tier:
        Local tier policy (``auto``/``shm``/``disk``).
    capacity:
        Concurrent nodes this host advertises (default: CPU count).
    backend:
        ``"inline"`` executes nodes in the handler thread against the
        host's own service; ``"process"`` drives a local
        :class:`~repro.api.pool.ExecutorPool` of that capacity.
    host_id:
        Stable identity reported by ``hello`` (default: pid-derived).
    """

    def __init__(
        self,
        address=("127.0.0.1", 0),
        *,
        store_remote: Optional[str] = None,
        store_dir: Optional[str] = None,
        store_tier: str = "auto",
        capacity: Optional[int] = None,
        backend: str = "inline",
        host_id: Optional[str] = None,
        cache_entries: Optional[int] = None,
        cache_bytes: Optional[int] = None,
        kernel_backend: Optional[str] = None,
    ) -> None:
        from repro.api.cache import ArtifactCache
        from repro.api.executor import default_workers
        from repro.api.service import MappingService

        if backend not in ("inline", "process"):
            raise ValueError("HostServer backend must be 'inline' or 'process'")
        self.host_id = host_id or f"host-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.capacity = int(capacity) if capacity else default_workers()
        self.backend = backend
        self.store_remote = store_remote
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if store_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-host-")
            store_dir = self._tmp.name
        self.pool = None
        if backend == "process":
            from repro.api.pool import ExecutorPool

            self.pool = ExecutorPool(
                "process",
                workers=self.capacity,
                store_dir=store_dir,
                store_tier=store_tier,
                store_remote=store_remote,
                kernel_backend=kernel_backend,
            )
            self.store = self.pool.store
            self.service = None
        else:
            self.store = make_store(
                store_dir, tier=store_tier, owner=True, remote=store_remote
            )
            cache = ArtifactCache(
                max_entries=cache_entries,
                max_bytes=cache_bytes,
                store=self.store,
            )
            cache.enable_concurrency()  # handler threads share the cache
            self.service = MappingService(cache=cache)

        self._lock = threading.Lock()
        self._connections: Set[socket.socket] = set()
        self._batches: "OrderedDict[str, tuple]" = OrderedDict()
        self._kill_tags: Set[str] = set()
        self._dead = False
        self._stopped = False
        self._counters = {
            "nodes_run": 0,
            "groupings_computed": 0,
            "node_errors": 0,
        }
        self._server = _Server(parse_address(address), _HostHandler)
        self._server.owner = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> "HostServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"repro-shard-{self.host_id}",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._server.serve_forever(poll_interval=0.1)

    def stop(self) -> None:
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            self._dead = True
        self._server.shutdown()
        try:
            self._server.server_close()
        except OSError:
            pass  # already closed by a simulated death
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.pool is not None:
            self.pool.close()
        elif self.store is not None and hasattr(self.store, "close"):
            self.store.close()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    # -- chaos ----------------------------------------------------------
    def arm_kill(self, tag: str) -> None:
        """Die abruptly when asked to run a node whose request has *tag*."""
        self._kill_tags.add(tag)

    def _die(self) -> None:
        """Emulate a host crash: every socket closes without a reply."""
        with self._lock:
            self._dead = True
            conns = list(self._connections)
        try:
            self._server.server_close()  # listener gone: no new connections
        except OSError:
            pass
        for sock in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    def _track(self, sock, *, add: bool) -> None:
        with self._lock:
            if add:
                self._connections.add(sock)
            else:
                self._connections.discard(sock)

    # -- ops ------------------------------------------------------------
    def handle_op(self, sock, frame: dict) -> bool:
        op = frame.get("op")
        if op == "run_node":
            return self._op_run_node(sock, frame)
        if op == "hello":
            send_frame(
                sock,
                {
                    "ok": True,
                    "host_id": self.host_id,
                    "capacity": self.capacity,
                    "backend": self.backend,
                },
            )
        elif op == "stats":
            send_frame(sock, {"ok": True, "stats": self.stats()})
        elif op == "shutdown":
            send_frame(sock, {"ok": True})
            threading.Thread(target=self.stop, daemon=True).start()
            return True
        else:
            send_frame(sock, {"ok": False, "error": f"unknown op {op!r}"})
        return False

    def _op_run_node(self, sock, frame: dict) -> bool:
        batch_key = frame["batch_key"]
        request_index = int(frame["request_index"])
        kind = frame["kind"]
        algorithm = frame.get("algorithm")
        try:
            request = self._request(batch_key, request_index)
            if request.tag is not None and str(request.tag) in self._kill_tags:
                self._die()
                return True  # no reply: the client sees a dead socket
            if self.pool is not None:
                from repro.api.pool import _persistent_run_node

                result = self.pool.submit(
                    _persistent_run_node, batch_key, request_index, kind, algorithm
                ).result()
            else:
                from repro.api.executor import run_plan_node

                result = run_plan_node(self.service, request, kind, algorithm)
        except Exception as exc:
            with self._lock:
                self._counters["node_errors"] += 1
            send_frame(
                sock,
                {
                    "ok": False,
                    "error": {
                        "kind": "error",
                        "message": str(exc) or type(exc).__name__,
                        "exception": type(exc).__name__,
                        "attempts": 1,
                        "node": f"{kind}:{algorithm or ''}",
                    },
                },
            )
            return False
        with self._lock:
            self._counters["nodes_run"] += 1
        if kind == "grouping":
            elapsed, computed = result
            if computed:
                with self._lock:
                    self._counters["groupings_computed"] += 1
            send_frame(
                sock,
                {
                    "ok": True,
                    "kind": "grouping",
                    "elapsed": float(elapsed),
                    "computed": bool(computed),
                },
            )
        else:
            blob = encode_artifact_bytes(("response", batch_key, frame["node"]), result)
            send_frame(sock, {"ok": True, "kind": "algo"})
            send_blob(sock, blob)
        return False

    def _request(self, batch_key: str, request_index: int):
        with self._lock:
            requests = self._batches.get(batch_key)
            if requests is not None:
                self._batches.move_to_end(batch_key)
        if requests is None:
            requests = self.store.load("batch", batch_key)
            if requests is None:
                raise RuntimeError(
                    f"batch payload {batch_key!r} not found in any store tier"
                )
            with self._lock:
                self._batches[batch_key] = requests
                while len(self._batches) > _BATCH_LIMIT:
                    self._batches.popitem(last=False)
        return requests[request_index]

    def stats(self) -> dict:
        with self._lock:
            counters = dict(self._counters)
        payload: Dict[str, Any] = {
            "host_id": self.host_id,
            "capacity": self.capacity,
            "backend": self.backend,
            **counters,
        }
        if self.service is not None:
            payload["cache"] = {
                ns: {
                    "hits": s.hits,
                    "misses": s.misses,
                    "store_hits": s.store_hits,
                }
                for ns, s in self.service.cache.stats().items()
            }
        if self.store is not None and hasattr(self.store, "stats"):
            try:
                payload["store"] = self.store.stats()
            except Exception:
                payload["store"] = None  # post-shutdown snapshot
        return payload


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------


class HostClient:
    """Future-returning client for one shard host.

    ``submit`` schedules the node on a thread pool sized to the host's
    advertised capacity; each pool thread keeps its own connection, so
    in-flight nodes stream concurrently and a host never sees more
    parallel work than it asked for.
    """

    def __init__(self, address, *, timeout: float = _OP_TIMEOUT) -> None:
        self.address = parse_address(address)
        self.name = f"{self.address[0]}:{self.address[1]}"
        self.timeout = timeout
        self.host_id: Optional[str] = None
        self.capacity = 1
        self._local = threading.local()
        self._lock = threading.Lock()
        self._sockets: Set[socket.socket] = set()
        self._executor: Optional[ThreadPoolExecutor] = None
        self.dead = False

    # -- connection per thread ------------------------------------------
    def _connect(self) -> socket.socket:
        sock = socket.create_connection(self.address, timeout=5.0)
        sock.settimeout(self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._lock:
            self._sockets.add(sock)
        return sock

    def _sock(self) -> socket.socket:
        sock = getattr(self._local, "sock", None)
        if sock is None:
            sock = self._connect()
            self._local.sock = sock
        return sock

    def _drop_sock(self) -> None:
        sock = getattr(self._local, "sock", None)
        if sock is not None:
            with self._lock:
                self._sockets.discard(sock)
            try:
                sock.close()
            except OSError:
                pass
            self._local.sock = None

    def _call(self, frame: dict) -> Tuple[dict, Optional[bytes]]:
        if self.dead:
            raise HostLostError(self.name)
        try:
            sock = self._sock()
            send_frame(sock, frame)
            reply = recv_frame(sock)
            if reply is None:
                raise ConnectionError("host closed the connection")
            blob = None
            if reply.get("ok") and reply.get("kind") == "algo":
                blob = recv_blob(sock)
            return reply, blob
        except RemoteNodeError:
            raise
        except Exception as exc:
            self._drop_sock()
            self.dead = True
            raise HostLostError(self.name, f"{self.name}: {exc}") from exc

    # -- public ops -----------------------------------------------------
    def hello(self) -> dict:
        """Handshake; raises :class:`HostLostError` when unreachable.

        Also sizes the submit pool to the host's advertised capacity.
        """
        reply, _ = self._call({"op": "hello"})
        if not reply.get("ok"):
            raise HostLostError(self.name, str(reply.get("error")))
        self.host_id = reply.get("host_id")
        self.capacity = max(1, int(reply.get("capacity", 1)))
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.capacity,
                thread_name_prefix=f"repro-dist-{self.name}",
            )
        return reply

    def submit(
        self,
        batch_key: str,
        node_index: int,
        request_index: int,
        kind: str,
        algorithm: Optional[str],
    ) -> Future:
        """Run one plan node on the host; resolves to the node outcome.

        Grouping nodes resolve to ``(elapsed, computed)``; algo nodes to
        a :class:`~repro.api.request.MapResponse`.  The future raises
        :class:`RemoteNodeError` when the node failed on the host and
        :class:`HostLostError` when the host itself is gone.
        """
        if self._executor is None:
            self.hello()

        def run():
            reply, blob = self._call(
                {
                    "op": "run_node",
                    "batch_key": batch_key,
                    "node": node_index,
                    "request_index": request_index,
                    "kind": kind,
                    "algorithm": algorithm,
                }
            )
            if not reply.get("ok"):
                raise RemoteNodeError(reply.get("error") or {})
            if reply.get("kind") == "grouping":
                return (float(reply["elapsed"]), bool(reply["computed"]))
            value = decode_artifact_bytes(
                ("response", batch_key, node_index), blob, default=None
            )
            if value is None:
                raise HostLostError(
                    self.name, f"{self.name}: undecodable node response"
                )
            return value

        return self._executor.submit(run)

    def request_stats(self) -> dict:
        reply, _ = self._call({"op": "stats"})
        return reply.get("stats", {})

    def shutdown_host(self) -> None:
        try:
            self._call({"op": "shutdown"})
        except HostLostError:
            pass

    def close(self) -> None:
        self.dead = True
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        with self._lock:
            socks = list(self._sockets)
            self._sockets.clear()
        for sock in socks:
            try:
                sock.close()
            except OSError:
                pass
