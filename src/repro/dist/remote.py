"""Remote artifact store — the content-addressed surface over TCP.

``ArtifactStoreServer`` fronts one directory with a thin
length-prefixed object protocol (the serve layer's JSON framing plus
binary blobs for artifact bytes), and :class:`RemoteArtifactStore` is
the client-side :class:`~repro.api.store.ArtifactStore` implementation.

The wire format *is* the disk format: clients serialize artifacts with
:func:`~repro.api.store.encode_artifact_bytes` (exactly the bytes a
:class:`~repro.api.store.DiskArtifactStore` would write) and address
them with :func:`~repro.api.store.artifact_digest` (exactly the
filename stem the disk store uses), so the server stores opaque blobs
at ``<root>/<namespace>/<digest>.npz`` via the same temp-file +
``os.replace`` dance — a disk store opened over the server's root sees
the same artifacts, and vice versa.  The server never deserializes
anything: corruption tolerance, key verification and codec versioning
all stay client-side, where they already live.

Failure model
-------------
Construction pings the server and **raises** on failure (a
misconfigured ``--store-remote`` should fail fast).  After that the
client degrades instead of raising: a dead server turns ``load`` into
a miss, ``save`` into a dropped replication and ``contains`` into
False, each counted under ``stats()["errors"]`` — the remote tier is
an optimization layer under :class:`~repro.api.shm.TieredArtifactStore`
and must never take a healthy host down with it.

One connection per client thread (kept in ``threading.local``), so a
host's worker threads stream artifacts concurrently without a shared
socket lock.
"""

from __future__ import annotations

import contextlib
import os
import socket
import socketserver
import tempfile
import threading
from typing import Any, Hashable, Optional, Tuple

from repro.api.store import (
    DEFAULT_PERSIST_NAMESPACES,
    ArtifactStore,
    artifact_digest,
    decode_artifact_bytes,
    encode_artifact_bytes,
)
from repro.serve.protocol import recv_blob, recv_frame, send_blob, send_frame

__all__ = [
    "ArtifactStoreServer",
    "RemoteArtifactStore",
    "RemoteStoreError",
    "parse_address",
]

#: Socket timeout (seconds) for one client op; generous — an op is one
#: round trip plus at most one artifact-sized blob each way.
_OP_TIMEOUT = 120.0

_MISSING = object()


class RemoteStoreError(ConnectionError):
    """The store server is unreachable or the conversation broke."""


def parse_address(address) -> Tuple[str, int]:
    """``"host:port"`` (or a ``(host, port)`` pair) → ``(host, port)``."""
    if isinstance(address, (tuple, list)) and len(address) == 2:
        return str(address[0]), int(address[1])
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ValueError(f"address {address!r} is not host:port")
    return host, int(port)


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------


class _StoreHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # one connection: a loop of ops until EOF
        server: "ArtifactStoreServer" = self.server.owner  # type: ignore[attr-defined]
        sock = self.request
        sock.settimeout(_OP_TIMEOUT)
        with server._track(sock):
            while True:
                try:
                    frame = recv_frame(sock)
                except Exception:
                    return  # torn conversation: drop the connection
                if frame is None:
                    return  # clean EOF
                try:
                    stop = server.handle_op(sock, frame)
                except Exception:
                    return
                if stop:
                    return


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ArtifactStoreServer:
    """Serves one directory of content-addressed artifacts over TCP.

    Ops (JSON control frame, blob where noted):

    ========  =============================================  =============
    op        request fields                                 reply
    ========  =============================================  =============
    ping      —                                              ``{ok, root}``
    save      ``ns, digest, force`` + blob                   ``{ok, skipped}``
    load      ``ns, digest``                                 ``{ok, found}`` + blob if found
    contains  ``ns, digest``                                 ``{ok, found}``
    delete    ``ns, digest``                                 ``{ok, removed}``
    stats     —                                              ``{ok, stats}``
    sweep     ``min_age_s``                                  ``{ok, removed}``
    clear     ``ns?``                                        ``{ok, removed}``
    count     ``ns?``                                        ``{ok, count}``
    ========  =============================================  =============

    Digest strings are sanitized against path escapes; everything else
    is opaque bytes.  Thread-per-connection; writes are atomic
    (temp + rename) so concurrent savers of one digest are safe.
    """

    def __init__(self, root: str, address=("127.0.0.1", 0)) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.Lock()
        self._counters = {
            "saves": 0,
            "save_skips": 0,
            "loads": 0,
            "load_hits": 0,
            "bytes_in": 0,
            "bytes_out": 0,
        }
        self._server = _Server(parse_address(address), _StoreHandler)
        self._server.owner = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._conns: set = set()

    @contextlib.contextmanager
    def _track(self, sock):
        """Register a live connection so :meth:`stop` can sever it."""
        with self._lock:
            self._conns.add(sock)
        try:
            yield
        finally:
            with self._lock:
                self._conns.discard(sock)

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> "ArtifactStoreServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-store-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._server.serve_forever(poll_interval=0.1)

    def stats(self) -> dict:
        """Server-side op counters (saves/loads/hits/skips and bytes)."""
        with self._lock:
            return dict(self._counters)

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        with self._lock:
            conns = list(self._conns)
        for sock in conns:  # sever live conversations, not just the listener
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- op dispatch ----------------------------------------------------
    def _path(self, namespace: str, digest: str) -> str:
        ns = os.path.basename(str(namespace))
        stem = os.path.basename(str(digest))
        if not ns or not stem:
            raise ValueError("empty namespace or digest")
        return os.path.join(self.root, ns, f"{stem}.npz")

    def _bump(self, counter: str, by: int = 1) -> None:
        with self._lock:
            self._counters[counter] += by

    def handle_op(self, sock, frame: dict) -> bool:
        """Execute one op; returns True when the connection should end."""
        op = frame.get("op")
        if op == "save":
            # The blob always follows the control frame — receive it
            # even if the target exists, to keep the stream in sync.
            data = recv_blob(sock)
            path = self._path(frame["ns"], frame["digest"])
            if not frame.get("force") and os.path.exists(path):
                self._bump("save_skips")
                send_frame(sock, {"ok": True, "skipped": True})
                return False
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                suffix=".npz.tmp", dir=os.path.dirname(path)
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
            self._bump("saves")
            self._bump("bytes_in", len(data))
            send_frame(sock, {"ok": True, "skipped": False})
        elif op == "load":
            self._bump("loads")
            path = self._path(frame["ns"], frame["digest"])
            try:
                with open(path, "rb") as fh:
                    data = fh.read()
            except OSError:
                send_frame(sock, {"ok": True, "found": False})
                return False
            self._bump("load_hits")
            self._bump("bytes_out", len(data))
            send_frame(sock, {"ok": True, "found": True})
            send_blob(sock, data)
        elif op == "contains":
            path = self._path(frame["ns"], frame["digest"])
            send_frame(sock, {"ok": True, "found": os.path.exists(path)})
        elif op == "delete":
            path = self._path(frame["ns"], frame["digest"])
            try:
                os.unlink(path)
                removed = True
            except OSError:
                removed = False
            send_frame(sock, {"ok": True, "removed": removed})
        elif op == "ping":
            send_frame(sock, {"ok": True, "root": self.root})
        elif op == "stats":
            with self._lock:
                counters = dict(self._counters)
            send_frame(sock, {"ok": True, "stats": counters})
        elif op == "sweep":
            removed = self._sweep(float(frame.get("min_age_s", 300.0)))
            send_frame(sock, {"ok": True, "removed": removed})
        elif op == "clear":
            removed = self._clear(frame.get("ns"))
            send_frame(sock, {"ok": True, "removed": removed})
        elif op == "count":
            send_frame(sock, {"ok": True, "count": self._count(frame.get("ns"))})
        else:
            send_frame(sock, {"ok": False, "error": f"unknown op {op!r}"})
        return False

    # -- maintenance (server-side mirrors of the disk store's) ----------
    def _namespace_dirs(self, namespace: Optional[str]):
        if namespace is not None:
            return [os.path.basename(str(namespace))]
        try:
            return [
                n
                for n in os.listdir(self.root)
                if os.path.isdir(os.path.join(self.root, n))
            ]
        except OSError:
            return []

    def _sweep(self, min_age_s: float) -> int:
        import time

        removed = 0
        cutoff = time.time() - min_age_s
        for ns in self._namespace_dirs(None):
            directory = os.path.join(self.root, ns)
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(directory, name)
                try:
                    if os.path.getmtime(path) <= cutoff:
                        os.unlink(path)
                        removed += 1
                except OSError:
                    pass
        return removed

    def _clear(self, namespace: Optional[str]) -> int:
        removed = 0
        for ns in self._namespace_dirs(namespace):
            directory = os.path.join(self.root, ns)
            if not os.path.isdir(directory):
                continue
            for name in os.listdir(directory):
                if name.endswith(".npz") or name.endswith(".tmp"):
                    try:
                        os.unlink(os.path.join(directory, name))
                    except OSError:
                        continue
                    if name.endswith(".npz"):
                        removed += 1
        return removed

    def _count(self, namespace: Optional[str]) -> int:
        total = 0
        for ns in self._namespace_dirs(namespace):
            directory = os.path.join(self.root, ns)
            if os.path.isdir(directory):
                total += sum(
                    1 for n in os.listdir(directory) if n.endswith(".npz")
                )
        return total


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------


class RemoteArtifactStore(ArtifactStore):
    """Client half: the :class:`ArtifactStore` surface over one server.

    See the module docstring for the failure model — constructor pings
    and raises, runtime ops degrade to misses and count ``errors``.
    """

    tier = "remote"

    def __init__(
        self,
        address,
        *,
        namespaces: frozenset = DEFAULT_PERSIST_NAMESPACES,
        timeout: float = _OP_TIMEOUT,
        connect_timeout: float = 5.0,
    ) -> None:
        self.address = parse_address(address)
        self.namespaces = frozenset(namespaces)
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.root = f"remote://{self.address[0]}:{self.address[1]}"
        self._local = threading.local()
        self._lock = threading.Lock()
        self._counters = {
            "saves": 0,
            "save_skips": 0,
            "loads": 0,
            "load_hits": 0,
            "errors": 0,
        }
        self._closed = False
        self.ping()  # fail fast on a misconfigured address

    # -- connection management ------------------------------------------
    def _connect(self) -> socket.socket:
        sock = socket.create_connection(self.address, timeout=self.connect_timeout)
        sock.settimeout(self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _sock(self) -> socket.socket:
        sock = getattr(self._local, "sock", None)
        if sock is None:
            sock = self._connect()
            self._local.sock = sock
        return sock

    def _drop_sock(self) -> None:
        sock = getattr(self._local, "sock", None)
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
            self._local.sock = None

    def _call(self, frame: dict, blob: Optional[bytes] = None) -> dict:
        """One request/response op; retries a broken *idle* connection
        once (the server may have dropped it between ops)."""
        if self._closed:
            raise RemoteStoreError("remote store client is closed")
        for attempt in (0, 1):
            fresh = getattr(self._local, "sock", None) is None
            try:
                sock = self._sock()
                send_frame(sock, frame)
                if blob is not None:
                    send_blob(sock, blob)
                reply = recv_frame(sock)
                if reply is None:
                    raise RemoteStoreError("server closed the connection")
                if not reply.get("ok"):
                    raise RemoteStoreError(str(reply.get("error", "rejected")))
                if reply.get("found") and frame.get("op") == "load":
                    reply["blob"] = recv_blob(sock)
                return reply
            except RemoteStoreError:
                self._drop_sock()
                raise
            except Exception as exc:
                self._drop_sock()
                if fresh or attempt:
                    raise RemoteStoreError(
                        f"store server {self.address[0]}:{self.address[1]} "
                        f"unreachable: {exc}"
                    ) from exc
        raise AssertionError("unreachable")  # pragma: no cover

    def _bump(self, counter: str, by: int = 1) -> None:
        with self._lock:
            self._counters[counter] += by

    # -- ArtifactStore surface ------------------------------------------
    def ping(self) -> dict:
        """Round-trip probe; raises :class:`RemoteStoreError` when down."""
        return self._call({"op": "ping"})

    def save(
        self, namespace: str, key: Hashable, value: Any, *, force: bool = False
    ) -> bool:
        """Ship the encoded artifact; False when skipped *or* dropped."""
        try:
            data = encode_artifact_bytes(key, value)
            reply = self._call(
                {
                    "op": "save",
                    "ns": namespace,
                    "digest": artifact_digest(namespace, key),
                    "force": bool(force),
                },
                blob=data,
            )
        except Exception:
            self._bump("errors")
            return False
        if reply.get("skipped"):
            self._bump("save_skips")
            return False
        self._bump("saves")
        return True

    def load(self, namespace: str, key: Hashable, default: Any = None) -> Any:
        self._bump("loads")
        try:
            reply = self._call(
                {
                    "op": "load",
                    "ns": namespace,
                    "digest": artifact_digest(namespace, key),
                }
            )
        except Exception:
            self._bump("errors")
            return default
        if not reply.get("found"):
            return default
        value = decode_artifact_bytes(key, reply["blob"], default=_MISSING)
        if value is _MISSING:
            return default  # corrupt/foreign bytes read as a miss
        self._bump("load_hits")
        return value

    def contains(self, namespace: str, key: Hashable) -> bool:
        try:
            reply = self._call(
                {
                    "op": "contains",
                    "ns": namespace,
                    "digest": artifact_digest(namespace, key),
                }
            )
        except Exception:
            self._bump("errors")
            return False
        return bool(reply.get("found"))

    def delete(self, namespace: str, key: Hashable) -> bool:
        try:
            reply = self._call(
                {
                    "op": "delete",
                    "ns": namespace,
                    "digest": artifact_digest(namespace, key),
                }
            )
        except Exception:
            self._bump("errors")
            return False
        return bool(reply.get("removed"))

    def sweep_orphans(self, *, min_age_s: float = 300.0) -> int:
        try:
            return int(
                self._call({"op": "sweep", "min_age_s": min_age_s})["removed"]
            )
        except Exception:
            self._bump("errors")
            return 0

    def clear(self, namespace: Optional[str] = None) -> int:
        try:
            return int(self._call({"op": "clear", "ns": namespace})["removed"])
        except Exception:
            self._bump("errors")
            return 0

    def file_count(self, namespace: Optional[str] = None) -> int:
        try:
            return int(self._call({"op": "count", "ns": namespace})["count"])
        except Exception:
            self._bump("errors")
            return 0

    def stats(self) -> dict:
        with self._lock:
            counters = dict(self._counters)
        counters["tier"] = self.tier
        counters["address"] = f"{self.address[0]}:{self.address[1]}"
        try:
            counters["server"] = self._call({"op": "stats"})["stats"]
        except Exception:
            counters["server"] = None
        return counters

    def close(self) -> None:
        self._closed = True
        self._drop_sock()
