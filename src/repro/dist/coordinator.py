"""Multi-host plan coordinator — drives shard hosts through one DAG.

:func:`run_sharded` is the distributed sibling of the executors in
:mod:`repro.api.executor`: it takes a planned batch and returns the
same outcome list ``_collect`` consumes, but the nodes run on remote
:class:`~repro.dist.host.HostServer` processes instead of local
workers.  The moving parts:

* the **batch payload** is published once to the coordinator's store —
  whose remote tier replicates it to the cluster's
  ``repro-map store-serve`` process — and each host pulls + LRU-caches
  it on the first node it executes, the same store-not-initargs channel
  the persistent process pool uses;
* a :class:`~repro.dist.router.ShardRouter` partitions nodes across
  hosts by workload fingerprint, so a workload's grouping, DEF
  baseline and consumers stay host-local; an idle host steals unpinned
  ready nodes from the deepest backlog once it exceeds the steal
  threshold;
* **host loss** (socket death, crash, kill) fails the in-flight nodes
  with structured ``kind="host_lost"`` :class:`~repro.api.fault.
  PlanError`\\ s under the no-retry policy, or reroutes them to a
  survivor when the :class:`~repro.api.fault.RetryPolicy` grants
  another attempt; *queued* (not yet dispatched) nodes always reroute.
  With zero survivors the remaining nodes drain through the caller's
  in-process service — the same serial fallback the pooled executors
  use when their executor breaks.

Scheduling never affects results: each node's output is a pure
function of its request and declared artifacts, so a sharded batch is
byte-identical to a serial one (pinned by ``tests/test_dist.py``).
"""

from __future__ import annotations

import heapq
import os
import tempfile
import time
import uuid
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.api.executor import _node_label, _node_tag, _NodeFailure, run_plan_node
from repro.api.fault import NO_RETRY, PlanError, RetryPolicy
from repro.api.plan import Plan
from repro.api.store import make_store
from repro.dist.host import HostClient, HostLostError, RemoteNodeError
from repro.dist.router import DEFAULT_STEAL_THRESHOLD, ShardRouter

__all__ = ["run_sharded"]


def run_sharded(
    plan: Plan,
    service,
    hosts: Sequence[str],
    *,
    store_remote: Optional[str] = None,
    store_dir: Optional[str] = None,
    store_tier: str = "auto",
    retry: Optional[RetryPolicy] = None,
    node_timeout: Optional[float] = None,
    partial: bool = False,
    steal_threshold: int = DEFAULT_STEAL_THRESHOLD,
    stats_out: Optional[dict] = None,
) -> List:
    """Run *plan* across *hosts*; returns ``_collect``-ready outcomes.

    Parameters
    ----------
    plan / service:
        As in :func:`repro.api.executor.execute_plan`; the service only
        runs nodes here when every host is lost (local drain).
    hosts:
        ``host:port`` addresses of ``repro-map shard-serve`` processes.
    store_remote:
        ``host:port`` of the shared ``store-serve`` process the batch
        payload replicates through.  Without it the hosts can only find
        the payload if they share *store_dir*'s filesystem.
    retry / node_timeout / partial:
        The engine's standard fault knobs.  Retry attempts also cover
        host loss: a node whose host died is rerouted to a survivor
        while attempts remain.  A node past its deadline fails with a
        ``timeout`` outcome (the host may still finish it; the reply is
        discarded).
    stats_out:
        Optional dict that receives router + per-host dispatch stats.
    """
    policy = retry or NO_RETRY
    tmp: Optional[tempfile.TemporaryDirectory] = None
    if store_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-coord-")
        store_dir = tmp.name
    store = make_store(store_dir, tier=store_tier, owner=True, remote=store_remote)
    batch_key = f"coord-{os.getpid()}-{uuid.uuid4().hex[:8]}"

    clients: Dict[str, HostClient] = {}
    try:
        store.save("batch", batch_key, plan.requests)

        for address in hosts:
            client = HostClient(address)
            try:
                client.hello()
            except HostLostError:
                client.close()
                continue
            clients[client.name] = client
        outcomes = _Scheduler(
            plan,
            service,
            clients,
            batch_key,
            policy=policy,
            node_timeout=node_timeout,
            partial=partial,
            steal_threshold=steal_threshold,
            stats_out=stats_out,
        ).run()
        return outcomes
    finally:
        for client in clients.values():
            client.close()
        store.delete("batch", batch_key)
        if hasattr(store, "close"):
            store.close()
        if tmp is not None:
            tmp.cleanup()


class _Scheduler:
    """One batch's dispatch state (split out of :func:`run_sharded`)."""

    def __init__(
        self,
        plan: Plan,
        service,
        clients: Dict[str, HostClient],
        batch_key: str,
        *,
        policy: RetryPolicy,
        node_timeout: Optional[float],
        partial: bool,
        steal_threshold: int,
        stats_out: Optional[dict],
    ) -> None:
        self.plan = plan
        self.service = service
        self.clients = clients
        self.batch_key = batch_key
        self.policy = policy
        self.node_timeout = node_timeout
        self.partial = partial
        self.stats_out = stats_out
        self.live: List[str] = list(clients)
        self.router = (
            ShardRouter(plan, self.live, steal_threshold=steal_threshold)
            if self.live
            else None
        )
        self.outcomes: List = [None] * len(plan.nodes)
        self.indegree = [len(node.deps) for node in plan.nodes]
        self.dependents = plan.dependents()
        self.ready: Dict[str, Deque[int]] = {h: deque() for h in self.live}
        self.pending: Dict[Future, Tuple[int, str]] = {}
        self.deadlines: Dict[Future, float] = {}
        self.retry_heap: List[Tuple[float, int]] = []
        self.failures = [0] * len(plan.nodes)
        self.hosts_lost: List[str] = []

    # ------------------------------------------------------------------
    def run(self) -> List:
        plan = self.plan
        try:
            for node in plan.nodes:
                if self.indegree[node.index] == 0:
                    self._enqueue(node.index)
            self._loop()
        except BaseException:
            for future in self.pending:
                future.cancel()
            raise
        self._drain_local()  # no-op unless every host died
        for index, outcome in enumerate(self.outcomes):
            if outcome is None:  # defensive: a scheduler hole
                self.outcomes[index] = _NodeFailure(
                    PlanError(
                        kind="cancelled",
                        message="node was never scheduled",
                        node=_node_label(plan, index),
                        tag=_node_tag(plan, index),
                    )
                )
        if self.stats_out is not None:
            self.stats_out.update(
                {
                    "router": self.router.stats() if self.router else None,
                    "hosts_lost": self.hosts_lost,
                    "hosts": {
                        name: {"capacity": c.capacity, "host_id": c.host_id}
                        for name, c in self.clients.items()
                    },
                }
            )
        return self.outcomes

    # -- queueing -------------------------------------------------------
    def _enqueue(self, index: int) -> None:
        """Put a ready node on its (live) host's queue."""
        if not self.live:
            return  # _drain_local picks it up
        host = self.router.host_of(index)
        if host not in self.ready:
            host = self.router.reroute(index, self.live)
        self.ready[host].append(index)

    def _next_for(self, host: str) -> Optional[int]:
        queue = self.ready[host]
        if queue:
            return queue.popleft()
        stolen = self.router.steal(
            host, {h: list(q) for h, q in self.ready.items()}
        )
        if stolen is None:
            return None
        for other in self.ready.values():
            try:
                other.remove(stolen)
                break
            except ValueError:
                continue
        return stolen

    def _dispatch(self) -> None:
        inflight: Dict[str, int] = {h: 0 for h in self.live}
        for _, host in self.pending.values():
            if host in inflight:
                inflight[host] += 1
        for host in list(self.live):
            client = self.clients[host]
            while inflight[host] < client.capacity:
                index = self._next_for(host)
                if index is None:
                    break
                node = self.plan.nodes[index]
                try:
                    future = client.submit(
                        self.batch_key,
                        node.index,
                        node.request_index,
                        node.kind,
                        node.algorithm,
                    )
                except HostLostError:
                    self.ready[host].appendleft(index)
                    self._on_host_lost(host)
                    return  # topology changed; restart dispatch next tick
                self.pending[future] = (index, host)
                if self.node_timeout is not None:
                    self.deadlines[future] = time.monotonic() + self.node_timeout
                inflight[host] += 1

    # -- completion ----------------------------------------------------
    def _complete(self, index: int, result) -> None:
        self.outcomes[index] = result
        for dep in self.dependents[index]:
            self.indegree[dep] -= 1
            if self.indegree[dep] == 0 and self.outcomes[dep] is None:
                self._enqueue(dep)

    def _final(self, index: int, error: PlanError, exc=None) -> None:
        if not self.partial:
            raise exc if exc is not None else RuntimeError(str(error))
        self.outcomes[index] = _NodeFailure(error, exc)
        stack = [index]
        while stack:
            for dep in self.dependents[stack.pop()]:
                if self.outcomes[dep] is None:
                    self.outcomes[dep] = _NodeFailure(
                        PlanError(
                            kind="upstream",
                            message=(
                                f"dependency {_node_label(self.plan, index)} "
                                f"failed: {error.message}"
                            ),
                            node=_node_label(self.plan, dep),
                            tag=_node_tag(self.plan, dep),
                        )
                    )
                    stack.append(dep)

    def _record_exception(self, index: int, exc: BaseException) -> None:
        self.failures[index] += 1
        if self.failures[index] < self.policy.max_attempts:
            heapq.heappush(
                self.retry_heap,
                (time.monotonic() + self.policy.delay(self.failures[index]), index),
            )
            return
        remote = exc.error if isinstance(exc, RemoteNodeError) else {}
        self._final(
            index,
            PlanError(
                kind=remote.get("kind", "error"),
                message=str(exc) or type(exc).__name__,
                exception=remote.get("exception") or type(exc).__name__,
                attempts=self.failures[index],
                node=_node_label(self.plan, index),
                tag=_node_tag(self.plan, index),
            ),
            exc,
        )

    def _lost_in_flight(self, index: int, host: str) -> None:
        """An in-flight node's host died: reroute or fail ``host_lost``."""
        self.failures[index] += 1
        if self.failures[index] < self.policy.max_attempts and self.live:
            self.router.reroute(index, self.live)
            heapq.heappush(
                self.retry_heap,
                (time.monotonic() + self.policy.delay(self.failures[index]), index),
            )
            return
        self._final(
            index,
            PlanError(
                kind="host_lost",
                message=f"shard host {host} was lost with this node in flight",
                attempts=self.failures[index],
                node=_node_label(self.plan, index),
                tag=_node_tag(self.plan, index),
            ),
            HostLostError(host),
        )

    def _on_host_lost(self, host: str) -> None:
        if host not in self.ready:
            return  # already handled
        self.hosts_lost.append(host)
        self.live.remove(host)
        queued = self.ready.pop(host)
        self.clients[host].close()
        # Salvage futures that finished before the loss; everything else
        # in flight on the dead host follows the retry-or-fail policy.
        lost: List[int] = []
        for future, (index, fhost) in list(self.pending.items()):
            if fhost != host:
                continue
            del self.pending[future]
            self.deadlines.pop(future, None)
            salvaged = False
            if future.done() and not future.cancelled():
                try:
                    self._complete(index, future.result())
                    salvaged = True
                except Exception:
                    pass
            if not salvaged:
                future.cancel()
                lost.append(index)
        for index in lost:
            self._lost_in_flight(index, host)
        # Undispatched nodes never count an attempt — they just move.
        for index in queued:
            if self.outcomes[index] is not None:
                continue  # upstream-cascaded while handling the loss
            if self.live:
                self._enqueue(index)
            # else: _drain_local runs them in-process

    # -- main loop ------------------------------------------------------
    def _loop(self) -> None:
        while True:
            now = time.monotonic()
            while self.retry_heap and self.retry_heap[0][0] <= now:
                _, index = heapq.heappop(self.retry_heap)
                if self.outcomes[index] is None:
                    self._enqueue(index)
            if self.live:
                self._dispatch()
            queued = any(self.ready.values())
            if not self.pending and not self.retry_heap and not queued:
                return
            if not self.live:
                return  # remaining work drains locally
            if not self.pending:
                if self.retry_heap:
                    time.sleep(
                        max(0.0, self.retry_heap[0][0] - time.monotonic())
                    )
                continue
            timeout = None
            if self.deadlines:
                timeout = min(self.deadlines.values()) - now
            if self.retry_heap:
                until = self.retry_heap[0][0] - now
                timeout = until if timeout is None else min(timeout, until)
            if timeout is not None:
                timeout = max(timeout, 0.0)
            done, _ = wait(
                list(self.pending), timeout=timeout, return_when=FIRST_COMPLETED
            )
            for future in done:
                if future not in self.pending:
                    continue  # drained by a host-loss sweep this tick
                index, host = self.pending.pop(future)
                self.deadlines.pop(future, None)
                try:
                    result = future.result()
                except HostLostError:
                    self._lost_in_flight(index, host)
                    self._on_host_lost(host)
                except RemoteNodeError as exc:
                    self._record_exception(index, exc)
                except Exception as exc:
                    self._record_exception(index, exc)
                else:
                    self._complete(index, result)
            self._expire_deadlines()

    def _expire_deadlines(self) -> None:
        if not self.deadlines:
            return
        now = time.monotonic()
        for future in [f for f, d in self.deadlines.items() if d <= now]:
            entry = self.pending.pop(future, None)
            self.deadlines.pop(future, None)
            if entry is None:
                continue
            index, _host = entry
            future.cancel()
            self._final(
                index,
                PlanError(
                    kind="timeout",
                    message=(
                        f"node exceeded its {self.node_timeout:g}s deadline"
                    ),
                    attempts=self.failures[index] + 1,
                    node=_node_label(self.plan, index),
                    tag=_node_tag(self.plan, index),
                ),
                TimeoutError(
                    f"{_node_label(self.plan, index)} exceeded its "
                    f"{self.node_timeout:g}s deadline"
                ),
            )

    # -- zero-survivor fallback ----------------------------------------
    def _drain_local(self) -> None:
        """Run every unfinished node against the caller's service.

        Node-index order is a topological order, so one pass suffices;
        the retry/partial semantics match ``_run_serial``.
        """
        plan = self.plan
        for node in plan.nodes:
            if self.outcomes[node.index] is not None:
                continue
            failed = next(
                (
                    d
                    for d in node.deps
                    if isinstance(self.outcomes[d], _NodeFailure)
                ),
                None,
            )
            if failed is not None:
                self.outcomes[node.index] = _NodeFailure(
                    PlanError(
                        kind="upstream",
                        message=(
                            f"dependency {_node_label(plan, failed)} failed: "
                            f"{self.outcomes[failed].error.message}"
                        ),
                        node=_node_label(plan, node.index),
                        tag=_node_tag(plan, node.index),
                    )
                )
                continue
            attempts = self.failures[node.index]
            while True:
                try:
                    self.outcomes[node.index] = run_plan_node(
                        self.service,
                        plan.requests[node.request_index],
                        node.kind,
                        node.algorithm,
                    )
                    break
                except Exception as exc:
                    attempts += 1
                    if attempts < self.policy.max_attempts:
                        time.sleep(self.policy.delay(attempts))
                        continue
                    if not self.partial:
                        raise
                    self.outcomes[node.index] = _NodeFailure(
                        PlanError(
                            kind="error",
                            message=str(exc) or type(exc).__name__,
                            exception=type(exc).__name__,
                            attempts=attempts,
                            node=_node_label(plan, node.index),
                            tag=_node_tag(plan, node.index),
                        ),
                        exc,
                    )
                    break
