"""Metric computations (paper Secs. II, IV-A and IV-E).

* :mod:`repro.metrics.mapping` -- topology-aware mapping metrics: total
  hops TH, weighted hops WH, maximum message congestion MMC, maximum
  (volume) congestion MC, and the averaged AMC / AC variants the paper
  introduces.
* :mod:`repro.metrics.partition` -- partition quality metrics: total
  volume TV, total messages TM, maximum send volume MSV, maximum sent
  messages MSM (Fig. 1).
* :mod:`repro.metrics.nodes` -- node-level metrics used by the regression
  analysis: ICV, ICM, MNRV, MNRM.
"""

from repro.metrics.mapping import MappingMetrics, evaluate_mapping, link_congestion
from repro.metrics.partition import PartitionMetrics, evaluate_partition
from repro.metrics.nodes import NodeMetrics, evaluate_node_metrics

__all__ = [
    "MappingMetrics",
    "evaluate_mapping",
    "link_congestion",
    "PartitionMetrics",
    "evaluate_partition",
    "NodeMetrics",
    "evaluate_node_metrics",
]
