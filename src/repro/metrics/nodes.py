"""Node-level communication metrics (paper Sec. IV-E).

The regression analysis adds four node-granularity variables to the 14
metric columns:

* ``ICV``  — inter-node communication volume: total volume on the network
  after intra-node communication is removed (TV of the coarse graph);
* ``ICM``  — number of inter-node messages (TM of the coarse graph);
* ``MNRV`` — maximum volume *received* by any node;
* ``MNRM`` — maximum number of messages received by any node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.task_graph import TaskGraph

__all__ = ["NodeMetrics", "evaluate_node_metrics"]


@dataclass(frozen=True)
class NodeMetrics:
    """Receive-side and inter-node aggregate metrics of a coarse graph."""

    icv: float
    icm: int
    mnrv: float
    mnrm: int

    def as_dict(self) -> dict:
        return {"ICV": self.icv, "ICM": self.icm, "MNRV": self.mnrv, "MNRM": self.mnrm}


def evaluate_node_metrics(coarse_graph: TaskGraph) -> NodeMetrics:
    """Compute ICV/ICM/MNRV/MNRM from the node-level task graph.

    The coarse graph (tasks already grouped per node) has intra-node
    communication contracted away, so its totals *are* the inter-node
    quantities.
    """
    icv = coarse_graph.total_volume()
    icm = coarse_graph.num_messages
    recv_vol = coarse_graph.recv_volume()
    g = coarse_graph.graph
    in_deg = np.bincount(g.indices, minlength=g.num_vertices)
    mnrv = float(recv_vol.max()) if recv_vol.size else 0.0
    mnrm = int(in_deg.max()) if in_deg.size else 0
    return NodeMetrics(icv=icv, icm=icm, mnrv=mnrv, mnrm=mnrm)
