"""Topology-aware mapping metrics (paper Sec. II).

Given a mapping ``Γ : tasks -> nodes``, the well-received metrics are:

* ``TH(Γ)  = Σ_{(t1,t2)∈Et} dilation(t1, t2)`` — total hop count
  (latency proxy; dilation = shortest-path length between mapped nodes);
* ``WH(Γ)  = Σ dilation · c(t1,t2)`` — weighted hops;
* ``Congestion(e) = Σ inSP(e, Γ(t1), Γ(t2))`` — messages crossing link e;
* ``MMC(Γ) = max_e Congestion(e)`` — max message congestion;
* ``VC(e)  = Σ inSP(e, ·) · c / bw(e)`` and ``MC = max_e VC(e)`` — max
  volume congestion (bandwidth proxy);
* ``AMC = Σ_e Congestion(e) / |Etm|`` and ``AC = Σ_e VC(e) / |Etm|`` over
  the set ``Etm`` of links actually used — the paper's averaged metrics
  that balance hops against congestion.

Everything is computed in one vectorized pass over the static routes of
all messages (at most ``|Et| · D`` link crossings, D = torus diameter).
The routes come from the shared :class:`~repro.topology.routing.RouteTable`
subsystem — pass ``route_table=`` to reuse one you already hold, or
``cache=`` (an :class:`~repro.api.cache.ArtifactCache`) to share the
enumeration with every other consumer keyed on the same endpoints (the
congestion refiners, the flow simulator, repeated evaluations of the
same mapping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.graph.task_graph import TaskGraph
from repro.kernels import hop_table_for, total_weighted_hops
from repro.topology.machine import Machine
from repro.topology.routing import RouteTable, shared_route_table

__all__ = ["MappingMetrics", "evaluate_mapping", "link_congestion"]


@dataclass(frozen=True)
class MappingMetrics:
    """Snapshot of every Sec.-II metric for one mapping.

    ``used_links`` is ``|Etm|``, the number of directed links carrying at
    least one message.
    """

    th: float
    wh: float
    mmc: float
    mc: float
    amc: float
    ac: float
    used_links: int

    def as_dict(self) -> dict:
        return {
            "TH": self.th,
            "WH": self.wh,
            "MMC": self.mmc,
            "MC": self.mc,
            "AMC": self.amc,
            "AC": self.ac,
            "used_links": self.used_links,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TH={self.th:.0f} WH={self.wh:.0f} MMC={self.mmc:.0f} "
            f"MC={self.mc:.3f} AMC={self.amc:.2f} AC={self.ac:.3f}"
        )


def _validate_gamma(task_graph: TaskGraph, machine: Machine, gamma: np.ndarray) -> np.ndarray:
    gamma = np.asarray(gamma, dtype=np.int64)
    if gamma.shape[0] != task_graph.num_tasks:
        raise ValueError(
            f"gamma has {gamma.shape[0]} entries for {task_graph.num_tasks} tasks"
        )
    if np.any(gamma < 0) or np.any(gamma >= machine.torus.num_nodes):
        raise ValueError("gamma maps tasks outside the torus")
    if not machine.alloc_mask()[gamma].all():
        raise ValueError("gamma maps tasks to unallocated nodes")
    return gamma


def link_congestion(
    task_graph: TaskGraph,
    machine: Machine,
    gamma: np.ndarray,
    *,
    cache=None,
    route_table: Optional[RouteTable] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-link (message_count, volume) arrays over the directed links.

    Realizes Eq. (1) for all links at once.  Intra-node messages
    (``Γ(t1) == Γ(t2)``) use no links and contribute nothing (their
    route segments are empty).  A *route_table* passed in must index the
    edges' endpoint pairs under *gamma*, in edge-list order.
    """
    gamma = _validate_gamma(task_graph, machine, gamma)
    src_t, dst_t, vol = task_graph.graph.edge_list()
    if route_table is None:
        route_table = shared_route_table(
            machine.torus, gamma[src_t], gamma[dst_t], cache
        )
    return route_table.accumulate(vol)


def evaluate_mapping(
    task_graph: TaskGraph,
    machine: Machine,
    gamma: np.ndarray,
    *,
    cache=None,
    route_table: Optional[RouteTable] = None,
) -> MappingMetrics:
    """Compute TH, WH, MMC, MC, AMC and AC for mapping *gamma*.

    *gamma* maps each task-graph vertex to a torus node id in ``Va``.
    When the task graph is the coarse (node-level) graph, these are
    exactly the metrics of the paper's Figures 2, 4 and 5.
    """
    gamma = _validate_gamma(task_graph, machine, gamma)
    src_t, dst_t, vol = task_graph.graph.edge_list()
    src_n = gamma[src_t]
    dst_n = gamma[dst_t]
    torus = machine.torus
    dilation = hop_table_for(torus).pairwise_hops(src_n, dst_n).astype(np.float64)
    th = float(dilation.sum())
    wh = float((dilation * vol).sum())

    msgs, vols = link_congestion(
        task_graph, machine, gamma, cache=cache, route_table=route_table
    )
    bw = torus.link_bandwidths()
    used = msgs > 0
    n_used = int(np.count_nonzero(used))
    mmc = float(msgs.max()) if n_used else 0.0
    vc = np.zeros_like(vols)
    np.divide(vols, bw, out=vc, where=bw > 0)
    mc = float(vc.max()) if n_used else 0.0
    amc = float(msgs.sum() / n_used) if n_used else 0.0
    ac = float(vc.sum() / n_used) if n_used else 0.0
    return MappingMetrics(
        th=th, wh=wh, mmc=mmc, mc=mc, amc=amc, ac=ac, used_links=n_used
    )


def weighted_hops(
    task_graph: TaskGraph, machine: Machine, gamma: np.ndarray
) -> float:
    """WH only (cheaper than :func:`evaluate_mapping`; no routing pass)."""
    gamma = _validate_gamma(task_graph, machine, gamma)
    return total_weighted_hops(task_graph.graph, hop_table_for(machine.torus), gamma)


def total_hops(task_graph: TaskGraph, machine: Machine, gamma: np.ndarray) -> float:
    """TH only."""
    gamma = _validate_gamma(task_graph, machine, gamma)
    src_t, dst_t, _ = task_graph.graph.edge_list()
    dilation = hop_table_for(machine.torus).pairwise_hops(gamma[src_t], gamma[dst_t])
    return float(dilation.sum())
