"""Partition quality metrics (paper Sec. IV-A, Figure 1).

Under the column-net model of 1-D row-wise SpMV, a partition of the rows
into K parts induces point-to-point communication; the paper tracks four
quantities:

* ``TV``  — total communication volume, ``Σ_j c_j (λ_j − 1)``;
* ``TM``  — total number of (directed) messages between parts;
* ``MSV`` — maximum *send* volume over parts;
* ``MSM`` — maximum number of messages *sent* by any part;

plus the classic graph edge-cut for the graph-partitioner personalities
and the load imbalance ratio everybody must respect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.task_graph import TaskGraph
from repro.hypergraph.model import Hypergraph

__all__ = ["PartitionMetrics", "evaluate_partition", "edge_cut", "imbalance"]


@dataclass(frozen=True)
class PartitionMetrics:
    """Communication metrics of one partition."""

    tv: float
    tm: int
    msv: float
    msm: int
    edgecut: float
    imbalance: float

    def as_dict(self) -> dict:
        return {
            "TV": self.tv,
            "TM": self.tm,
            "MSV": self.msv,
            "MSM": self.msm,
            "edgecut": self.edgecut,
            "imbalance": self.imbalance,
        }


def edge_cut(graph: CSRGraph, part: np.ndarray) -> float:
    """Weight of edges crossing parts (each undirected edge counted once).

    *graph* is expected symmetric (as produced by
    :meth:`SparseMatrix.structure_graph`); the directed sum is halved.
    """
    part = np.asarray(part, dtype=np.int64)
    src, dst, w = graph.edge_list()
    return float(w[part[src] != part[dst]].sum() / 2.0)


def imbalance(loads: np.ndarray, part: np.ndarray, num_parts: int,
              targets: Optional[np.ndarray] = None) -> float:
    """Max part load over its target load, minus 1.

    ``targets`` defaults to perfectly uniform.  A value of 0.03 means the
    heaviest part exceeds its target by 3%.
    """
    part = np.asarray(part, dtype=np.int64)
    loads = np.asarray(loads, dtype=np.float64)
    part_loads = np.bincount(part, weights=loads, minlength=num_parts)
    if targets is None:
        targets = np.full(num_parts, loads.sum() / num_parts)
    targets = np.asarray(targets, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(targets > 0, part_loads / targets, np.inf * (part_loads > 0))
    return float(np.max(ratio) - 1.0)


def evaluate_partition(
    hypergraph: Hypergraph,
    part: np.ndarray,
    num_parts: int,
    *,
    structure_graph: Optional[CSRGraph] = None,
) -> PartitionMetrics:
    """Compute TV/TM/MSV/MSM (+ edgecut, imbalance) for *part*.

    The task graph of the partition is materialized from the hypergraph's
    communication triplets; MSV/MSM are maxima over the parts' *send* side
    as in the paper.
    """
    part = np.asarray(part, dtype=np.int64)
    tg = TaskGraph.from_comm_triplets(
        num_parts, hypergraph.comm_triplets(part, num_parts)
    )
    tv = tg.total_volume()
    tm = tg.num_messages
    send_vol = tg.send_volume()
    send_msg = tg.send_messages()
    msv = float(send_vol.max()) if num_parts else 0.0
    msm = int(send_msg.max()) if num_parts else 0
    cut = (
        edge_cut(structure_graph, part) if structure_graph is not None else float("nan")
    )
    imb = imbalance(hypergraph.loads, part, num_parts)
    return PartitionMetrics(tv=tv, tm=tm, msv=msv, msm=msm, edgecut=cut, imbalance=imb)
