"""Coarsening: vectorized heavy-edge matching and contraction.

The multilevel engine shrinks the graph with rounds of *propose–accept*
heavy-edge matching (each unmatched vertex proposes its heaviest unmatched
neighbour; mutual proposals become pairs), the standard parallel
formulation of HEM that vectorizes cleanly over CSR arrays — no Python
loop touches an edge.  Contraction reuses :meth:`CSRGraph.quotient`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.util.rng import seeded_rng

__all__ = ["heavy_edge_matching", "contract", "coarsen_graph", "CoarseLevel"]


def heavy_edge_matching(
    graph: CSRGraph,
    rng: np.random.Generator,
    *,
    rounds: int = 4,
    max_vertex_weight: Optional[float] = None,
) -> np.ndarray:
    """Match vertices to heavy neighbours; returns int64[n] mate (-1 = single).

    Parameters
    ----------
    graph:
        Symmetric working graph (weights = connection strength).
    rng:
        Drives the tiny tie-breaking jitter, which is what differentiates
        partitioner personalities running the same engine.
    rounds:
        Propose–accept rounds; 3–4 leave only a few percent unmatched.
    max_vertex_weight:
        Pairs whose combined vertex weight exceeds this are not formed
        (keeps coarse vertices balanceable).
    """
    n = graph.num_vertices
    mate = np.full(n, -1, dtype=np.int64)
    if graph.num_edges == 0 or n < 2:
        return mate
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    dst = graph.indices.astype(np.int64)
    w = graph.weights
    vw = graph.vertex_weights

    for _ in range(rounds):
        un_src = mate[src] < 0
        un_dst = mate[dst] < 0
        ok = un_src & un_dst & (src != dst)
        if max_vertex_weight is not None:
            ok &= (vw[src] + vw[dst]) <= max_vertex_weight
        if not np.any(ok):
            break
        # Fresh tie-breaking jitter every round: on equal-weight graphs the
        # proposal is effectively a random neighbour, and re-rolling it is
        # what lets unmatched vertices find new mutual partners.
        jitter = rng.random(w.shape[0]) * 1e-9 * (1.0 + np.abs(w))
        s, d, ww = src[ok], dst[ok], w[ok] + jitter[ok]
        # Per-source argmax: sort by (source, weight) and take the last
        # entry of each source block.
        order = np.lexsort((d, ww, s))
        s_sorted = s[order]
        last_of_block = np.ones(s_sorted.shape[0], dtype=bool)
        last_of_block[:-1] = s_sorted[1:] != s_sorted[:-1]
        prop_src = s_sorted[last_of_block]
        prop_dst = d[order][last_of_block]
        proposal = np.full(n, -1, dtype=np.int64)
        proposal[prop_src] = prop_dst
        # Mutual proposals become matches.
        cand = prop_src[proposal[prop_dst] == prop_src]
        if cand.size == 0:
            continue
        partner = proposal[cand]
        keep = cand < partner
        a, b = cand[keep], partner[keep]
        mate[a] = b
        mate[b] = a

    # Sequential clean-up: mop up remaining unmatched vertices greedily
    # (heaviest incident edge first).  Runs in O(unmatched · degree) and
    # guarantees a near-maximal matching even on equal-weight graphs where
    # the propose–accept rounds converge slowly.
    unmatched = np.flatnonzero(mate < 0)
    for v in unmatched.tolist():
        if mate[v] >= 0:
            continue
        nbrs = graph.neighbors(v)
        wts = graph.neighbor_weights(v)
        best_u = -1
        best_w = -np.inf
        for u, wt in zip(nbrs.tolist(), wts.tolist()):
            if u == v or mate[u] >= 0:
                continue
            if max_vertex_weight is not None and vw[v] + vw[u] > max_vertex_weight:
                continue
            if wt > best_w:
                best_w = wt
                best_u = u
        if best_u >= 0:
            mate[v] = best_u
            mate[best_u] = v
    return mate


def contract(graph: CSRGraph, mate: np.ndarray) -> Tuple[CSRGraph, np.ndarray]:
    """Contract matched pairs; returns ``(coarse_graph, fine_to_coarse)``.

    Unmatched vertices become singleton coarse vertices.  Coarse vertex
    weights are sums; intra-pair edges vanish; parallel edges accumulate.
    """
    n = graph.num_vertices
    mate = np.asarray(mate, dtype=np.int64)
    rep = np.where((mate >= 0) & (mate < np.arange(n)), mate, np.arange(n))
    # rep[v] = min(v, mate) — the pair representative; compress to ids.
    reps = np.unique(rep)
    coarse_id = np.empty(n, dtype=np.int64)
    lookup = np.full(n, -1, dtype=np.int64)
    lookup[reps] = np.arange(reps.shape[0])
    coarse_id = lookup[rep]
    coarse = graph.quotient(coarse_id, reps.shape[0])
    return coarse, coarse_id


@dataclass
class CoarseLevel:
    """One level of the multilevel hierarchy."""

    graph: CSRGraph
    fine_to_coarse: np.ndarray  # maps the *previous* level's ids to this level


def coarsen_graph(
    graph: CSRGraph,
    *,
    target_vertices: int = 64,
    max_levels: int = 24,
    min_shrink: float = 0.05,
    seed: int = 0,
    balance_cap_factor: float = 1.5,
) -> List[CoarseLevel]:
    """Build the coarsening hierarchy down to ~*target_vertices*.

    Stops early when a round shrinks the graph by less than *min_shrink*
    (heavy star centres resist matching).  ``balance_cap_factor`` bounds
    coarse vertex weights to ``factor * total / target_vertices`` so one
    mega-vertex cannot make bisection infeasible.

    Returns levels from finest (index 0 = the input graph, identity map)
    to coarsest.
    """
    rng = seeded_rng(seed)
    levels = [CoarseLevel(graph=graph, fine_to_coarse=np.arange(graph.num_vertices))]
    total_w = float(graph.vertex_weights.sum())
    cap = balance_cap_factor * total_w / max(1, target_vertices)
    cur = graph
    for _ in range(max_levels):
        if cur.num_vertices <= target_vertices:
            break
        mate = heavy_edge_matching(cur, rng, max_vertex_weight=cap)
        coarse, f2c = contract(cur, mate)
        if coarse.num_vertices >= cur.num_vertices * (1.0 - min_shrink):
            break
        levels.append(CoarseLevel(graph=coarse, fine_to_coarse=f2c))
        cur = coarse
    return levels
