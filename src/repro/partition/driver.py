"""Multilevel bisection and the recursive k-way partitioning driver.

``partition_graph`` is the engine every partitioner personality runs:
recursive bisection with multilevel V-cycles (coarsen → initial bisection
→ FM-refined uncoarsening), supporting *non-uniform target part weights*
(needed when nodes expose different processor counts).

Part ids are assigned the way recursive-bisection tools do — the first
half of the recursion tree gets the lower ids — which matters for the DEF
baseline: the paper notes DEF is already decent *because* "the partitioner
puts highly communicating tasks to the parts with closer IDs" while the
machine places consecutive ranks on nearby nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.coarsen import coarsen_graph
from repro.partition.fm import fm_bisection_refine, greedy_bisection_refine
from repro.partition.initial import best_bisection
from repro.util.rng import mix_seed

__all__ = ["partition_graph", "multilevel_bisect", "PartitionResult", "EngineConfig"]


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the multilevel engine (per-personality strength settings)."""

    coarse_target: int = 48
    initial_attempts: int = 4
    fm_passes: int = 3
    tolerance: float = 0.03
    matching_rounds: int = 4
    #: above this vertex count, use the vectorized hill-climb refinement
    #: instead of strict heap-based FM (speed/quality trade).
    strict_fm_limit: int = 600


@dataclass
class PartitionResult:
    """Partition vector plus bookkeeping."""

    part: np.ndarray
    num_parts: int
    seed: int = 0
    tool: str = "engine"

    def __post_init__(self) -> None:
        self.part = np.asarray(self.part, dtype=np.int64)
        if self.part.size and (self.part.min() < 0 or self.part.max() >= self.num_parts):
            raise ValueError("part ids out of range")


def multilevel_bisect(
    graph: CSRGraph,
    target0: float,
    *,
    seed: int = 0,
    slack: Optional[float] = None,
    config: EngineConfig = EngineConfig(),
) -> np.ndarray:
    """Bisect *graph* with a multilevel V-cycle; side-0 weight ≈ target0.

    *slack* is the allowed absolute deviation of side 0 from *target0*;
    the recursive driver sets it in units of the final part weight so that
    imbalance cannot compound down the recursion tree.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    total = float(graph.vertex_weights.sum())
    slack_abs = config.tolerance * total if slack is None else float(slack)
    levels = coarsen_graph(
        graph,
        target_vertices=config.coarse_target,
        seed=seed,
    )
    coarsest = levels[-1].graph
    side = best_bisection(
        coarsest, target0, attempts=config.initial_attempts, seed=seed
    )
    side = fm_bisection_refine(
        coarsest,
        side,
        target0,
        slack=slack_abs,
        max_passes=config.fm_passes,
    )
    for lvl in range(len(levels) - 1, 0, -1):
        side = side[levels[lvl].fine_to_coarse]
        level_graph = levels[lvl - 1].graph
        if level_graph.num_vertices <= config.strict_fm_limit:
            side = fm_bisection_refine(
                level_graph, side, target0, slack=slack_abs,
                max_passes=config.fm_passes,
            )
        else:
            side = greedy_bisection_refine(
                level_graph, side, target0, slack=slack_abs,
                max_passes=config.fm_passes,
            )
    # Final hard rebalance at the finest level (no compounding drift).
    side = greedy_bisection_refine(graph, side, target0, slack=slack_abs, max_passes=1)
    return side


def partition_graph(
    graph: CSRGraph,
    num_parts: int,
    *,
    target_weights: Optional[Sequence[float]] = None,
    seed: int = 0,
    config: EngineConfig = EngineConfig(),
    tool: str = "engine",
) -> PartitionResult:
    """Recursive-bisection k-way partition with target part weights.

    Parameters
    ----------
    graph:
        Symmetric working graph; vertex weights are the balance loads.
    num_parts:
        Number of parts K.
    target_weights:
        Optional float64[K] targets (default: uniform).  The recursion
        splits the target list in half, so part ``i`` receives weight
        ``targets[i]`` — exactly what "target part weights are the number
        of available processors on each node" requires.
    """
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    n = graph.num_vertices
    if target_weights is None:
        total = float(graph.vertex_weights.sum())
        targets = np.full(num_parts, total / num_parts, dtype=np.float64)
    else:
        targets = np.asarray(target_weights, dtype=np.float64)
        if targets.shape[0] != num_parts:
            raise ValueError("target_weights length must equal num_parts")
    part = np.zeros(n, dtype=np.int64)
    # Split the global imbalance budget across the recursion depth so the
    # final parts respect config.tolerance: per-bisection slack is measured
    # in units of the *smallest part target* and adds up roughly linearly
    # along a recursion path.
    depth = max(1, int(np.ceil(np.log2(num_parts))))
    level_slack = config.tolerance * float(targets.min()) / depth
    _recurse(
        graph,
        np.arange(n, dtype=np.int64),
        targets,
        0,
        part,
        seed,
        config,
        level_slack,
    )
    return PartitionResult(part=part, num_parts=num_parts, seed=seed, tool=tool)


def _recurse(
    graph: CSRGraph,
    vertex_ids: np.ndarray,
    targets: np.ndarray,
    first_part: int,
    out: np.ndarray,
    seed: int,
    config: EngineConfig,
    level_slack: float,
) -> None:
    """Assign parts ``first_part .. first_part+len(targets)-1`` in place."""
    k = targets.shape[0]
    if k == 1:
        out[vertex_ids] = first_part
        return
    k0 = (k + 1) // 2
    # Rescale the ideal targets to the weight this subtree actually
    # received: ancestors' bisection errors are then shared proportionally
    # by all leaves instead of piling onto the last part of the subtree.
    total = float(graph.vertex_weights.sum())
    ideal = float(targets.sum())
    scale = total / ideal if ideal > 0 else 1.0
    target0 = float(targets[:k0].sum()) * scale
    sub_seed = mix_seed(seed, first_part * 2_000_003 + k)
    side = multilevel_bisect(
        graph, target0, seed=sub_seed, slack=level_slack * (k / 2.0), config=config
    )
    left_mask = side == 0
    left_ids = np.flatnonzero(left_mask)
    right_ids = np.flatnonzero(~left_mask)
    # Degenerate splits (empty side) still must recurse on both target
    # halves; fall back to a weight-ordered split.
    if left_ids.size == 0 or right_ids.size == 0:
        order = np.argsort(-graph.vertex_weights, kind="stable")
        acc = np.cumsum(graph.vertex_weights[order])
        split = int(np.searchsorted(acc, target0, side="left")) + 1
        split = min(max(split, 1), graph.num_vertices - 1) if graph.num_vertices > 1 else 0
        left_ids = np.sort(order[:split])
        right_ids = np.sort(order[split:])
    left_graph, _ = graph.subgraph(left_ids)
    right_graph, _ = graph.subgraph(right_ids)
    _recurse(
        left_graph, vertex_ids[left_ids], targets[:k0], first_part, out, seed, config,
        level_slack,
    )
    _recurse(
        right_graph,
        vertex_ids[right_ids],
        targets[k0:],
        first_part + k0,
        out,
        seed,
        config,
        level_slack,
    )
