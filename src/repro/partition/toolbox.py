"""The seven partitioner personalities of the paper's evaluation.

One multilevel engine (:mod:`repro.partition.driver`) plus per-tool
objective refinement (:mod:`repro.partition.kway_refine`) reproduces the
behavioural differences Sec. IV-A reports:

* ``SCOTCH`` / ``KAFFPA`` — edge-cut minimizers (KaFFPa the stronger
  engine), slightly worse communication-volume quality;
* ``METIS`` / ``PATOH`` — total-volume (TV) minimizers, PaToH (a true
  hypergraph tool) the best on TV;
* ``UMPAMV`` — MSV primary, TV secondary;
* ``UMPAMM`` — MSM, TM, TV priorities;
* ``UMPATM`` — TM, TV priorities.

Every personality accepts a :class:`SparseMatrix`, partitions its rows
1-D into K parts, and returns a :class:`PartitionResult`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


from repro.graph.matrices import SparseMatrix
from repro.hypergraph.model import Hypergraph
from repro.partition.driver import EngineConfig, PartitionResult, partition_graph
from repro.partition.kway_refine import refine_kway
from repro.util.rng import mix_seed

__all__ = ["Partitioner", "get_partitioner", "PARTITIONER_NAMES"]


@dataclass(frozen=True)
class Partitioner:
    """A named partitioning personality.

    Attributes
    ----------
    name:
        Tool name as used in the paper's figures.
    engine:
        Multilevel engine strength settings.
    objective:
        ``None`` for pure edge-cut tools, otherwise a named priority list
        for the hypergraph k-way refinement.
    refine_passes, candidate_limit:
        Strength of the objective refinement stage.
    """

    name: str
    engine: EngineConfig
    objective: Optional[str] = None
    refine_passes: int = 2
    candidate_limit: int = 6
    balance_tolerance: float = 0.05

    def partition(
        self,
        matrix: SparseMatrix,
        num_parts: int,
        seed: int = 0,
        *,
        hypergraph: Optional[Hypergraph] = None,
    ) -> PartitionResult:
        """Partition the matrix rows into *num_parts* parts.

        ``hypergraph`` may be passed to avoid rebuilding the column-net
        model when several tools run on the same matrix.
        """
        graph = matrix.structure_graph()
        # zlib.crc32 is stable across processes (str.__hash__ is salted).
        result = partition_graph(
            graph,
            num_parts,
            seed=mix_seed(seed, zlib.crc32(self.name.encode()) & 0xFFFF),
            config=self.engine,
            tool=self.name,
        )
        part = result.part
        if self.objective is not None:
            h = hypergraph if hypergraph is not None else Hypergraph.from_matrix(matrix)
            part = refine_kway(
                h,
                part,
                num_parts,
                self.objective,
                passes=self.refine_passes,
                tolerance=self.balance_tolerance,
                candidate_limit=self.candidate_limit,
            )
        return PartitionResult(part=part, num_parts=num_parts, seed=seed, tool=self.name)


_REGISTRY: Dict[str, Partitioner] = {
    # Edge-cut graph partitioners.  SCOTCH: fast, fewer FM passes;
    # KaFFPa: the heavyweight evolutionary engine -> strongest edge-cut.
    "SCOTCH": Partitioner(
        name="SCOTCH",
        engine=EngineConfig(fm_passes=2, initial_attempts=2),
    ),
    "KAFFPA": Partitioner(
        name="KAFFPA",
        engine=EngineConfig(fm_passes=5, initial_attempts=6),
    ),
    # Volume minimizers.  METIS's volume objective works on the graph
    # model (one light TV pass); PaToH natively optimizes connectivity-1.
    "METIS": Partitioner(
        name="METIS",
        engine=EngineConfig(fm_passes=3, initial_attempts=4),
        objective="tv",
        refine_passes=1,
        candidate_limit=4,
    ),
    "PATOH": Partitioner(
        name="PATOH",
        engine=EngineConfig(fm_passes=3, initial_attempts=4),
        objective="tv",
        refine_passes=3,
        candidate_limit=8,
    ),
    # UMPA multi-objective variants (primary, secondary, tertiary).
    "UMPAMV": Partitioner(
        name="UMPAMV",
        engine=EngineConfig(fm_passes=3, initial_attempts=4),
        objective="msv_tv",
        refine_passes=2,
        candidate_limit=8,
    ),
    "UMPAMM": Partitioner(
        name="UMPAMM",
        engine=EngineConfig(fm_passes=3, initial_attempts=4),
        objective="msm_tm_tv",
        refine_passes=2,
        candidate_limit=8,
    ),
    "UMPATM": Partitioner(
        name="UMPATM",
        engine=EngineConfig(fm_passes=3, initial_attempts=4),
        objective="tm_tv",
        refine_passes=2,
        candidate_limit=8,
    ),
}

PARTITIONER_NAMES: Tuple[str, ...] = tuple(sorted(_REGISTRY))


def get_partitioner(name: str) -> Partitioner:
    """Look up a personality by its paper name (case-insensitive)."""
    key = name.upper()
    if key not in _REGISTRY:
        raise ValueError(f"unknown partitioner {name!r}; available: {PARTITIONER_NAMES}")
    return _REGISTRY[key]
