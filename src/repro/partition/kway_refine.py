"""Direct k-way refinement on hypergraph communication metrics.

The seven partitioners of the paper differ in *what they minimize*
(Sec. IV-A): SCOTCH/KaFFPa the edge-cut, METIS/PaToH the total volume TV,
and the UMPA variants prioritized combinations — UMPA-MV (MSV, then TV),
UMPA-MM (MSM, TM, TV), UMPA-TM (TM, TV).  This module provides the
move-based k-way refinement those personalities run after the common
recursive-bisection engine, with *exact incremental maintenance* of:

* ``σ(j, p)`` — pins of net j in part p (hence λ_j and TV);
* ``sendvol[p]`` — Σ over nets owned by p of ``c_j (λ_j − 1)`` (MSV);
* ``cnt[p, q]`` — nets owned by p reaching part q (hence TM and MSM).

Owner semantics follow the column-net model: net ``j`` is owned by the
part of row ``j`` (its x-vector entry), and row ``j`` is always one of net
``j``'s pins, which guarantees the owner's part is never evacuated by a
move of a different vertex — the invariant the incremental updates rely on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hypergraph.model import Hypergraph

__all__ = ["KWayState", "refine_kway", "Objective"]

# Objective components, in the order their deltas are packed.
_TV, _MSV, _TM, _MSM = 0, 1, 2, 3

#: Named priority lists (lexicographic) per partitioner personality.
Objective = Tuple[int, ...]
OBJECTIVES: Dict[str, Objective] = {
    "tv": (_TV,),
    "msv_tv": (_MSV, _TV),
    "msm_tm_tv": (_MSM, _TM, _TV),
    "tm_tv": (_TM, _TV),
}


class KWayState:
    """Incrementally maintained communication state of a k-way partition."""

    def __init__(self, h: Hypergraph, part: np.ndarray, num_parts: int) -> None:
        self.h = h
        self.k = int(num_parts)
        self.part = np.asarray(part, dtype=np.int64).copy()
        if self.part.shape[0] != h.num_vertices:
            raise ValueError("part vector length mismatch")
        if h.num_nets != h.num_vertices:
            raise ValueError(
                "owner-aware refinement requires a square column-net model "
                f"(nets={h.num_nets}, vertices={h.num_vertices})"
            )
        # The incremental updates rely on row j pinning net j (structural
        # diagonal); verify once, vectorized.
        net_ptr, net_ids = h.vertex_incidence()
        own = np.zeros(h.num_vertices, dtype=bool)
        for v in range(h.num_vertices):
            lo, hi = net_ptr[v], net_ptr[v + 1]
            idx = np.searchsorted(net_ids[lo:hi], v)
            own[v] = idx < hi - lo and net_ids[lo + idx] == v
        if not own.all():
            raise ValueError("net j must pin vertex j (missing structural diagonal)")
        self.costs = h.net_costs
        # σ(j, ·) as one small dict per net.
        self.sigma: List[Dict[int, int]] = []
        for j in range(h.num_nets):
            d: Dict[int, int] = {}
            for p in self.part[h.pins(j)].tolist():
                d[p] = d.get(p, 0) + 1
            self.sigma.append(d)
        self.lam = np.array([len(d) for d in self.sigma], dtype=np.int64)
        self.tv = float(np.sum(self.costs * np.maximum(self.lam - 1, 0)))
        # Owner-side aggregates.
        self.sendvol = np.zeros(self.k, dtype=np.float64)
        self.cnt = np.zeros((self.k, self.k), dtype=np.int32)
        for j in range(h.num_nets):
            o = int(self.part[j])
            self.sendvol[o] += self.costs[j] * (self.lam[j] - 1)
            for q in self.sigma[j]:
                if q != o:
                    self.cnt[o, q] += 1
        self.sendmsg = (self.cnt > 0).sum(axis=1).astype(np.int64)
        self.tm = int(self.sendmsg.sum())
        self.loads = np.bincount(self.part, weights=h.loads, minlength=self.k).astype(
            np.float64
        )

    # ------------------------------------------------------------------
    @property
    def msv(self) -> float:
        return float(self.sendvol.max()) if self.k else 0.0

    @property
    def msm(self) -> int:
        return int(self.sendmsg.max()) if self.k else 0

    def metrics(self) -> Dict[str, float]:
        return {"TV": self.tv, "MSV": self.msv, "TM": float(self.tm), "MSM": float(self.msm)}

    def is_boundary(self, v: int) -> bool:
        """True if *v* touches at least one cut net."""
        return any(self.lam[j] > 1 for j in self.h.nets_of(v).tolist())

    def candidate_parts(self, v: int, limit: int = 6) -> List[int]:
        """Parts connected to *v* through its nets, strongest first."""
        conn: Dict[int, float] = {}
        a = int(self.part[v])
        for j in self.h.nets_of(v).tolist():
            c = float(self.costs[j])
            for p in self.sigma[j]:
                if p != a:
                    conn[p] = conn.get(p, 0.0) + c
        ranked = sorted(conn.items(), key=lambda kv: (-kv[1], kv[0]))
        return [p for p, _ in ranked[:limit]]

    # ------------------------------------------------------------------
    def eval_move(self, v: int, b: int) -> Tuple[float, float, int, int]:
        """Deltas ``(dTV, dMSV, dTM, dMSM)`` if *v* moved to part *b*.

        Pure evaluation — no state changes.  Max-metric deltas compare the
        would-be maxima against the current ones using only the affected
        parts, then fall back to a full scan when the current argmax
        decreases (exactness over speed; K is at most ~1k).
        """
        a = int(self.part[v])
        if b == a:
            return (0.0, 0.0, 0, 0)
        d_tv = 0.0
        d_sendvol: Dict[int, float] = {}
        d_cnt: Dict[Tuple[int, int], int] = {}

        for j in self.h.nets_of(v).tolist():
            c = float(self.costs[j])
            s = self.sigma[j]
            o = int(self.part[j])
            a_left = s[a] == 1
            b_new = b not in s
            if a_left:
                d_tv -= c
            if b_new:
                d_tv += c
            if j == v:
                # Owner relocation: retract a's contributions, grant b's.
                lam_new = self.lam[j] - (1 if a_left else 0) + (1 if b_new else 0)
                d_sendvol[a] = d_sendvol.get(a, 0.0) - c * (self.lam[j] - 1)
                d_sendvol[b] = d_sendvol.get(b, 0.0) + c * (lam_new - 1)
                new_parts = set(s)
                if a_left:
                    new_parts.discard(a)
                new_parts.add(b)
                for q in s:
                    if q != a:
                        d_cnt[(a, q)] = d_cnt.get((a, q), 0) - 1
                for q in new_parts:
                    if q != b:
                        d_cnt[(b, q)] = d_cnt.get((b, q), 0) + 1
            else:
                if a_left:
                    # o != a is structurally guaranteed (row j pins net j).
                    d_cnt[(o, a)] = d_cnt.get((o, a), 0) - 1
                    d_sendvol[o] = d_sendvol.get(o, 0.0) - c
                if b_new:
                    # b == o is impossible here: row j pins net j, so the
                    # owner's part always holds at least one pin.
                    d_cnt[(o, b)] = d_cnt.get((o, b), 0) + 1
                    d_sendvol[o] = d_sendvol.get(o, 0.0) + c

        # ΔTM / Δsendmsg from cnt transitions through zero.
        d_sendmsg: Dict[int, int] = {}
        d_tm = 0
        for (p, q), dv in d_cnt.items():
            if dv == 0:
                continue
            old = int(self.cnt[p, q])
            new = old + dv
            if old == 0 and new > 0:
                d_tm += 1
                d_sendmsg[p] = d_sendmsg.get(p, 0) + 1
            elif old > 0 and new == 0:
                d_tm -= 1
                d_sendmsg[p] = d_sendmsg.get(p, 0) - 1

        d_msv = self._max_delta(self.sendvol, d_sendvol, float(self.msv))
        cur_msm = float(self.msm)
        d_msm_f = self._max_delta(
            self.sendmsg.astype(np.float64),
            {p: float(dv) for p, dv in d_sendmsg.items()},
            cur_msm,
        )
        return (d_tv, d_msv, d_tm, int(round(d_msm_f)))

    @staticmethod
    def _max_delta(values: np.ndarray, deltas: Dict[int, float], cur_max: float) -> float:
        if not deltas:
            return 0.0
        affected_new = max(values[p] + dv for p, dv in deltas.items())
        # If some affected part now exceeds everything, that's the new max.
        if affected_new >= cur_max:
            return affected_new - cur_max
        # Otherwise the max can only drop if *all* current argmaxes were
        # affected; recompute exactly.
        argmax_affected = all(
            (p in deltas) for p in np.flatnonzero(values >= cur_max - 1e-12)
        )
        if not argmax_affected:
            return 0.0
        tmp = values.copy()
        for p, dv in deltas.items():
            tmp[p] += dv
        return float(tmp.max()) - cur_max

    # ------------------------------------------------------------------
    def apply_move(self, v: int, b: int) -> None:
        """Commit the move of *v* to part *b*, updating all aggregates."""
        a = int(self.part[v])
        if b == a:
            return
        for j in self.h.nets_of(v).tolist():
            c = float(self.costs[j])
            s = self.sigma[j]
            o = int(self.part[j])
            if j == v:
                self.sendvol[a] -= c * (self.lam[j] - 1)
                for q in s:
                    if q != a:
                        self._dec_cnt(a, q)
            s[a] -= 1
            a_left = s[a] == 0
            if a_left:
                del s[a]
                self.lam[j] -= 1
                self.tv -= c
            if b in s:
                s[b] += 1
                b_new = False
            else:
                s[b] = 1
                self.lam[j] += 1
                self.tv += c
                b_new = True
            if j == v:
                self.sendvol[b] += c * (self.lam[j] - 1)
                for q in s:
                    if q != b:
                        self._inc_cnt(b, q)
            else:
                if a_left:
                    self._dec_cnt(o, a)
                    self.sendvol[o] -= c
                if b_new and o != b:
                    self._inc_cnt(o, b)
                    self.sendvol[o] += c
        self.loads[a] -= self.h.loads[v]
        self.loads[b] += self.h.loads[v]
        self.part[v] = b

    def _inc_cnt(self, p: int, q: int) -> None:
        if self.cnt[p, q] == 0:
            self.sendmsg[p] += 1
            self.tm += 1
        self.cnt[p, q] += 1

    def _dec_cnt(self, p: int, q: int) -> None:
        self.cnt[p, q] -= 1
        if self.cnt[p, q] == 0:
            self.sendmsg[p] -= 1
            self.tm -= 1
        if self.cnt[p, q] < 0:  # pragma: no cover - invariant guard
            raise AssertionError("cnt went negative; incremental update bug")

    # ------------------------------------------------------------------
    def validate(self) -> bool:
        """Recompute everything from scratch and compare (for tests)."""
        fresh = KWayState(self.h, self.part, self.k)
        return (
            abs(fresh.tv - self.tv) < 1e-6
            and np.allclose(fresh.sendvol, self.sendvol)
            and np.array_equal(fresh.cnt, self.cnt)
            and fresh.tm == self.tm
            and np.array_equal(fresh.sendmsg, self.sendmsg)
            and np.allclose(fresh.loads, self.loads)
        )


def _lex_better(deltas: Sequence[float], priorities: Objective) -> bool:
    """True if the prioritized delta vector is lexicographically negative."""
    for idx in priorities:
        d = deltas[idx]
        if d < -1e-12:
            return True
        if d > 1e-12:
            return False
    return False


def refine_kway(
    h: Hypergraph,
    part: np.ndarray,
    num_parts: int,
    objective: str,
    *,
    passes: int = 2,
    tolerance: float = 0.05,
    targets: Optional[np.ndarray] = None,
    candidate_limit: int = 6,
) -> np.ndarray:
    """Move-based k-way refinement of *part* for a named *objective*.

    Each pass sweeps the boundary vertices in id order, moving a vertex to
    the candidate part with the lexicographically best improving delta,
    subject to the balance constraint ``load ≤ target·(1+tolerance)``.
    Stops early when a pass makes no move.
    """
    if objective not in OBJECTIVES:
        raise ValueError(f"unknown objective {objective!r}; use one of {sorted(OBJECTIVES)}")
    priorities = OBJECTIVES[objective]
    state = KWayState(h, part, num_parts)
    if targets is None:
        targets = np.full(num_parts, h.loads.sum() / num_parts)
    limits = np.asarray(targets, dtype=np.float64) * (1.0 + tolerance)

    for _ in range(passes):
        moved = 0
        for v in range(h.num_vertices):
            if not state.is_boundary(v):
                continue
            a = int(state.part[v])
            best_b = -1
            best_deltas: Optional[Tuple[float, float, int, int]] = None
            for b in state.candidate_parts(v, candidate_limit):
                if state.loads[b] + h.loads[v] > limits[b]:
                    continue
                deltas = state.eval_move(v, b)
                if not _lex_better(deltas, priorities):
                    continue
                if best_deltas is None or _lex_better(
                    tuple(d - bd for d, bd in zip(deltas, best_deltas)), priorities
                ):
                    best_deltas = deltas
                    best_b = b
            if best_b >= 0:
                state.apply_move(v, best_b)
                moved += 1
        if moved == 0:
            break
    return state.part
