"""Multilevel graph/hypergraph partitioning substrate.

The paper's two-phase pipeline consumes partitions twice:

1. the *matrix* is partitioned 1-D row-wise into ``#procs`` parts by one
   of seven tools (SCOTCH, KaFFPa, METIS, PaToH, UMPA-MV/MM/TM) —
   reproduced here as personalities of one multilevel engine
   (:mod:`repro.partition.toolbox`);
2. the resulting *task graph* is partitioned into ``|Va|`` node-sized
   groups (paper: METIS + one Fiduccia–Mattheyses balance iteration)
   inside the mapping pipeline (:func:`repro.partition.driver.partition_graph`
   + :func:`repro.partition.fm.balance_fixup`).

Engine structure (classic multilevel V-cycle):

* :mod:`repro.partition.coarsen` — vectorized heavy-edge matching and
  contraction;
* :mod:`repro.partition.initial` — greedy-graph-growing bisection seeds;
* :mod:`repro.partition.fm` — FM bisection refinement, k-way balance
  fix-up;
* :mod:`repro.partition.driver` — multilevel bisection and recursive
  k-way driver with target part weights;
* :mod:`repro.partition.kway_refine` — hypergraph-aware k-way move
  refinement for the TV/MSV/MSM/TM objectives (PaToH/UMPA personalities);
* :mod:`repro.partition.toolbox` — the seven named partitioners.
"""

from repro.partition.driver import partition_graph, PartitionResult
from repro.partition.fm import balance_fixup
from repro.partition.toolbox import (
    Partitioner,
    get_partitioner,
    PARTITIONER_NAMES,
)

__all__ = [
    "partition_graph",
    "PartitionResult",
    "balance_fixup",
    "Partitioner",
    "get_partitioner",
    "PARTITIONER_NAMES",
]
