"""Initial bisection on the coarsest graph.

Greedy graph growing (GGG): BFS-grow a region from a seed vertex, always
absorbing the unassigned vertex with the strongest connection to the grown
region, until the region reaches its target weight.  Several seeds are
tried and the best cut (after balance) wins — the same scheme METIS and
PaToH use for their initial partitions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.util.heap import AddressableMaxHeap
from repro.util.rng import seeded_rng

__all__ = ["greedy_grow_bisection", "best_bisection"]


def greedy_grow_bisection(
    graph: CSRGraph,
    target0: float,
    seed_vertex: int,
) -> np.ndarray:
    """Grow part 0 from *seed_vertex* to weight ~*target0*; rest is part 1.

    Ties in connectivity break toward heavier vertices (paper's greedy
    mapping breaks ties "in the favor of the task with a higher
    communication volume"; we follow the same spirit for partitioning).
    Disconnected graphs are handled by re-seeding from the heaviest
    unassigned vertex.
    """
    n = graph.num_vertices
    side = np.ones(n, dtype=np.int64)
    vw = graph.vertex_weights
    grown = 0.0
    heap = AddressableMaxHeap()
    in_part0 = np.zeros(n, dtype=bool)

    def absorb(v: int) -> None:
        nonlocal grown
        in_part0[v] = True
        side[v] = 0
        grown += float(vw[v])
        nbrs = graph.neighbors(v)
        wts = graph.neighbor_weights(v)
        for u, w in zip(nbrs.tolist(), wts.tolist()):
            if not in_part0[u]:
                heap.increase(u, w)

    absorb(seed_vertex)
    if seed_vertex in heap:
        heap.remove(seed_vertex)
    while grown < target0:
        while heap:
            v, _ = heap.pop()
            if not in_part0[v]:
                break
        else:
            # Disconnected: restart from the heaviest unassigned vertex.
            rest = np.flatnonzero(~in_part0)
            if rest.size == 0:
                break
            v = int(rest[np.argmax(vw[rest])])
        if grown + vw[v] > target0 and grown > 0.5 * target0:
            # Absorbing v overshoots badly; stop if reasonably full.
            if grown + vw[v] - target0 > target0 - grown:
                break
        absorb(v)
    return side


def _cut(graph: CSRGraph, side: np.ndarray) -> float:
    src = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), np.diff(graph.indptr))
    return float(graph.weights[side[src] != side[graph.indices]].sum())


def best_bisection(
    graph: CSRGraph,
    target0: float,
    *,
    attempts: int = 4,
    seed: int = 0,
) -> np.ndarray:
    """Try *attempts* GGG seeds; return the bisection with the best cut.

    Candidate seeds are random plus one pseudo-peripheral vertex (end of a
    BFS from the heaviest vertex), which tends to give clean sweeps on
    mesh-like graphs.  Ranking penalizes imbalance quadratically so a
    slightly worse cut with a far better balance wins.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    rng = seeded_rng(seed)
    total = float(graph.vertex_weights.sum())
    seeds = set()
    heaviest = int(np.argmax(graph.vertex_weights))
    levels = graph.symmetrized().bfs_levels([heaviest])
    if np.any(levels >= 0):
        reached = np.flatnonzero(levels >= 0)
        seeds.add(int(reached[np.argmax(levels[reached])]))
    # A graph with n vertices has at most n distinct seeds to offer.
    while len(seeds) < min(attempts, n):
        seeds.add(int(rng.integers(0, n)))

    best: Optional[np.ndarray] = None
    best_score = np.inf
    for s in sorted(seeds):
        side = greedy_grow_bisection(graph, target0, s)
        cut = _cut(graph, side)
        w0 = float(graph.vertex_weights[side == 0].sum())
        imb = abs(w0 - target0) / max(total, 1e-12)
        score = cut * (1.0 + 4.0 * imb * imb) + imb * total * 1e-6
        if score < best_score:
            best_score = score
            best = side
    assert best is not None
    return best
