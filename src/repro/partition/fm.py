"""Fiduccia–Mattheyses refinement.

Two flavours are needed:

* :func:`fm_bisection_refine` — classic FM with rollback for the
  multilevel bisection engine (boundary-seeded gain heaps, best-prefix
  rollback, a handful of passes);
* :func:`balance_fixup` — the paper's post-partition step: "since graph
  partitioning algorithms do not always obtain a perfect balance, as a
  post processing, we fix the balance with a small sacrifice on the
  edge-cut metric via a single Fiduccia–Mattheyses iteration".  It moves
  vertices out of overloaded parts into underloaded ones, always choosing
  the move with the least edge-cut damage, until every part meets its
  target weight.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.util.heap import AddressableMaxHeap

__all__ = ["fm_bisection_refine", "greedy_bisection_refine", "balance_fixup"]


def _bisection_gains(graph: CSRGraph, side: np.ndarray, src: np.ndarray) -> np.ndarray:
    """Vectorized FM gains (external − internal weight) for every vertex."""
    cut = side[src] != side[graph.indices]
    n = graph.num_vertices
    ext = np.bincount(src, weights=graph.weights * cut, minlength=n)
    itn = np.bincount(src, weights=graph.weights * ~cut, minlength=n)
    return ext - itn


def greedy_bisection_refine(
    graph: CSRGraph,
    side: np.ndarray,
    target0: float,
    *,
    tolerance: float = 0.03,
    slack: Optional[float] = None,
    max_passes: int = 3,
) -> np.ndarray:
    """Hill-climbing bisection refinement with hard balance enforcement.

    A vectorized, cheaper stand-in for strict FM at large levels: each pass
    computes all gains in one shot, then walks the positive-gain vertices
    in descending order re-checking gains locally before moving.  A
    rebalance step first forces both sides within ``target ± tolerance·total``
    by moving the least-damaging vertices off the heavy side, so imbalance
    cannot compound through the multilevel hierarchy.
    """
    side = np.asarray(side, dtype=np.int64).copy()
    n = graph.num_vertices
    if n < 2 or graph.num_edges == 0:
        return side
    vw = graph.vertex_weights
    if slack is None:
        slack = tolerance * float(vw.sum())
    slack = max(float(slack), 1e-12)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    w0 = float(vw[side == 0].sum())

    def local_gain(v: int) -> float:
        nbrs = graph.neighbors(v)
        wts = graph.neighbor_weights(v)
        cut = side[nbrs] != side[v]
        return float(wts[cut].sum() - wts[~cut].sum())

    for _ in range(max_passes):
        # --- hard rebalance -------------------------------------------
        # Shed weight off the heavy side, best cut-gain first, accepting a
        # vertex only if moving it strictly reduces the imbalance (so the
        # residual is bounded by half the lightest rejected vertex, not by
        # an a-priori floor).
        imb = w0 - target0
        if abs(imb) > slack:
            heavy = 0 if imb > 0 else 1
            gains = _bisection_gains(graph, side, src)
            cand = np.flatnonzero(side == heavy)
            order = cand[np.argsort(-gains[cand], kind="stable")]
            for v in order.tolist():
                if abs(imb) <= slack:
                    break
                # Moving off the heavy side shifts imb toward zero by
                # vw[v]; stop once the sign flips (further moves would walk
                # away from the target) and skip overshooting vertices.
                if (heavy == 0 and imb <= 0) or (heavy == 1 and imb >= 0):
                    break
                delta = -float(vw[v]) if heavy == 0 else float(vw[v])
                if abs(imb + delta) >= abs(imb):
                    continue
                side[v] = 1 - heavy
                w0 += delta
                imb = w0 - target0
        # --- hill climb ------------------------------------------------
        gains = _bisection_gains(graph, side, src)
        cand = np.flatnonzero(gains > 1e-12)
        if cand.size == 0:
            break
        order = cand[np.argsort(-gains[cand], kind="stable")]
        moved = 0
        for v in order.tolist():
            g = local_gain(v)
            if g <= 1e-12:
                continue
            a = int(side[v])
            new_w0 = w0 - vw[v] if a == 0 else w0 + vw[v]
            # Accept only moves that stay within slack or strictly improve
            # the imbalance (no per-vertex grace: heavy hub vertices would
            # otherwise walk the bisection arbitrarily far off balance).
            if abs(new_w0 - target0) > slack and abs(new_w0 - target0) >= abs(w0 - target0):
                continue
            side[v] = 1 - a
            w0 = new_w0
            moved += 1
        if moved == 0:
            break
    return side


def _side_connectivity(graph: CSRGraph, side: np.ndarray, v: int) -> Tuple[float, float]:
    """(internal, external) edge weight of *v* w.r.t. its current side."""
    nbrs = graph.neighbors(v)
    wts = graph.neighbor_weights(v)
    same = side[nbrs] == side[v]
    return float(wts[same].sum()), float(wts[~same].sum())


def fm_bisection_refine(
    graph: CSRGraph,
    side: np.ndarray,
    target0: float,
    *,
    tolerance: float = 0.03,
    slack: Optional[float] = None,
    max_passes: int = 4,
) -> np.ndarray:
    """Refine a bisection in place-style (returns the improved copy).

    Standard FM: per pass, repeatedly move the best-gain unlocked boundary
    vertex whose move keeps both sides within ``target ± tolerance·total``
    (or strictly improves balance), tracking the best prefix; roll back the
    tail.  Stops after a pass with no improvement.
    """
    side = np.asarray(side, dtype=np.int64).copy()
    n = graph.num_vertices
    if n < 2 or graph.num_edges == 0:
        return side
    vw = graph.vertex_weights
    total = float(vw.sum())
    target = np.array([target0, total - target0])
    if slack is None:
        slack = tolerance * total
    slack = max(float(slack), float(vw.max()) * 1.001)

    for _ in range(max_passes):
        w0 = float(vw[side == 0].sum())
        weights = np.array([w0, total - w0])
        locked = np.zeros(n, dtype=bool)
        heap = AddressableMaxHeap()

        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
        boundary = np.unique(src[side[src] != side[graph.indices]])
        for v in boundary.tolist():
            internal, external = _side_connectivity(graph, side, v)
            heap.insert(v, external - internal)

        moves = []
        gains = []
        cur_gain = 0.0
        best_gain = 0.0
        best_len = 0
        imb0 = max(abs(weights[0] - target[0]), abs(weights[1] - target[1]))
        best_imb = imb0
        while heap:
            v, g = heap.pop()
            if locked[v]:
                continue
            a = int(side[v])
            b = 1 - a
            new_wb = weights[b] + vw[v]
            new_wa = weights[a] - vw[v]
            new_imb = max(abs(new_wa - target[a]), abs(new_wb - target[b]))
            cur_imb = max(abs(weights[a] - target[a]), abs(weights[b] - target[b]))
            if new_wb > target[b] + slack and new_imb >= cur_imb:
                continue  # infeasible and not balance-improving
            # Tentatively move.
            side[v] = b
            weights[a] = new_wa
            weights[b] = new_wb
            locked[v] = True
            cur_gain += g
            moves.append(v)
            gains.append(g)
            # A strictly better cut, or equal cut with better balance,
            # advances the rollback point.
            if cur_gain > best_gain or (cur_gain == best_gain and new_imb < best_imb):
                best_gain = cur_gain
                best_len = len(moves)
                best_imb = new_imb
            # Update neighbour gains (insert fresh boundary vertices).
            nbrs = graph.neighbors(v)
            wts = graph.neighbor_weights(v)
            for u, w in zip(nbrs.tolist(), wts.tolist()):
                if locked[u]:
                    continue
                # v moved a -> b: edges (u,v) flip between cut/uncut.
                delta = 2.0 * w if side[u] == b else -2.0 * w
                # gain(u) = ext - int; v joining u's side turns an external
                # edge internal (gain -= 2w); v leaving turns internal
                # external (gain += 2w).
                if u in heap:
                    heap.update(u, heap.priority(u) - delta)
                else:
                    internal, external = _side_connectivity(graph, side, u)
                    heap.insert(u, external - internal)
        # Roll back the tail beyond the best prefix.
        for v in moves[best_len:]:
            side[v] = 1 - side[v]
        if best_gain <= 0 and best_imb >= imb0:
            break
    return side


def balance_fixup(
    graph: CSRGraph,
    part: np.ndarray,
    num_parts: int,
    targets: np.ndarray,
    *,
    tolerance: float = 0.0,
    max_moves: Optional[int] = None,
) -> np.ndarray:
    """Move vertices until every part weight is within its target.

    Parameters
    ----------
    graph:
        Symmetric working graph (for edge-cut gains).
    part:
        Current partition vector (not modified; a copy is returned).
    targets:
        float64[num_parts] target weights.  With unit vertex weights and
        ``tolerance=0`` the result is *exactly* balanced — what the
        mapping pipeline needs, since a node cannot host more tasks than
        it has processors.
    tolerance:
        Allowed overload as a fraction of each target.

    Moves always go from the currently most-overloaded part to some
    underloaded part, choosing the (vertex, destination) pair with the
    smallest edge-cut damage.  Candidate destinations are the underloaded
    parts adjacent to the vertex plus the globally most underloaded part,
    so the procedure terminates even on disconnected graphs.
    """
    part = np.asarray(part, dtype=np.int64).copy()
    targets = np.asarray(targets, dtype=np.float64)
    if targets.shape[0] != num_parts:
        raise ValueError("targets length must equal num_parts")
    vw = graph.vertex_weights
    if float(vw.sum()) > float(targets.sum()) + 1e-9:
        raise ValueError("total vertex weight exceeds total target capacity")
    loads = np.bincount(part, weights=vw, minlength=num_parts).astype(np.float64)
    limits = targets * (1.0 + tolerance)
    budget = max_moves if max_moves is not None else 8 * graph.num_vertices

    moves = 0
    while moves < budget:
        over = np.flatnonzero(loads > limits + 1e-9)
        if over.size == 0:
            break
        p = int(over[np.argmax(loads[over] - limits[over])])
        members = np.flatnonzero(part == p)
        under = loads < targets - 1e-9
        best_gain = -np.inf
        best_move: Optional[Tuple[int, int]] = None
        fallback_q = int(np.argmin(loads - targets))
        for v in members.tolist():
            nbrs = graph.neighbors(v)
            wts = graph.neighbor_weights(v)
            conn = np.zeros(num_parts, dtype=np.float64)
            if nbrs.size:
                np.add.at(conn, part[nbrs], wts)
            cand = set(int(q) for q in np.unique(part[nbrs]) if under[q])
            cand.add(fallback_q)
            cand.discard(p)
            for q in cand:
                if loads[q] + vw[v] > targets[q] + 1e-9 and not under[q]:
                    continue
                gain = conn[q] - conn[p]
                if gain > best_gain:
                    best_gain = gain
                    best_move = (v, q)
        if best_move is None:
            break
        v, q = best_move
        part[v] = q
        loads[p] -= vw[v]
        loads[q] += vw[v]
        moves += 1
    return part
