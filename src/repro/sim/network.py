"""Flow-level network simulator with approximate max-min fair sharing.

Every message of a communication phase becomes a *flow* over the static
route between its endpoints' nodes.  Time advances in rounds:

1. each flow's rate is the most constrained fair share along its route,
   ``rate_f = min over links l of bw(l) / n(l)`` with ``n(l)`` the number
   of active flows crossing ``l`` (one waterfilling step — a conservative
   approximation of exact max-min fairness);
2. time advances far enough for at least a few percent of the flows to
   finish (their exact finish instants are recorded); the rest make
   ``rate · dt`` progress.

A flow's completion additionally pays the hop-dependent wire latency.
Intra-node messages are free (they never enter the network).

The simulator is deterministic; measurement noise is injected by the
application layers, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.topology.routing import RouteTable, shared_route_table
from repro.topology.torus import BASE_LATENCY_S, HOP_LATENCY_S, Torus3D

__all__ = ["FlowSimulator", "FlowResult"]

#: Link bandwidths are in GB/s; volumes are in bytes.
_GB = 1e9


@dataclass(frozen=True)
class FlowResult:
    """Outcome of one simulated communication phase."""

    finish_times: np.ndarray  # seconds, one per input message
    makespan: float  # seconds, max finish time (0 when no flows)
    rounds: int  # simulation rounds executed

    def __post_init__(self) -> None:  # pragma: no cover - dataclass plumbing
        pass


class FlowSimulator:
    """Simulates one bulk phase of point-to-point messages.

    Parameters
    ----------
    torus:
        Machine network (provides routes, bandwidths, latencies).
    completion_quantile:
        Fraction of active flows guaranteed to finish per round; smaller
        values are more accurate and slower.
    cache:
        Optional :class:`~repro.api.cache.ArtifactCache`; when given,
        the flows' route table is fetched from (or seeded into) its
        ``route_table`` namespace — the same entries the congestion
        metrics and refiners key on the same endpoints.
    """

    def __init__(
        self,
        torus: Torus3D,
        *,
        completion_quantile: float = 0.05,
        max_rounds: int = 20_000,
        cache=None,
    ) -> None:
        self.torus = torus
        if not (0.0 < completion_quantile <= 1.0):
            raise ValueError("completion_quantile must be in (0, 1]")
        self.completion_quantile = completion_quantile
        self.max_rounds = max_rounds
        self.cache = cache

    # ------------------------------------------------------------------
    def simulate(
        self,
        src_nodes: np.ndarray,
        dst_nodes: np.ndarray,
        sizes_bytes: np.ndarray,
        *,
        route_table: Optional[RouteTable] = None,
    ) -> FlowResult:
        """Simulate all messages starting at t=0; returns finish times.

        Intra-node messages (``src == dst``) finish at the base latency.
        A *route_table* passed in must index the ``(src, dst)`` pairs in
        message order (intra-node pairs own empty segments).
        """
        src = np.asarray(src_nodes, dtype=np.int64)
        dst = np.asarray(dst_nodes, dtype=np.int64)
        sizes = np.asarray(sizes_bytes, dtype=np.float64)
        if not (src.shape == dst.shape == sizes.shape):
            raise ValueError("src, dst and sizes must align")
        m = src.shape[0]
        finish = np.zeros(m, dtype=np.float64)
        if m == 0:
            return FlowResult(finish, 0.0, 0)

        hops = self.torus.hop_distance(src, dst).astype(np.float64)
        latency = BASE_LATENCY_S + HOP_LATENCY_S * hops
        net = hops > 0
        finish[~net] = BASE_LATENCY_S  # intra-node: copy through memory

        idx = np.flatnonzero(net)
        if idx.size == 0:
            return FlowResult(finish, float(finish.max()), 0)

        if route_table is None:
            route_table = shared_route_table(self.torus, src, dst, self.cache)
        # CSR flow -> its route links (network flows only; intra-node
        # pairs hold empty segments in the table).
        flow_links, counts = route_table.gather(idx)
        flow_ptr = np.zeros(idx.size + 1, dtype=np.int64)
        np.cumsum(counts, out=flow_ptr[1:])

        bw = self.torus.link_bandwidths() * _GB  # bytes/s
        remaining = sizes[idx].copy()
        active = np.ones(idx.size, dtype=bool)
        now = 0.0
        rounds = 0
        # Entries in flow_links are grouped by flow (sorted by msg above).
        flow_of_entry = np.repeat(np.arange(idx.size, dtype=np.int64), counts)

        while active.any() and rounds < self.max_rounds:
            rounds += 1
            act_entries = active[flow_of_entry]
            n_on_link = np.bincount(
                flow_links[act_entries], minlength=self.torus.num_links
            ).astype(np.float64)
            # Fair share per entry, then min along each flow's route.
            share = np.full(flow_links.shape[0], np.inf)
            valid = act_entries
            share[valid] = bw[flow_links[valid]] / np.maximum(
                n_on_link[flow_links[valid]], 1.0
            )
            rates = np.full(idx.size, np.inf)
            np.minimum.at(rates, flow_of_entry[valid], share[valid])
            rates[~active] = np.inf  # ignore

            act = np.flatnonzero(active)
            t_done = remaining[act] / rates[act]
            dt_min = float(t_done.min())
            dt_q = float(np.quantile(t_done, self.completion_quantile))
            dt = max(dt_min, dt_q)
            finishing = t_done <= dt + 1e-18
            done_ids = act[finishing]
            finish[idx[done_ids]] = now + t_done[finishing]
            remaining[act[~finishing]] -= rates[act[~finishing]] * dt
            active[done_ids] = False
            now += dt

        if active.any():  # pragma: no cover - safety valve
            act = np.flatnonzero(active)
            finish[idx[act]] = now + remaining[act] / 1e6
        finish[idx] += latency[idx]
        return FlowResult(finish, float(finish.max()), rounds)

    # ------------------------------------------------------------------
    def phase_makespan(
        self,
        src_nodes: np.ndarray,
        dst_nodes: np.ndarray,
        sizes_bytes: np.ndarray,
    ) -> float:
        """Convenience: just the phase completion time."""
        return self.simulate(src_nodes, dst_nodes, sizes_bytes).makespan
