"""Communication-only application (paper Sec. IV-C).

"In this SpMV-like executions, no computation is performed, and all the
transfers are initialized at the same time where each processor follows
the pattern in the corresponding communication graph.  Therefore the
total execution time of this application is equal to its communication
time.  To make the improvements more visible and reduce the noise, we
scale the message sizes" (factors 4K for cage15, 256K for rgg).

The app takes a fine task graph (rank granularity), a fine mapping, and a
message-size scale; every directed edge becomes one message of
``volume · scale`` bytes.  Per-rank MPI overhead serializes message
injection, so ranks with many messages pay for it — that is what makes
the message-count metrics matter when sizes are *not* scaled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.task_graph import TaskGraph
from repro.sim.network import FlowSimulator
from repro.topology.machine import Machine
from repro.topology.torus import HOP_LATENCY_S
from repro.util.rng import seeded_rng

__all__ = ["CommOnlyApp"]

#: Per-message CPU/MPI injection overhead (seconds) — matching the µs-scale
#: software overheads of Hopper's MPI stack.
MSG_OVERHEAD_S = 0.9e-6


@dataclass
class CommOnlyApp:
    """Synthetic application that only communicates.

    Parameters
    ----------
    scale:
        Bytes per unit of communication volume (paper: 4K / 256K).
    noise:
        Multiplicative log-normal noise std-dev applied per repetition
        (models "network traffic and overhead from competing jobs").
    cache:
        Optional :class:`~repro.api.cache.ArtifactCache` shared with the
        flow simulator, so the messages' route table is enumerated once
        per (endpoints, torus) across metrics and simulation.
    """

    scale: float = 4096.0
    noise: float = 0.02
    cache: object = None

    def run(
        self,
        task_graph: TaskGraph,
        machine: Machine,
        fine_gamma: np.ndarray,
        *,
        repetitions: int = 5,
        seed: int = 0,
    ) -> np.ndarray:
        """Simulate *repetitions* executions; returns seconds per run."""
        base = self.execution_time(task_graph, machine, fine_gamma)
        rng = seeded_rng(seed)
        jitter = np.exp(rng.normal(0.0, self.noise, size=repetitions))
        return base * jitter

    def execution_time(
        self,
        task_graph: TaskGraph,
        machine: Machine,
        fine_gamma: np.ndarray,
    ) -> float:
        """Deterministic single-execution time (seconds)."""
        gamma = np.asarray(fine_gamma, dtype=np.int64)
        src_t, dst_t, vol = task_graph.graph.edge_list()
        src_n = gamma[src_t]
        dst_n = gamma[dst_t]
        sizes = vol * self.scale

        sim = FlowSimulator(machine.torus, cache=self.cache)
        result = sim.simulate(src_n, dst_n, sizes)

        # Per-rank injection: every send/receive pays the MPI software
        # overhead plus the hop-dependent wire latency; the app ends when
        # the slowest rank has finished both its injections and its last
        # (contention-limited) transfer.
        n = task_graph.num_tasks
        hops = machine.torus.hop_distance(src_n, dst_n).astype(np.float64)
        per_msg = MSG_OVERHEAD_S + HOP_LATENCY_S * hops
        overhead = np.zeros(n, dtype=np.float64)
        np.add.at(overhead, src_t, per_msg)
        np.add.at(overhead, dst_t, per_msg)

        last_finish = np.zeros(n, dtype=np.float64)
        np.maximum.at(last_finish, src_t, result.finish_times)
        np.maximum.at(last_finish, dst_t, result.finish_times)
        return float((last_finish + overhead).max())
