"""Execution-time simulation substrate.

The paper measures wall-clock times of two applications on Hopper:

* a **communication-only** application replaying an SpMV communication
  pattern with scaled message sizes (Sec. IV-C);
* the **Trilinos/Tpetra SpMV** kernel over 500/1000 iterations
  (Sec. IV-D).

We cannot run on Hopper, so a flow-level network simulator stands in: all
messages of a phase become flows over their static routes; link bandwidth
is shared (approximately max-min) among concurrent flows; per-message
latency follows the hop count; per-rank send/receive overheads model the
MPI stack.  Contention on hot links throttles flows (the MC effect) and
long routes cross more contention (the WH/TH effect) — the same
dependencies the paper's regression analysis finds on the real machine.
"""

from repro.sim.network import FlowSimulator, FlowResult
from repro.sim.commapp import CommOnlyApp
from repro.sim.spmv import SpMVSimulator

__all__ = ["FlowSimulator", "FlowResult", "CommOnlyApp", "SpMVSimulator"]
