"""Tpetra-like SpMV kernel simulator (paper Sec. IV-D).

One iteration of 1-D row-parallel SpMV ``y = A·x``:

1. **halo exchange** — every rank sends the x-entries its neighbours need
   (message sizes = communication volumes × 8 bytes, unscaled: this is
   what makes the kernel latency-bound, unlike the scaled comm-only app);
2. **local compute** — proportional to the rank's nonzeros;
3. bulk-synchronous iteration: time = comm + compute of the slowest rank.

The kernel repeats for ``iterations`` (paper: 500 / 1000); the halo
pattern is identical each iteration, so the phase is simulated once and
multiplied, with per-repetition noise added on top by :meth:`run`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.task_graph import TaskGraph
from repro.sim.commapp import MSG_OVERHEAD_S
from repro.sim.network import FlowSimulator
from repro.topology.machine import Machine
from repro.topology.torus import HOP_LATENCY_S
from repro.util.rng import seeded_rng

__all__ = ["SpMVSimulator"]

#: Seconds per nonzero (multiply-add at a few GFlop/s effective, the
#: realistic per-core throughput of Hopper-era Opterons on SpMV).
SEC_PER_NNZ = 1.1e-9

#: Bytes per x-vector entry (double precision).
WORD_BYTES = 8.0


@dataclass
class SpMVSimulator:
    """Iterative SpMV timing model.

    Parameters
    ----------
    iterations:
        Number of SpMV iterations (paper: 500 for the first allocation,
        1000 for the second).
    noise:
        Log-normal per-run noise std-dev.
    cache:
        Optional :class:`~repro.api.cache.ArtifactCache` shared with the
        flow simulator (route tables enumerated once per endpoints).
    """

    iterations: int = 500
    noise: float = 0.02
    cache: object = None

    def run(
        self,
        task_graph: TaskGraph,
        machine: Machine,
        fine_gamma: np.ndarray,
        *,
        repetitions: int = 5,
        seed: int = 0,
    ) -> np.ndarray:
        """Simulate *repetitions* full runs; returns seconds per run."""
        base = self.execution_time(task_graph, machine, fine_gamma)
        rng = seeded_rng(seed)
        jitter = np.exp(rng.normal(0.0, self.noise, size=repetitions))
        return base * jitter

    def execution_time(
        self,
        task_graph: TaskGraph,
        machine: Machine,
        fine_gamma: np.ndarray,
    ) -> float:
        """Deterministic full-run time (seconds) for ``iterations`` sweeps."""
        return self.iteration_time(task_graph, machine, fine_gamma) * self.iterations

    def iteration_time(
        self,
        task_graph: TaskGraph,
        machine: Machine,
        fine_gamma: np.ndarray,
    ) -> float:
        """One bulk-synchronous iteration: halo exchange + local compute."""
        gamma = np.asarray(fine_gamma, dtype=np.int64)
        src_t, dst_t, vol = task_graph.graph.edge_list()
        src_n = gamma[src_t]
        dst_n = gamma[dst_t]
        sizes = vol * WORD_BYTES

        sim = FlowSimulator(machine.torus, cache=self.cache)
        result = sim.simulate(src_n, dst_n, sizes)

        # Serialized injection: a rank issues its messages one by one;
        # each pays the MPI software overhead plus the per-hop wire time
        # (small messages are latency-bound, so the hop count of *every*
        # message matters — this is why TH tracks SpMV time in the paper).
        n = task_graph.num_tasks
        hops = machine.torus.hop_distance(src_n, dst_n).astype(np.float64)
        per_msg = MSG_OVERHEAD_S + HOP_LATENCY_S * hops
        serial = np.zeros(n, dtype=np.float64)
        np.add.at(serial, src_t, per_msg)
        np.add.at(serial, dst_t, per_msg)
        # Congestion penalty: the slowest of the rank's transfers.
        comm_finish = np.zeros(n, dtype=np.float64)
        np.maximum.at(comm_finish, src_t, result.finish_times)
        np.maximum.at(comm_finish, dst_t, result.finish_times)
        comm = serial + comm_finish

        compute = task_graph.loads * SEC_PER_NNZ
        return float((comm + compute).max())
