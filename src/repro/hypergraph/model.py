"""Hypergraph structure and the column-net conversion.

The hypergraph is stored as two CSR incidence structures:

* ``pin_ptr/pin_ids`` -- net -> member vertices (the *pins*);
* ``net_ptr/net_ids`` -- vertex -> incident nets (transpose, built lazily).

For the column-net model of a square matrix A, net ``j`` corresponds to
x-vector entry ``x_j``; its pins are ``{i : a_ij != 0}`` (the diagonal is
structurally forced, so ``j`` is always a pin of net ``j`` — the *owner*
row).  Under a partition ``part``, the part owning row ``j`` must send
``x_j`` to every other part appearing among net ``j``'s pins, which yields

* ``TV  = Σ_j (λ_j − 1)`` — total communication volume,
* the directed task graph ``vol(p→q) = #{j : part[j] = p, q ∈ Λ(j)∖{p}}``,

where ``Λ(j)`` is the set of parts net ``j``'s pins touch and
``λ_j = |Λ(j)|`` (the *connectivity* of the net).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph.matrices import SparseMatrix

__all__ = ["Hypergraph"]


class Hypergraph:
    """CSR hypergraph with unit net costs and per-vertex loads.

    Parameters
    ----------
    num_vertices:
        Number of vertices (matrix rows / tasks).
    pin_ptr, pin_ids:
        CSR arrays of the net -> pins incidence.
    loads:
        float64[num_vertices] vertex computational loads (row nonzeros for
        the column-net model).
    net_costs:
        Optional float64[num_nets] communication cost per net; the paper
        uses unit costs ("each message has a unit communication cost").
    """

    __slots__ = ("num_vertices", "pin_ptr", "pin_ids", "loads", "net_costs", "_vert_inc")

    def __init__(
        self,
        num_vertices: int,
        pin_ptr: np.ndarray,
        pin_ids: np.ndarray,
        loads: Optional[np.ndarray] = None,
        net_costs: Optional[np.ndarray] = None,
    ) -> None:
        self.num_vertices = int(num_vertices)
        self.pin_ptr = np.asarray(pin_ptr, dtype=np.int64)
        self.pin_ids = np.asarray(pin_ids, dtype=np.int32)
        if self.pin_ptr[0] != 0 or int(self.pin_ptr[-1]) != self.pin_ids.shape[0]:
            raise ValueError("malformed pin CSR")
        if self.pin_ids.size and (
            self.pin_ids.min() < 0 or self.pin_ids.max() >= self.num_vertices
        ):
            raise ValueError("pin ids out of range")
        if loads is None:
            loads = np.ones(self.num_vertices, dtype=np.float64)
        self.loads = np.asarray(loads, dtype=np.float64)
        if self.loads.shape[0] != self.num_vertices:
            raise ValueError("loads length mismatch")
        if net_costs is None:
            net_costs = np.ones(self.num_nets, dtype=np.float64)
        self.net_costs = np.asarray(net_costs, dtype=np.float64)
        if self.net_costs.shape[0] != self.num_nets:
            raise ValueError("net_costs length mismatch")
        self._vert_inc: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    @property
    def num_nets(self) -> int:
        return self.pin_ptr.shape[0] - 1

    @property
    def num_pins(self) -> int:
        return self.pin_ids.shape[0]

    def pins(self, net: int) -> np.ndarray:
        """View of the pin vertex ids of *net*."""
        return self.pin_ids[self.pin_ptr[net] : self.pin_ptr[net + 1]]

    def vertex_incidence(self) -> Tuple[np.ndarray, np.ndarray]:
        """Transpose incidence ``(net_ptr, net_ids)``: vertex -> nets.

        Built lazily with a single bincount/argsort pass and cached; FM
        refinement iterates it heavily.
        """
        if self._vert_inc is None:
            nets = np.repeat(
                np.arange(self.num_nets, dtype=np.int32), np.diff(self.pin_ptr)
            )
            order = np.argsort(self.pin_ids, kind="stable")
            net_ids = nets[order]
            counts = np.bincount(self.pin_ids, minlength=self.num_vertices)
            net_ptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
            np.cumsum(counts, out=net_ptr[1:])
            self._vert_inc = (net_ptr, net_ids)
        return self._vert_inc

    def nets_of(self, vertex: int) -> np.ndarray:
        """Nets incident to *vertex*."""
        net_ptr, net_ids = self.vertex_incidence()
        return net_ids[net_ptr[vertex] : net_ptr[vertex + 1]]

    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(cls, matrix: SparseMatrix) -> "Hypergraph":
        """Column-net model of *matrix* (paper Sec. IV-A).

        Net ``j`` = column ``j``; pins = rows with a nonzero in the column.
        Vertex loads = row nonzero counts.  Net costs are unit.
        """
        csc = sp.csc_array(matrix.pattern)
        return cls(
            num_vertices=matrix.num_rows,
            pin_ptr=csc.indptr.astype(np.int64),
            pin_ids=csc.indices.astype(np.int32),
            loads=matrix.row_nnz(),
        )

    # ------------------------------------------------------------------
    # partition-dependent machinery
    # ------------------------------------------------------------------
    def net_part_pairs(self, part: np.ndarray, num_parts: int) -> Tuple[np.ndarray, np.ndarray]:
        """Distinct ``(net, part)`` incidences under *part*.

        Returns parallel arrays ``(net_of_pair, part_of_pair)`` with one
        entry per distinct part touching each net — the vectorized
        materialization of the connectivity sets Λ(j).
        """
        part = np.asarray(part, dtype=np.int64)
        if part.shape[0] != self.num_vertices:
            raise ValueError("part vector length mismatch")
        nets = np.repeat(np.arange(self.num_nets, dtype=np.int64), np.diff(self.pin_ptr))
        key = nets * num_parts + part[self.pin_ids]
        uniq = np.unique(key)
        return (uniq // num_parts), (uniq % num_parts)

    def connectivity(self, part: np.ndarray, num_parts: int) -> np.ndarray:
        """λ_j for every net under *part* (int64[num_nets])."""
        net_of_pair, _ = self.net_part_pairs(part, num_parts)
        return np.bincount(net_of_pair, minlength=self.num_nets)

    def comm_triplets(
        self, part: np.ndarray, num_parts: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Directed communication ``(src, dst, volume)`` between parts.

        For the column-net model the owner of net ``j`` is ``part[j]``
        (the part holding row/x-entry ``j``); it sends ``c_j`` words to
        every other part in Λ(j).  Duplicates are *not* accumulated here —
        feed the result to :meth:`TaskGraph.from_comm_triplets`.
        """
        part = np.asarray(part, dtype=np.int64)
        net_of_pair, part_of_pair = self.net_part_pairs(part, num_parts)
        owner = part[net_of_pair]  # net j <-> row j for square matrices
        mask = part_of_pair != owner
        return (
            owner[mask],
            part_of_pair[mask],
            self.net_costs[net_of_pair[mask]],
        )

    def total_volume(self, part: np.ndarray, num_parts: int) -> float:
        """TV = Σ_j c_j (λ_j − 1)."""
        lam = self.connectivity(part, num_parts)
        return float(np.sum(self.net_costs * np.maximum(lam - 1, 0)))

    def cut_nets(self, part: np.ndarray, num_parts: int) -> int:
        """Number of nets with λ > 1 (the cut-net metric)."""
        return int(np.count_nonzero(self.connectivity(part, num_parts) > 1))

    def part_loads(self, part: np.ndarray, num_parts: int) -> np.ndarray:
        """Summed vertex loads per part."""
        return np.bincount(
            np.asarray(part, dtype=np.int64), weights=self.loads, minlength=num_parts
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Hypergraph(vertices={self.num_vertices}, nets={self.num_nets}, "
            f"pins={self.num_pins})"
        )
