"""Column-net hypergraph model (PaToH-style) for 1-D row-wise SpMV.

Section IV-A of the paper: "The matrices are first converted to a
column-net hypergraph model, i.e., the rows represent the tasks with loads
proportional to their number of non-zeros.  The columns represent sets of
data communications where each message has a unit communication cost."

This subpackage hosts the hypergraph structure, the matrix conversion, the
connectivity (λ) machinery used for the TV/TM/MSV/MSM partition metrics and
for deriving the directed MPI task graph of a partition.
"""

from repro.hypergraph.model import Hypergraph

__all__ = ["Hypergraph"]
