"""Plan executors — serial (reference), thread pool, process pool.

:func:`execute_plan` runs a :class:`~repro.api.plan.Plan` against a
:class:`~repro.api.service.MappingService` on a pluggable backend and
collects responses in request order:

``serial``
    Runs nodes in plan order in the calling thread.  Plan order equals
    the legacy sequential loop's order, so this backend is the
    bit-identical reference — same mappings, same cache interaction
    sequence, same Figure-3 time accounting.
``thread``
    A ``ThreadPoolExecutor`` over ready nodes.  The service's
    :class:`~repro.api.cache.ArtifactCache` is switched to its
    lock-striped concurrent mode; the mapping kernels drop the GIL in
    their NumPy hot loops, so congestion-heavy batches overlap.  All
    sharing still happens through the one in-memory cache.
``process``
    A ``ProcessPoolExecutor``; every worker owns a private
    ``MappingService`` whose cache layers over a shared
    :class:`~repro.api.store.DiskArtifactStore`, so a grouping computed
    by one worker is *read* (not recomputed) by the workers mapping the
    dependent algorithms.  When neither the caller nor the service
    provides a store directory, a temporary one lives for the batch.

The thread/process executors above are **per batch**: spawned when
``execute_plan`` starts and joined when it returns.  Passing ``pool=``
(an :class:`~repro.api.pool.ExecutorPool`) runs the same DAG on
long-lived workers instead — the executor and the artifact store
survive across batches, which is the serving layer's amortization (see
:mod:`repro.api.pool`).  Persistent process workers receive each
batch's request list through the pool store rather than spawn-time
``initargs``.

Every backend honours the same DAG: a node runs only after its
dependencies, so the planner's dedupe guarantees (one grouping per
artifact key, one initial route enumeration per placement chain) hold
under arbitrary interleaving.  Determinism does not rest on scheduling:
each node's output is a pure function of its request + the declared
artifacts, which is why thread/process responses are byte-identical to
serial (pinned by ``tests/test_engine.py``).
"""

from __future__ import annotations

import os
import tempfile
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Callable, List, Optional, Sequence, Tuple

from repro.api.plan import Plan, PlanNode
from repro.api.request import MapRequest, MapResponse

__all__ = ["BACKENDS", "execute_plan", "default_workers"]

BACKENDS: Tuple[str, ...] = ("serial", "thread", "process")

#: Worker-process globals installed by :func:`_process_worker_init`.
_WORKER_SERVICE = None
_WORKER_REQUESTS: Tuple[MapRequest, ...] = ()


def default_workers() -> int:
    """Default pool width: the container's *usable* CPU count.

    ``sched_getaffinity`` respects cgroup/affinity restrictions (a
    4-CPU-quota container on a 64-core host gets 4, not 64);
    ``os.cpu_count`` is the fallback on platforms without it.
    """
    try:
        usable = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        usable = os.cpu_count() or 1
    return max(1, usable)


def execute_plan(
    plan: Plan,
    service,
    *,
    backend: str = "serial",
    workers: Optional[int] = None,
    store_dir: Optional[str] = None,
    pool=None,
) -> List[MapResponse]:
    """Run *plan* on *backend*; responses return in request order.

    Parameters
    ----------
    plan:
        Output of :func:`repro.api.plan.build_plan`.
    service:
        The :class:`~repro.api.service.MappingService` owning the cache
        (serial/thread backends run nodes directly against it; the
        process backend only reads its store configuration and collects
        into its response format).
    backend:
        One of :data:`BACKENDS`.
    workers:
        Pool width for thread/process (default: CPU count).  Ignored by
        ``serial``.
    store_dir:
        Cross-process artifact directory for the ``process`` backend.
        Defaults to the service cache's attached store (if any), else a
        temporary directory scoped to this batch.
    pool:
        Optional :class:`~repro.api.pool.ExecutorPool`.  When given, the
        plan runs on the pool's long-lived workers (the pool's backend
        wins; *workers*/*store_dir* are the pool's concern) instead of a
        batch-scoped executor.
    """
    if pool is not None:
        return _collect(plan, _run_pooled(plan, service, pool))
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if backend == "serial":
        outcomes = _run_serial(plan, service)
    elif backend == "thread":
        outcomes = _run_threaded(plan, service, workers)
    else:
        outcomes = _run_process(plan, service, workers, store_dir)
    return _collect(plan, outcomes)


def run_plan_node(service, request: MapRequest, kind: str, algorithm: Optional[str]):
    """Execute one node against *service* (shared by every backend)."""
    if kind == "grouping":
        return service.warm_grouping(request)
    return service._run_one(request, algorithm)


# ---------------------------------------------------------------------------
# Backends.
# ---------------------------------------------------------------------------


def _run_serial(plan: Plan, service) -> List:
    """Plan order is the legacy loop's order — the reference backend."""
    return [
        run_plan_node(
            service, plan.requests[node.request_index], node.kind, node.algorithm
        )
        for node in plan.nodes
    ]


def _run_threaded(plan: Plan, service, workers: Optional[int]) -> List:
    service.cache.enable_concurrency()
    with ThreadPoolExecutor(max_workers=workers or default_workers()) as pool:

        def submit(node: PlanNode):
            return pool.submit(
                run_plan_node,
                service,
                plan.requests[node.request_index],
                node.kind,
                node.algorithm,
            )

        return _drive(plan, submit)


def _run_process(
    plan: Plan, service, workers: Optional[int], store_dir: Optional[str]
) -> List:
    from repro.api.store import DEFAULT_PERSIST_NAMESPACES

    namespaces = DEFAULT_PERSIST_NAMESPACES
    tmp: Optional[tempfile.TemporaryDirectory] = None
    if store_dir is None:
        attached = getattr(service.cache, "store", None)
        if attached is not None:
            store_dir = attached.root
            namespaces = attached.namespaces
        else:
            tmp = tempfile.TemporaryDirectory(prefix="repro-artifacts-")
            store_dir = tmp.name
    try:
        with ProcessPoolExecutor(
            max_workers=workers or default_workers(),
            initializer=_process_worker_init,
            # The whole request list ships once per worker (at spawn)
            # instead of once per node — a request's task graph and
            # machine would otherwise cross the IPC boundary for every
            # one of its algorithms.
            initargs=(store_dir, sorted(namespaces), plan.requests),
        ) as pool:

            def submit(node: PlanNode):
                return pool.submit(
                    _process_run_node,
                    node.request_index,
                    node.kind,
                    node.algorithm,
                )

            return _drive(plan, submit)
    finally:
        if tmp is not None:
            tmp.cleanup()


def _run_pooled(plan: Plan, service, pool) -> List:
    """Run the DAG on an :class:`~repro.api.pool.ExecutorPool`'s workers.

    The thread flavour drives the caller's service exactly like the
    batch-scoped thread backend (one in-memory cache, concurrency
    enabled); the process flavour publishes the request list to the
    pool's store, lets the long-lived workers pull and cache it, and
    retires the payload when the batch completes.
    """
    if pool.backend == "thread":
        service.cache.enable_concurrency()
        with pool.session() as executor:

            def submit(node: PlanNode):
                return executor.submit(
                    run_plan_node,
                    service,
                    plan.requests[node.request_index],
                    node.kind,
                    node.algorithm,
                )

            return _drive(plan, submit)

    from repro.api.pool import _persistent_run_node

    batch_key = pool.publish_batch(plan.requests)
    try:
        with pool.session() as executor:

            def submit(node: PlanNode):
                return executor.submit(
                    _persistent_run_node,
                    batch_key,
                    node.request_index,
                    node.kind,
                    node.algorithm,
                )

            return _drive(plan, submit)
    finally:
        pool.release_batch(batch_key)


def _drive(plan: Plan, submit: Callable[[PlanNode], "object"]) -> List:
    """Generic DAG scheduler: submit ready nodes, release dependents.

    Shared by the thread and process backends; *submit* returns a
    future.  On a node failure the not-yet-started siblings are
    cancelled before the exception propagates (already-running nodes
    finish — pools cannot interrupt them — but no new work starts).
    """
    outcomes: List = [None] * len(plan.nodes)
    indegree = [len(node.deps) for node in plan.nodes]
    dependents = plan.dependents()
    pending = {}

    for node in plan.nodes:
        if indegree[node.index] == 0:
            pending[submit(node)] = node.index
    while pending:
        done, _ = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            index = pending.pop(future)
            try:
                outcomes[index] = future.result()  # re-raises node failures
            except BaseException:
                for sibling in pending:
                    sibling.cancel()
                raise
            for dep_index in dependents[index]:
                indegree[dep_index] -= 1
                if indegree[dep_index] == 0:
                    pending[submit(plan.nodes[dep_index])] = dep_index
    return outcomes


# ---------------------------------------------------------------------------
# Process-pool worker side.
# ---------------------------------------------------------------------------


def _process_worker_init(
    store_dir: str,
    namespaces: Sequence[str],
    requests: Sequence[MapRequest],
) -> None:
    """Build this worker's service over the shared cross-process store."""
    global _WORKER_SERVICE, _WORKER_REQUESTS
    from repro.api.cache import ArtifactCache
    from repro.api.service import MappingService
    from repro.api.store import DiskArtifactStore

    store = DiskArtifactStore(store_dir, namespaces=frozenset(namespaces))
    _WORKER_SERVICE = MappingService(cache=ArtifactCache(store=store))
    _WORKER_REQUESTS = tuple(requests)


def _process_run_node(request_index: int, kind: str, algorithm: Optional[str]):
    return run_plan_node(
        _WORKER_SERVICE, _WORKER_REQUESTS[request_index], kind, algorithm
    )


# ---------------------------------------------------------------------------
# Collection.
# ---------------------------------------------------------------------------


def _collect(plan: Plan, outcomes: List) -> List[MapResponse]:
    """Order responses by slot and apply the prep-time charge-back.

    Figure 3's accounting bills a freshly computed shared grouping to
    the first algorithm that consumes it (``prep_time``), exactly like
    the sequential loop did; grouping nodes that were cache/store hits
    charge nothing and their consumers keep ``grouping_cached=True``.
    """
    responses: List[Optional[MapResponse]] = [None] * plan.num_slots
    for node in plan.nodes:
        if node.kind == "algo":
            responses[node.slot] = outcomes[node.index]
    for node in plan.nodes:
        if node.kind != "grouping" or node.charges is None:
            continue
        elapsed, computed = outcomes[node.index]
        if not computed:
            continue
        charged = outcomes[node.charges]
        if not charged.grouping_cached:
            # The consumer did not ride the node's artifact after all —
            # e.g. a bounded cache evicted it in between and the
            # consumer recomputed, billing itself.  Its own accounting
            # is already correct; adding the node's elapsed on top
            # would double-count the grouping.
            continue
        charged.result.prep_time = elapsed
        charged.grouping_cached = False
        charged.stage_times["grouping"] = elapsed + charged.stage_times.get(
            "grouping", 0.0
        )
    return responses
