"""Plan executors — serial (reference), thread pool, process pool.

:func:`execute_plan` runs a :class:`~repro.api.plan.Plan` against a
:class:`~repro.api.service.MappingService` on a pluggable backend and
collects responses in request order:

``serial``
    Runs nodes in plan order in the calling thread.  Plan order equals
    the legacy sequential loop's order, so this backend is the
    bit-identical reference — same mappings, same cache interaction
    sequence, same Figure-3 time accounting.
``thread``
    A ``ThreadPoolExecutor`` over ready nodes.  The service's
    :class:`~repro.api.cache.ArtifactCache` is switched to its
    lock-striped concurrent mode; the mapping kernels drop the GIL in
    their NumPy hot loops, so congestion-heavy batches overlap.  All
    sharing still happens through the one in-memory cache.
``process``
    A ``ProcessPoolExecutor``; every worker owns a private
    ``MappingService`` whose cache layers over a shared
    :class:`~repro.api.store.DiskArtifactStore`, so a grouping computed
    by one worker is *read* (not recomputed) by the workers mapping the
    dependent algorithms.  When neither the caller nor the service
    provides a store directory, a temporary one lives for the batch.

The thread/process executors above are **per batch**: spawned when
``execute_plan`` starts and joined when it returns.  Passing ``pool=``
(an :class:`~repro.api.pool.ExecutorPool`) runs the same DAG on
long-lived workers instead — the executor and the artifact store
survive across batches, which is the serving layer's amortization (see
:mod:`repro.api.pool`).  Persistent process workers receive each
batch's request list through the pool store rather than spawn-time
``initargs``.

Every backend honours the same DAG: a node runs only after its
dependencies, so the planner's dedupe guarantees (one grouping per
artifact key, one initial route enumeration per placement chain) hold
under arbitrary interleaving.  Determinism does not rest on scheduling:
each node's output is a pure function of its request + the declared
artifacts, which is why thread/process responses are byte-identical to
serial (pinned by ``tests/test_engine.py``).
"""

from __future__ import annotations

import heapq
import os
import tempfile
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Callable, List, Optional, Sequence, Tuple

from repro.api.fault import NO_RETRY, PlanError, RetryPolicy, maybe_inject
from repro.api.plan import Plan, PlanNode
from repro.api.request import MapRequest, MapResponse

__all__ = ["BACKENDS", "execute_plan", "default_workers"]

BACKENDS: Tuple[str, ...] = ("serial", "thread", "process")

#: Worker-process globals installed by :func:`_process_worker_init`.
_WORKER_SERVICE = None
_WORKER_REQUESTS: Tuple[MapRequest, ...] = ()


def default_workers() -> int:
    """Default pool width: the container's *usable* CPU count.

    ``sched_getaffinity`` respects cgroup/affinity restrictions (a
    4-CPU-quota container on a 64-core host gets 4, not 64);
    ``os.cpu_count`` is the fallback on platforms without it.
    """
    try:
        usable = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        usable = os.cpu_count() or 1
    return max(1, usable)


def execute_plan(
    plan: Plan,
    service,
    *,
    backend: str = "serial",
    workers: Optional[int] = None,
    store_dir: Optional[str] = None,
    pool=None,
    retry: Optional[RetryPolicy] = None,
    node_timeout: Optional[float] = None,
    on_error: str = "raise",
    store_tier: str = "auto",
    store_remote: Optional[str] = None,
    hosts: Sequence[str] = (),
    steal_threshold: int = 2,
) -> List[MapResponse]:
    """Run *plan* on *backend*; responses return in request order.

    Parameters
    ----------
    plan:
        Output of :func:`repro.api.plan.build_plan`.
    service:
        The :class:`~repro.api.service.MappingService` owning the cache
        (serial/thread backends run nodes directly against it; the
        process backend only reads its store configuration and collects
        into its response format).
    backend:
        One of :data:`BACKENDS`.
    workers:
        Pool width for thread/process (default: CPU count).  Ignored by
        ``serial``.
    store_dir:
        Cross-process artifact directory for the ``process`` backend.
        Defaults to the service cache's attached store (if any), else a
        temporary directory scoped to this batch.
    pool:
        Optional :class:`~repro.api.pool.ExecutorPool`.  When given, the
        plan runs on the pool's long-lived workers (the pool's backend
        wins; *workers*/*store_dir* are the pool's concern) instead of a
        batch-scoped executor.
    retry:
        Optional :class:`~repro.api.fault.RetryPolicy` — bounded retries
        with exponential backoff for nodes that raise.  ``None`` keeps
        the healthy path untouched (no retries; worker-crash quarantine
        still applies on pooled process runs).  Retries only run on
        failure, so results on healthy machines are byte-identical with
        or without a policy.
    node_timeout:
        Per-node deadline in seconds for the thread/process backends.  A
        node past its deadline is cancelled (or abandoned when already
        running — pools cannot interrupt a running callable) and fails
        with a ``timeout`` outcome.  Ignored by ``serial``, which cannot
        preempt the calling thread.
    on_error:
        ``"raise"`` (default) aborts the batch on the first permanent
        node failure, exactly like the pre-fault-tolerance engine.
        ``"partial"`` converts failures into structured
        :class:`~repro.api.fault.PlanError` outcomes: affected responses
        come back with :attr:`MapResponse.error` set, every other
        request still succeeds.
    store_tier:
        Artifact-store tier for the ``process`` backend's batch-scoped
        store (``auto``/``shm``/``disk``; see :func:`repro.api.shm.
        make_store`).  A store attached to the service cache keeps its
        own tier; pooled runs use the pool store's.
    store_remote:
        ``host:port`` of a remote artifact store (``repro-map
        store-serve``) layered under the batch-scoped store — required
        for sharded runs whose hosts do not share a filesystem.
    hosts:
        Shard-host addresses (``repro-map shard-serve`` processes).
        Non-empty runs the plan on the distributed coordinator
        (:func:`repro.dist.coordinator.run_sharded`) instead of a local
        backend; *backend*/*workers*/*pool* are ignored there.
    steal_threshold:
        Sharded runs only: ready-backlog depth above which an idle host
        steals unpinned nodes from a hot shard.
    """
    if on_error not in ("raise", "partial"):
        raise ValueError("on_error must be 'raise' or 'partial'")
    fault_kw = {
        "retry": retry,
        "node_timeout": node_timeout,
        "partial": on_error == "partial",
    }
    if hosts:
        from repro.dist.coordinator import run_sharded

        outcomes = run_sharded(
            plan,
            service,
            hosts,
            store_remote=store_remote,
            store_dir=store_dir,
            store_tier=store_tier,
            steal_threshold=steal_threshold,
            **fault_kw,
        )
        return _collect(plan, outcomes)
    if pool is not None:
        return _collect(plan, _run_pooled(plan, service, pool, fault_kw))
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if backend == "serial":
        outcomes = _run_serial(plan, service, retry, on_error == "partial")
    elif backend == "thread":
        outcomes = _run_threaded(plan, service, workers, fault_kw)
    else:
        outcomes = _run_process(
            plan, service, workers, store_dir, fault_kw, store_tier, store_remote
        )
    return _collect(plan, outcomes)


def run_plan_node(service, request: MapRequest, kind: str, algorithm: Optional[str]):
    """Execute one node against *service* (shared by every backend)."""
    maybe_inject(request, kind)
    if kind == "grouping":
        return service.warm_grouping(request)
    return service._run_one(request, algorithm)


class _NodeFailure:
    """Failure outcome slot — carries the structured error (and, in
    ``on_error="raise"`` mode, the original exception to re-raise)."""

    __slots__ = ("error", "exception")

    def __init__(self, error: PlanError, exception: Optional[BaseException] = None):
        self.error = error
        self.exception = exception


def _node_label(plan: Plan, index: int) -> str:
    node = plan.nodes[index]
    return f"algo:{node.algorithm}" if node.kind == "algo" else node.kind


def _node_tag(plan: Plan, index: int):
    return plan.requests[plan.nodes[index].request_index].tag


# ---------------------------------------------------------------------------
# Backends.
# ---------------------------------------------------------------------------


def _run_serial(
    plan: Plan,
    service,
    retry: Optional[RetryPolicy] = None,
    partial: bool = False,
) -> List:
    """Plan order is the legacy loop's order — the reference backend.

    ``node_timeout`` is not enforced here: the serial backend runs in the
    caller's thread and cannot preempt itself.
    """
    policy = retry or NO_RETRY
    outcomes: List = [None] * len(plan.nodes)
    for node in plan.nodes:
        failed_dep = next(
            (d for d in node.deps if isinstance(outcomes[d], _NodeFailure)), None
        )
        if failed_dep is not None:
            outcomes[node.index] = _NodeFailure(
                PlanError(
                    kind="upstream",
                    message=(
                        f"dependency {_node_label(plan, failed_dep)} failed: "
                        f"{outcomes[failed_dep].error.message}"
                    ),
                    node=_node_label(plan, node.index),
                    tag=_node_tag(plan, node.index),
                )
            )
            continue
        attempts = 0
        while True:
            try:
                outcomes[node.index] = run_plan_node(
                    service,
                    plan.requests[node.request_index],
                    node.kind,
                    node.algorithm,
                )
                break
            except Exception as exc:
                attempts += 1
                if attempts < policy.max_attempts:
                    time.sleep(policy.delay(attempts))
                    continue
                if not partial:
                    raise
                outcomes[node.index] = _NodeFailure(
                    PlanError(
                        kind="error",
                        message=str(exc) or type(exc).__name__,
                        exception=type(exc).__name__,
                        attempts=attempts,
                        node=_node_label(plan, node.index),
                        tag=_node_tag(plan, node.index),
                    ),
                    exc,
                )
                break
    return outcomes


def _serial_fallback(plan: Plan, service) -> Callable[[PlanNode], object]:
    """In-process fallback runner used when an executor cannot be trusted."""

    def run(node: PlanNode):
        return run_plan_node(
            service, plan.requests[node.request_index], node.kind, node.algorithm
        )

    return run


def _run_threaded(
    plan: Plan, service, workers: Optional[int], fault_kw: dict
) -> List:
    service.cache.enable_concurrency()
    with ThreadPoolExecutor(max_workers=workers or default_workers()) as pool:

        def submit(node: PlanNode):
            return pool.submit(
                run_plan_node,
                service,
                plan.requests[node.request_index],
                node.kind,
                node.algorithm,
            )

        return _drive(
            plan, submit, serial_run=_serial_fallback(plan, service), **fault_kw
        )


def _run_process(
    plan: Plan,
    service,
    workers: Optional[int],
    store_dir: Optional[str],
    fault_kw: dict,
    store_tier: str = "auto",
    store_remote: Optional[str] = None,
) -> List:
    from repro.api.shm import make_store
    from repro.api.store import DEFAULT_PERSIST_NAMESPACES

    namespaces = DEFAULT_PERSIST_NAMESPACES
    tmp: Optional[tempfile.TemporaryDirectory] = None
    owned_store = None
    attached = getattr(service.cache, "store", None) if store_dir is None else None
    if attached is not None:
        store_dir = attached.root
        namespaces = attached.namespaces
        # Workers join the attached store's resolved tier so parent and
        # children agree on where artifacts live; the attached store's
        # owner reaps its segments.
        store_tier = getattr(attached, "tier", "disk")
    else:
        if store_dir is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-artifacts-")
            store_dir = tmp.name
        # The batch-scoped parent owns the root for this run; closing it
        # below reaps any shm segments the workers published.
        owned_store = make_store(
            store_dir,
            tier=store_tier,
            namespaces=namespaces,
            owner=True,
            remote=store_remote,
        )
        store_tier = owned_store.tier
    try:
        with ProcessPoolExecutor(
            max_workers=workers or default_workers(),
            initializer=_process_worker_init,
            # The whole request list ships once per worker (at spawn)
            # instead of once per node — a request's task graph and
            # machine would otherwise cross the IPC boundary for every
            # one of its algorithms.
            initargs=(
                store_dir,
                sorted(namespaces),
                plan.requests,
                store_tier,
                store_remote,
            ),
        ) as pool:

            def submit(node: PlanNode):
                return pool.submit(
                    _process_run_node,
                    node.request_index,
                    node.kind,
                    node.algorithm,
                )

            # A batch-scoped process pool cannot be respawned mid-batch;
            # when it breaks, lost/remaining nodes fall back to the
            # caller's in-process service.
            return _drive(
                plan, submit, serial_run=_serial_fallback(plan, service), **fault_kw
            )
    finally:
        if owned_store is not None and hasattr(owned_store, "close"):
            owned_store.close()
        if tmp is not None:
            tmp.cleanup()


def _run_pooled(plan: Plan, service, pool, fault_kw: dict) -> List:
    """Run the DAG on an :class:`~repro.api.pool.ExecutorPool`'s workers.

    The thread flavour drives the caller's service exactly like the
    batch-scoped thread backend (one in-memory cache, concurrency
    enabled); the process flavour publishes the request list to the
    pool's store, lets the long-lived workers pull and cache it, and
    retires the payload when the batch completes.  Submission always
    goes through :meth:`ExecutorPool.submit` so a pool respawned after a
    worker crash is picked up mid-batch: the scheduler hands
    ``respawn=pool.respawn`` to :func:`_drive`, which re-runs only the
    nodes that were in flight when the executor broke.
    """
    serial_run = _serial_fallback(plan, service)
    if pool.backend == "thread":
        service.cache.enable_concurrency()
        with pool.session():

            def submit(node: PlanNode):
                return pool.submit(
                    run_plan_node,
                    service,
                    plan.requests[node.request_index],
                    node.kind,
                    node.algorithm,
                )

            return _drive(
                plan,
                submit,
                respawn=pool.respawn,
                serial_run=serial_run,
                **fault_kw,
            )

    from repro.api.pool import _persistent_run_node

    batch_key = pool.publish_batch(plan.requests)
    try:
        with pool.session():

            def submit(node: PlanNode):
                return pool.submit(
                    _persistent_run_node,
                    batch_key,
                    node.request_index,
                    node.kind,
                    node.algorithm,
                )

            return _drive(
                plan,
                submit,
                respawn=pool.respawn,
                serial_run=serial_run,
                **fault_kw,
            )
    finally:
        pool.release_batch(batch_key)


def _drive(
    plan: Plan,
    submit: Callable[[PlanNode], "object"],
    *,
    retry: Optional[RetryPolicy] = None,
    node_timeout: Optional[float] = None,
    partial: bool = False,
    respawn: Optional[Callable[[], None]] = None,
    serial_run: Optional[Callable[[PlanNode], object]] = None,
) -> List:
    """Generic DAG scheduler: submit ready nodes, release dependents.

    Shared by the thread/process backends and the pooled runner;
    *submit* returns a future.  On top of the dependency bookkeeping it
    owns the engine's fault handling:

    - A node that raises is retried per *retry* (exponential backoff via
      a ready-time heap — the scheduler keeps draining other futures
      while a retry waits out its backoff).  A node out of attempts
      becomes a permanent failure.
    - A node past *node_timeout* is cancelled (abandoned when already
      running — executors cannot interrupt a running callable) and fails
      permanently with a ``timeout`` outcome.
    - ``BrokenExecutor`` means the worker pool died.  Every node in
      flight at break time is a crash suspect; finished-but-uncollected
      results are salvaged, the pool is respawned via *respawn* (when
      given), and suspects are re-run **in isolation** — one at a time
      with nothing else in flight, so a repeat kill is attributable to
      exactly one node and an innocent that merely shared the pool with
      a poison request can never reach the quarantine threshold.  A node
      whose isolated re-runs break the pool ``retry.max_crashes`` times
      total is quarantined: re-run in-process via *serial_run* when
      ``retry.poison == "serial"``, failed cleanly otherwise.  Never
      blindly re-submitted.
    - With ``partial=False`` a permanent failure cancels the pending
      siblings and re-raises, exactly like the pre-fault-tolerance
      engine; with ``partial=True`` it becomes a :class:`_NodeFailure`
      outcome and cascades ``upstream`` failures to its dependents while
      every unrelated node keeps running.

    The healthy path through this function is the old one: no retries
    fire, no deadline is armed unless requested, and ``wait`` blocks
    exactly as before — results stay byte-identical.
    """
    policy = retry or NO_RETRY
    outcomes: List = [None] * len(plan.nodes)
    indegree = [len(node.deps) for node in plan.nodes]
    dependents = plan.dependents()
    pending: dict = {}  # future -> node index
    deadlines: dict = {}  # future -> monotonic deadline
    ready_heap: List[Tuple[float, int]] = []  # (monotonic ready time, node)
    failures = [0] * len(plan.nodes)
    crashes = [0] * len(plan.nodes)
    broken = False  # executor is dead and could not be respawned

    def _abort(exc: BaseException):
        for future in pending:
            future.cancel()
        raise exc

    def _final(index: int, error: PlanError, exc: Optional[BaseException] = None):
        if not partial:
            _abort(exc if exc is not None else RuntimeError(str(error)))
        outcomes[index] = _NodeFailure(error, exc)
        stack = [index]
        while stack:
            for dep_index in dependents[stack.pop()]:
                if outcomes[dep_index] is None:
                    outcomes[dep_index] = _NodeFailure(
                        PlanError(
                            kind="upstream",
                            message=(
                                f"dependency {_node_label(plan, index)} failed: "
                                f"{error.message}"
                            ),
                            node=_node_label(plan, dep_index),
                            tag=_node_tag(plan, dep_index),
                        )
                    )
                    stack.append(dep_index)

    def _record_exception(index: int, exc: BaseException):
        failures[index] += 1
        if failures[index] < policy.max_attempts:
            heapq.heappush(
                ready_heap, (time.monotonic() + policy.delay(failures[index]), index)
            )
            return
        _final(
            index,
            PlanError(
                kind="error",
                message=str(exc) or type(exc).__name__,
                exception=type(exc).__name__,
                attempts=failures[index],
                node=_node_label(plan, index),
                tag=_node_tag(plan, index),
            ),
            exc,
        )

    def _complete(index: int, result) -> None:
        outcomes[index] = result
        for dep_index in dependents[index]:
            indegree[dep_index] -= 1
            if indegree[dep_index] == 0 and outcomes[dep_index] is None:
                _submit(dep_index)

    def _run_inline(index: int) -> None:
        if serial_run is None:
            _final(
                index,
                PlanError(
                    kind="crash",
                    message="executor broke and no in-process fallback is available",
                    attempts=max(crashes[index], 1),
                    node=_node_label(plan, index),
                    tag=_node_tag(plan, index),
                ),
                BrokenExecutor("executor broke; no in-process fallback"),
            )
            return
        try:
            result = serial_run(plan.nodes[index])
        except Exception as exc:
            _record_exception(index, exc)
        else:
            _complete(index, result)

    def _submit(index: int) -> None:
        nonlocal broken
        if broken:
            _run_inline(index)
            return
        node = plan.nodes[index]
        try:
            future = submit(node)
        except BrokenExecutor:
            if respawn is not None:
                respawn()
                try:
                    future = submit(node)
                except BrokenExecutor:
                    broken = True
                    _run_inline(index)
                    return
            else:
                broken = True
                _run_inline(index)
                return
        pending[future] = index
        if node_timeout is not None:
            deadlines[future] = time.monotonic() + node_timeout

    def _respawn_or_break() -> None:
        nonlocal broken
        if respawn is not None:
            try:
                respawn()
            except Exception:
                broken = True
        else:
            broken = True

    def _quarantine(index: int, exc: BaseException, recovered: list) -> None:
        if policy.poison == "serial" and serial_run is not None:
            try:
                recovered.append((index, serial_run(plan.nodes[index])))
            except Exception as run_exc:
                _record_exception(index, run_exc)
            return
        _final(
            index,
            PlanError(
                kind="crash",
                message=(
                    f"worker pool broke {crashes[index]} times with "
                    "this node in flight; quarantined"
                ),
                exception=type(exc).__name__,
                attempts=crashes[index],
                node=_node_label(plan, index),
                tag=_node_tag(plan, index),
            ),
            exc,
        )

    def _on_break(first_index: int, exc: BaseException) -> None:
        nonlocal broken
        # Everything in flight when the pool died is a crash suspect —
        # attribution is conservative because the dead worker cannot
        # tell us which node it was running.  Futures that finished
        # before the break still hold real results; salvage them.
        suspects = [first_index]
        survivors = []
        for future, index in list(pending.items()):
            salvaged = False
            if future.done() and not future.cancelled():
                try:
                    survivors.append((index, future.result()))
                    salvaged = True
                except BaseException:
                    pass
            if not salvaged:
                future.cancel()
                suspects.append(index)
        pending.clear()
        deadlines.clear()
        _respawn_or_break()
        # Re-run suspects one at a time with nothing else in flight, so
        # a repeat kill indicts exactly one node.  Successes are held
        # back and completed only after the whole suspect list is
        # processed — completing releases dependents into the pool,
        # which would put bystanders in flight during the next isolated
        # attempt.
        recovered: list = []
        for index in suspects:
            crashes[index] += 1
            while not broken and crashes[index] < policy.max_crashes:
                try:
                    future = submit(plan.nodes[index])
                except BrokenExecutor:
                    broken = True
                    continue  # loop condition now fails -> fallback below
                done, _ = wait([future], timeout=node_timeout)
                if future not in done:
                    future.cancel()
                    _final(
                        index,
                        PlanError(
                            kind="timeout",
                            message=(
                                f"node exceeded its {node_timeout:g}s deadline"
                            ),
                            attempts=failures[index] + 1,
                            node=_node_label(plan, index),
                            tag=_node_tag(plan, index),
                        ),
                        TimeoutError(
                            f"{_node_label(plan, index)} exceeded its "
                            f"{node_timeout:g}s deadline"
                        ),
                    )
                    break
                try:
                    recovered.append((index, future.result()))
                except BrokenExecutor:
                    crashes[index] += 1
                    _respawn_or_break()
                    continue
                except Exception as run_exc:
                    _record_exception(index, run_exc)
                break
            else:
                # Out of the loop without an attempt: the pool is gone
                # (fall back in-process) or the node hit the crash
                # threshold (quarantine).
                if broken and crashes[index] < policy.max_crashes:
                    _run_inline(index)
                else:
                    _quarantine(index, exc, recovered)
        for index, result in survivors + recovered:
            _complete(index, result)

    for node in plan.nodes:
        if indegree[node.index] == 0:
            _submit(node.index)

    while pending or ready_heap:
        now = time.monotonic()
        while ready_heap and ready_heap[0][0] <= now:
            _, index = heapq.heappop(ready_heap)
            _submit(index)
        if not pending:
            if ready_heap:
                time.sleep(max(0.0, ready_heap[0][0] - time.monotonic()))
            continue
        timeout = None
        if deadlines:
            timeout = min(deadlines.values()) - now
        if ready_heap:
            until_retry = ready_heap[0][0] - now
            timeout = until_retry if timeout is None else min(timeout, until_retry)
        if timeout is not None:
            timeout = max(timeout, 0.0)
        done, _ = wait(list(pending), timeout=timeout, return_when=FIRST_COMPLETED)
        for future in done:
            if future not in pending:
                continue  # drained by an earlier break in this very set
            index = pending.pop(future)
            deadlines.pop(future, None)
            try:
                result = future.result()
            except BrokenExecutor as exc:
                _on_break(index, exc)
                break
            except CancelledError:
                _final(
                    index,
                    PlanError(
                        kind="cancelled",
                        message="node was cancelled before it ran",
                        node=_node_label(plan, index),
                        tag=_node_tag(plan, index),
                    ),
                )
            except Exception as exc:
                _record_exception(index, exc)
            else:
                _complete(index, result)
        if deadlines:
            now = time.monotonic()
            for future in [f for f, d in deadlines.items() if d <= now]:
                index = pending.pop(future, None)
                deadlines.pop(future, None)
                if index is None:
                    continue
                future.cancel()
                _final(
                    index,
                    PlanError(
                        kind="timeout",
                        message=f"node exceeded its {node_timeout:g}s deadline",
                        attempts=failures[index] + 1,
                        node=_node_label(plan, index),
                        tag=_node_tag(plan, index),
                    ),
                    TimeoutError(
                        f"{_node_label(plan, index)} exceeded its "
                        f"{node_timeout:g}s deadline"
                    ),
                )

    for index, outcome in enumerate(outcomes):
        if outcome is None:  # defensive: a scheduler hole, not a node fault
            outcomes[index] = _NodeFailure(
                PlanError(
                    kind="cancelled",
                    message="node was never scheduled",
                    node=_node_label(plan, index),
                    tag=_node_tag(plan, index),
                )
            )
    return outcomes


# ---------------------------------------------------------------------------
# Process-pool worker side.
# ---------------------------------------------------------------------------


def _process_worker_init(
    store_dir: str,
    namespaces: Sequence[str],
    requests: Sequence[MapRequest],
    store_tier: str = "disk",
    store_remote: Optional[str] = None,
) -> None:
    """Build this worker's service over the shared cross-process store."""
    global _WORKER_SERVICE, _WORKER_REQUESTS
    from repro.api.cache import ArtifactCache
    from repro.api.service import MappingService
    from repro.api.shm import make_store

    # owner=False: batch-scoped workers must not reap segments their
    # siblings still read; the parent (or the attached store's owner)
    # does.
    store = make_store(
        store_dir,
        tier=store_tier,
        namespaces=frozenset(namespaces),
        owner=False,
        remote=store_remote,
    )
    _WORKER_SERVICE = MappingService(cache=ArtifactCache(store=store))
    _WORKER_REQUESTS = tuple(requests)


def _process_run_node(request_index: int, kind: str, algorithm: Optional[str]):
    return run_plan_node(
        _WORKER_SERVICE, _WORKER_REQUESTS[request_index], kind, algorithm
    )


# ---------------------------------------------------------------------------
# Collection.
# ---------------------------------------------------------------------------


def _collect(plan: Plan, outcomes: List) -> List[MapResponse]:
    """Order responses by slot and apply the prep-time charge-back.

    Figure 3's accounting bills a freshly computed shared grouping to
    the first algorithm that consumes it (``prep_time``), exactly like
    the sequential loop did; grouping nodes that were cache/store hits
    charge nothing and their consumers keep ``grouping_cached=True``.
    """
    responses: List[Optional[MapResponse]] = [None] * plan.num_slots
    for node in plan.nodes:
        if node.kind != "algo":
            continue
        outcome = outcomes[node.index]
        if isinstance(outcome, _NodeFailure):
            responses[node.slot] = MapResponse(
                algorithm=node.algorithm or "",
                result=None,
                tag=plan.requests[node.request_index].tag,
                error=outcome.error,
            )
        else:
            responses[node.slot] = outcome
    for node in plan.nodes:
        if node.kind != "grouping" or node.charges is None:
            continue
        outcome = outcomes[node.index]
        if isinstance(outcome, _NodeFailure):
            continue  # failed groupings have no elapsed time to bill
        elapsed, computed = outcome
        if not computed:
            continue
        charged = outcomes[node.charges]
        if isinstance(charged, _NodeFailure):
            continue  # the consumer failed; nothing to charge the prep to
        if not charged.grouping_cached:
            # The consumer did not ride the node's artifact after all —
            # e.g. a bounded cache evicted it in between and the
            # consumer recomputed, billing itself.  Its own accounting
            # is already correct; adding the node's elapsed on top
            # would double-count the grouping.
            continue
        charged.result.prep_time = elapsed
        charged.grouping_cached = False
        charged.stage_times["grouping"] = elapsed + charged.stage_times.get(
            "grouping", 0.0
        )
    return responses
