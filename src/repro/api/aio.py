"""AsyncMappingService — the awaitable front end of the serving layer.

A mapping server wants an event loop at the edge (accepting requests,
streaming responses) and the blocking plan→execute engine in the back.
:class:`AsyncMappingService` bridges the two: ``await service.map(req)``
/ ``await service.map_batch(reqs)`` drive the synchronous
:meth:`repro.api.service.MappingService.map_batch` on a small pool of
*driver threads*, so the loop keeps serving while plans execute — on an
attached :class:`~repro.api.pool.ExecutorPool`'s long-lived workers
when one is configured.

Three properties shape the implementation:

* **Bounded in-flight plans.**  ``max_in_flight`` caps how many plans
  execute concurrently (driver-pool width == semaphore permits); excess
  awaiters queue in FIFO order instead of oversubscribing the engine.
* **Per-request futures.**  :meth:`submit` returns an
  :class:`asyncio.Task` per request immediately, so a server can fan
  out requests as they arrive and gather completions in any order.
* **Shared sync semantics.**  Results are produced by the same
  ``MappingService`` the sync path uses — byte-identical responses,
  same artifact cache (switched to its concurrent mode, since several
  driver threads may hit it at once).

Quickstart::

    async def serve(requests):
        async with AsyncMappingService(pool=ExecutorPool("process")) as svc:
            tasks = [svc.submit(r) for r in requests]      # per-request futures
            return [await t for t in tasks]
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Iterable, List, Optional, Union

from repro.api.request import MapRequest, MapResponse
from repro.api.service import MappingService

__all__ = ["AsyncMappingService"]


class AsyncMappingService:
    """Awaitable wrapper around a (possibly pool-backed) MappingService.

    Parameters
    ----------
    service:
        The synchronous service to drive.  Built on demand (forwarding
        *pool* and *service_kwargs* to :class:`MappingService`) when not
        given.
    pool:
        Optional :class:`~repro.api.pool.ExecutorPool` for the
        underlying batches; only legal when *service* is built here.
    max_in_flight:
        Maximum plans executing concurrently; further ``map``/
        ``map_batch`` awaiters wait on the semaphore.
    service_kwargs:
        Extra :class:`MappingService` constructor arguments (``cache=``,
        ``backend=``, ``workers=``) when *service* is built here.

    Use as an async context manager or call :meth:`close` when done —
    this stops the driver threads (an attached pool is shared, not
    owned: shut it down where it was created).
    """

    def __init__(
        self,
        service: Optional[MappingService] = None,
        *,
        pool=None,
        max_in_flight: int = 2,
        **service_kwargs,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if service is not None and (pool is not None or service_kwargs):
            raise ValueError(
                "pass either a prebuilt service or constructor arguments, not both"
            )
        self.service = (
            service
            if service is not None
            else MappingService(pool=pool, **service_kwargs)
        )
        # Several driver threads may execute plans against the one
        # service concurrently; its cache must dedupe same-key computes.
        self.service.cache.enable_concurrency()
        self.max_in_flight = max_in_flight
        self._drivers = ThreadPoolExecutor(
            max_workers=max_in_flight, thread_name_prefix="repro-aio"
        )
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._active = 0
        self._closed = False

    # ------------------------------------------------------------------
    # awaitable API
    # ------------------------------------------------------------------
    async def map(self, request: MapRequest, **kwargs) -> MapResponse:
        """Awaitable :meth:`MappingService.map` (exactly one algorithm).

        Accepts the same ``timeout=`` / engine fault kwargs as
        :meth:`map_batch`.
        """
        if len(request.algorithms) != 1:
            raise ValueError(
                f"map() takes exactly one algorithm, got {request.algorithms}; "
                "use map_batch() for several"
            )
        responses = await self.map_batch(request, **kwargs)
        return responses[0]

    async def map_batch(
        self,
        requests: Union[MapRequest, Iterable[MapRequest]],
        *,
        timeout: Optional[float] = None,
        **kwargs,
    ) -> List[MapResponse]:
        """Awaitable :meth:`MappingService.map_batch`; same kwargs.

        The plan builds and executes on a driver thread, so the event
        loop never blocks; at most ``max_in_flight`` plans run at once.

        *timeout* bounds this batch's wall time: past it the await
        fails with :class:`asyncio.TimeoutError`.  Engine-level fault
        handling (``retry=``, ``node_timeout=``, ``on_error=``) passes
        straight through to :meth:`MappingService.map_batch`.

        Cancellation is safe at any point: a cancelled (or timed-out)
        awaiter releases its ``max_in_flight`` slot immediately and the
        service stays serviceable.  A plan already executing on a
        driver thread runs to completion in the background — executors
        cannot interrupt a running plan — but its results are
        discarded and its slot is not held.
        """
        if not isinstance(requests, MapRequest):
            requests = tuple(requests)  # materialize off the loop's clock
        async with self._plan_slot():
            if self._closed:
                # close() ran while this plan was queued on the
                # semaphore; reject it cleanly instead of hitting the
                # shut-down driver executor.
                raise RuntimeError("AsyncMappingService is closed")
            loop = asyncio.get_running_loop()
            self._active += 1
            try:
                future = loop.run_in_executor(
                    self._drivers,
                    partial(self.service.map_batch, requests, **kwargs),
                )
                if timeout is not None:
                    return await asyncio.wait_for(future, timeout)
                return await future
            finally:
                self._active -= 1

    def submit(self, request: MapRequest, **kwargs) -> "asyncio.Task":
        """Per-request future: schedule *request* and return its Task.

        The Task resolves to the request's response list (one
        :class:`MapResponse` per algorithm).  Must be called from a
        running event loop.
        """
        return asyncio.get_running_loop().create_task(
            self.map_batch(request, **kwargs)
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Plans currently executing (or queued on driver threads)."""
        return self._active

    def stats(self) -> dict:
        """Serving-observability counters (the ``stats`` op's aio block)."""
        return {
            "in_flight": self._active,
            "max_in_flight": self.max_in_flight,
            "closed": self._closed,
        }

    async def close(self) -> None:
        """Stop the driver threads after in-flight plans finish.

        Plans still *queued* on the in-flight semaphore when close()
        runs are rejected with :class:`RuntimeError` when their turn
        comes — executing plans always complete.
        """
        if self._closed:
            return
        self._closed = True
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, partial(self._drivers.shutdown, wait=True)
        )

    async def __aenter__(self) -> "AsyncMappingService":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    def _plan_slot(self) -> asyncio.Semaphore:
        """The in-flight semaphore, created lazily on the running loop."""
        if self._closed:
            raise RuntimeError("AsyncMappingService is closed")
        loop = asyncio.get_running_loop()
        if self._semaphore is None or self._loop is not loop:
            # A fresh loop (common in tests: one asyncio.run per case)
            # gets a fresh semaphore; permits cannot leak across loops
            # because close() drains before the loop is torn down.
            self._semaphore = asyncio.Semaphore(self.max_in_flight)
            self._loop = loop
        return self._semaphore
