"""ExecutorPool — long-lived workers + artifact store for the serving layer.

PR 4's execution engine spawns a fresh thread/process pool (and, for the
process backend, warms a fresh artifact store) on *every* ``map_batch``
call, which is the right shape for one-shot experiment sweeps but caps a
serving deployment: pool spawn + store warm-up dominate small batches.
An :class:`ExecutorPool` amortizes both across calls:

* **Lazy spawn** — constructing a pool is free; workers start on the
  first batch that needs them.
* **Reuse** — every subsequent batch (from any thread, including the
  async front end in :mod:`repro.api.aio`) runs on the same executor,
  and process workers keep their warm in-memory artifact caches.
* **One store** — the pool owns a :class:`~repro.api.store.
  DiskArtifactStore` (caller-supplied directory or a pool-scoped
  temporary one) that outlives individual batches, so groupings / route
  tables / DEF baselines computed for batch *n* are disk hits for batch
  *n + 1* even across worker processes.
* **Idle reap** — with ``idle_timeout`` set, workers are shut down after
  a quiet period and respawned lazily on the next batch; the store (and
  therefore all warm artifacts) survives the reap.
* **Re-init on config change** — :meth:`configure` tears the executor
  down when the backend / width / store directory actually change and
  the next batch respawns with the new shape.
* **Clean shutdown** — context-manager exit or :meth:`shutdown` joins
  the workers and removes a pool-owned temporary store; an ``atexit``
  hook covers pools the caller forgot.

Process workers receive each batch's request list through the pool
store (namespace ``"batch"``, written once per batch and deleted when
the batch completes) instead of the spawn-time ``initargs`` channel the
one-shot backend uses — long-lived workers must be able to serve
batches that did not exist when they were spawned.
"""

from __future__ import annotations

import atexit
import os
import tempfile
import threading
import time
import uuid
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from itertools import count
from typing import List, Optional, Sequence, Tuple

from repro.api.shm import STORE_TIERS, make_store
from repro.api.store import DEFAULT_PERSIST_NAMESPACES, DiskArtifactStore

__all__ = ["ExecutorPool", "POOL_BACKENDS"]

#: Backends a pool can host (``serial`` needs no workers to keep alive).
POOL_BACKENDS: Tuple[str, ...] = ("thread", "process")

#: Batches a worker process keeps decoded in memory (LRU).
_WORKER_BATCH_LIMIT = 4


class ExecutorPool:
    """Reusable executor + artifact store shared across ``map_batch`` calls.

    Parameters
    ----------
    backend:
        ``"thread"`` or ``"process"`` (``serial`` has nothing to pool).
    workers:
        Pool width (``None`` = the affinity-aware
        :func:`repro.api.executor.default_workers`).
    store_dir:
        Directory of the pool's artifact store.  ``None`` creates a
        temporary directory owned (and removed at shutdown) by the pool.
    idle_timeout:
        Seconds of inactivity after which the workers are reaped
        (``None`` = never).  The store survives; the next batch
        respawns the executor.
    worker_cache_bytes:
        Byte budget of each process worker's in-memory artifact cache
        (LRU-evicted; ``None`` = unbounded).  Long-lived workers need a
        bound or their caches grow with every distinct workload served.
    kernel_backend:
        Kernel-backend request forwarded to the workers (``"numpy"``,
        ``"numba"``, ``"auto"``; ``None`` = environment/auto).  Worker
        initializers resolve it and :func:`~repro.kernels.backend.
        warm_up` the native kernel set exactly once per worker
        lifetime, so batches never pay JIT compile latency; the thread
        backend warms in-process on the first spawn.  Warm-up records
        surface through :meth:`stats` (process workers publish theirs
        into the pool store's ``runtime`` namespace).
    store_tier:
        ``"auto"`` (default) layers a shared-memory tier over the disk
        store when the host supports it, so warm artifacts and batch
        payloads move between workers as mapped segments instead of
        ``.npz`` round-trips; ``"shm"`` insists (raising where
        unsupported); ``"disk"`` keeps the plain disk store.

    Use as a context manager, or call :meth:`shutdown` explicitly::

        with ExecutorPool("process", workers=4) as pool:
            service = MappingService(pool=pool)
            for batch in batches:
                service.map_batch(batch)   # one spawn, many batches
    """

    def __init__(
        self,
        backend: str = "thread",
        *,
        workers: Optional[int] = None,
        store_dir: Optional[str] = None,
        idle_timeout: Optional[float] = None,
        worker_cache_bytes: Optional[int] = 256 << 20,
        namespaces: frozenset = DEFAULT_PERSIST_NAMESPACES,
        kernel_backend: Optional[str] = None,
        store_tier: str = "auto",
        store_remote: Optional[str] = None,
    ) -> None:
        if kernel_backend is not None:
            # Fail fast on a typo; unsatisfiable requests (numba absent)
            # still degrade gracefully at resolve time.
            from repro.kernels.backend import resolve_backend

            resolve_backend(kernel_backend)
        if backend not in POOL_BACKENDS:
            raise ValueError(
                f"unknown pool backend {backend!r}; choose from {POOL_BACKENDS}"
            )
        if store_tier not in STORE_TIERS:
            raise ValueError(
                f"unknown store tier {store_tier!r}; choose from {STORE_TIERS}"
            )
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive (or None)")
        self.backend = backend
        self.workers = workers
        self.store_dir = store_dir
        self.idle_timeout = idle_timeout
        self.worker_cache_bytes = worker_cache_bytes
        self.namespaces = frozenset(namespaces)
        self.kernel_backend = kernel_backend
        self.store_tier = store_tier
        #: Remote artifact store address layered under the pool store
        #: (sharded deployments; workers rebuild the same layering).
        self.store_remote = store_remote
        #: Parent-side warm-up record (thread backend; None until the
        #: first executor spawn).  Process workers publish their records
        #: into the store's ``runtime`` namespace instead.
        self._kernel_warmup: Optional[dict] = None
        #: Executor spawns over the pool's lifetime (lazy spawn + reap
        #: + reconfigure make this observable; tests pin it).
        self.spawn_count = 0
        #: Crash-driven executor replacements (:meth:`respawn` calls).
        #: Each one is also a spawn, so ``spawn_count`` includes them.
        self.restarts = 0

        self._lock = threading.RLock()
        self._executor = None
        self._store: Optional[DiskArtifactStore] = None
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        self._active = 0
        self._last_used = time.monotonic()
        self._reap_timer: Optional[threading.Timer] = None
        self._closed = False
        self._batch_ids = count()
        atexit.register(self.shutdown)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def executor_alive(self) -> bool:
        """Whether workers are currently spawned (False after a reap).

        Spawned is not the same as serviceable: a crashed process pool
        still counts as alive here until it is respawned or reaped.
        Check :attr:`healthy` for "can this pool execute work".
        """
        with self._lock:
            return self._executor is not None

    @property
    def healthy(self) -> bool:
        """Whether the pool can execute work right now.

        True when no executor is spawned yet (the next batch spawns one
        lazily) or the spawned executor is unbroken.  A pool whose
        workers died reports ``healthy == False`` until
        :meth:`respawn` replaces the executor — which the fault-aware
        scheduler does automatically mid-batch.
        """
        with self._lock:
            if self._closed:
                return False
            executor = self._executor
            return executor is None or not getattr(executor, "_broken", False)

    def worker_pids(self) -> List[int]:
        """PIDs of live process-pool workers (empty for thread pools)."""
        with self._lock:
            ex = self._executor
            if ex is None or self.backend != "process":
                return []
            # ProcessPoolExecutor keeps no public worker registry;
            # degrade to empty rather than break if the private map
            # ever moves.
            return sorted(getattr(ex, "_processes", None) or {})

    @property
    def store(self) -> DiskArtifactStore:
        """The pool's artifact store (created lazily, survives reaps)."""
        with self._lock:
            return self._ensure_store()

    def configure(
        self,
        *,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        store_dir: Optional[str] = None,
        idle_timeout: Optional[float] = None,
    ) -> bool:
        """Apply non-``None`` settings; re-init the executor on change.

        Returns True when something changed (the running executor, if
        any, was shut down and the next batch respawns with the new
        configuration).  Raises while batches are in flight — a live
        DAG must not lose its workers mid-run.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("ExecutorPool is shut down")
            changes = (
                (backend is not None and backend != self.backend)
                or (workers is not None and workers != self.workers)
                or (store_dir is not None and store_dir != self.store_dir)
            )
            if idle_timeout is not None and idle_timeout != self.idle_timeout:
                self.idle_timeout = idle_timeout
                self._schedule_reap()
            if not changes:
                return False
            if self._active:
                raise RuntimeError(
                    "cannot reconfigure an ExecutorPool while batches are in flight"
                )
            if backend is not None:
                if backend not in POOL_BACKENDS:
                    raise ValueError(
                        f"unknown pool backend {backend!r}; "
                        f"choose from {POOL_BACKENDS}"
                    )
                self.backend = backend
            if workers is not None:
                self.workers = workers
            self._stop_executor(wait=True)
            if store_dir is not None and store_dir != self.store_dir:
                self._drop_store()
                self.store_dir = store_dir
            return True

    def shutdown(self) -> None:
        """Join the workers and remove a pool-owned temporary store.

        Idempotent; also runs via ``atexit`` for pools never explicitly
        closed, so a serving process exits without stray workers.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._stop_executor(wait=True)
            self._drop_store()
        atexit.unregister(self.shutdown)

    def __enter__(self) -> "ExecutorPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # batch execution support (used by repro.api.executor)
    # ------------------------------------------------------------------
    @contextmanager
    def session(self):
        """Borrow the live executor for one batch (spawning if needed)."""
        with self._lock:
            executor = self._ensure_executor()
            self._active += 1
            self._cancel_reap()
        try:
            yield executor
        finally:
            with self._lock:
                self._active -= 1
                self._last_used = time.monotonic()
                self._schedule_reap()

    def submit(self, fn, *args, **kwargs):
        """Submit work through the pool's *current* executor.

        The indirection matters mid-batch: after :meth:`respawn`
        replaces a crashed executor, a scheduler that submits through
        the pool (rather than a captured executor reference) picks up
        the replacement automatically and only re-runs the nodes it
        lost.
        """
        with self._lock:
            executor = self._ensure_executor()
        return executor.submit(fn, *args, **kwargs)

    def respawn(self) -> None:
        """Replace a crashed (or merely suspect) executor with a fresh one.

        The artifact store — and with it every warm artifact and every
        published batch payload — survives, so re-submitted nodes of an
        in-flight batch find their inputs without the caller resending
        anything.  Bumps :attr:`restarts` (and, via the spawn,
        :attr:`spawn_count`).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("ExecutorPool is shut down")
            if self._executor is not None:
                # wait=False: a broken pool's workers are already dead,
                # and a wedged one must not block the recovery path.
                self._executor.shutdown(wait=False)
                self._executor = None
            self.restarts += 1
            self._ensure_executor()

    def stats(self) -> dict:
        """Lifecycle counters for monitoring/serving endpoints."""
        with self._lock:
            executor = self._executor
            live = 0
            if executor is not None and self.backend == "process":
                live = len(getattr(executor, "_processes", None) or {})
            return {
                "backend": self.backend,
                "workers": self.workers,
                "spawn_count": self.spawn_count,
                "restarts": self.restarts,
                "executor_alive": executor is not None,
                "live_workers": live,
                "healthy": not self._closed
                and (executor is None or not getattr(executor, "_broken", False)),
                "active_batches": self._active,
                "closed": self._closed,
                "kernel_backend": self.kernel_stats(),
                "store": (
                    self._store.stats()
                    if self._store is not None
                    else {"tier": self.store_tier}
                ),
            }

    def kernel_stats(self) -> dict:
        """Resolved kernel backend + per-worker warm-up records.

        The thread backend carries one in-process record; process
        workers each publish theirs (keyed by pid) into the pool
        store's ``runtime`` namespace at initializer time, where the
        parent collects them — a serve ``stats`` op can therefore
        confirm what a running worker actually compiled, and that it
        compiled exactly once per worker lifetime.
        """
        from repro.kernels.backend import backend_info

        info = backend_info(self.kernel_backend)
        with self._lock:
            parent = self._kernel_warmup
            store = self._store
        if parent is not None:
            info["warmup"] = parent
        if self.backend == "process" and store is not None:
            workers = {}
            for pid in self.worker_pids():
                record = store.load("runtime", f"kernel-warmup-{pid}")
                if record is not None:
                    workers[str(pid)] = record
            info["workers"] = workers
        return info

    def publish_batch(self, requests: Sequence) -> str:
        """Publish a batch's request list to the pool store; returns its key.

        Long-lived process workers load (and LRU-cache) the list on the
        first node of the batch they execute — the store replaces the
        one-shot backend's spawn-time ``initargs`` channel.  Under the
        shared-memory store tier the payload is pickled with
        protocol-5 out-of-band buffers straight into a shared segment
        (``batch`` is shm-only there — no disk file at all), so workers
        reattach every ndarray in every request as a zero-copy view;
        with the plain disk tier (thread pools, hosts without
        ``/dev/shm``) it falls back to the store's ``.npz`` path.
        """
        key = f"{os.getpid()}-{next(self._batch_ids)}-{uuid.uuid4().hex[:8]}"
        self.store.save("batch", key, tuple(requests))
        return key

    def release_batch(self, key: str) -> None:
        """Delete a completed batch's request payload from the store."""
        with self._lock:
            store = self._store
        if store is not None:
            store.delete("batch", key)

    # ------------------------------------------------------------------
    # internals (all called under self._lock)
    # ------------------------------------------------------------------
    def _ensure_store(self) -> DiskArtifactStore:
        if self._closed:
            # A post-shutdown access must not resurrect a temporary
            # store directory nobody would ever clean up.
            raise RuntimeError("ExecutorPool is shut down")
        if self._store is None:
            root = self.store_dir
            if root is None:
                self._tmp = tempfile.TemporaryDirectory(prefix="repro-pool-")
                root = self._tmp.name
            # The pool parent owns the root: its close (at shutdown)
            # reaps every shm segment published under it, including by
            # since-dead workers.
            self._store = make_store(
                root,
                tier=self.store_tier,
                namespaces=self.namespaces,
                owner=True,
                remote=self.store_remote,
            )
        return self._store

    def _ensure_executor(self):
        if self._closed:
            raise RuntimeError("ExecutorPool is shut down")
        if self._executor is None:
            from repro.api.executor import default_workers

            width = self.workers if self.workers is not None else default_workers()
            if self.backend == "thread":
                # Thread workers share this process; warm the kernel set
                # here, once per pool lifetime — the process's JIT state
                # survives executor reaps and respawns.
                if self._kernel_warmup is None:
                    from repro.kernels.backend import set_backend, warm_up

                    self._kernel_warmup = warm_up(set_backend(self.kernel_backend))
                self._executor = ThreadPoolExecutor(
                    max_workers=width, thread_name_prefix="repro-pool"
                )
            else:
                store = self._ensure_store()
                self._executor = ProcessPoolExecutor(
                    max_workers=width,
                    initializer=_persistent_worker_init,
                    initargs=(
                        store.root,
                        sorted(store.namespaces),
                        self.worker_cache_bytes,
                        self.kernel_backend,
                        store.tier,  # resolved: "shm" or "disk"
                        self.store_remote,
                    ),
                )
            self.spawn_count += 1
        return self._executor

    def _stop_executor(self, *, wait: bool) -> None:
        self._cancel_reap()
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None

    def _drop_store(self) -> None:
        if self._store is not None and hasattr(self._store, "close"):
            self._store.close()  # owner close: unlink this root's segments
        self._store = None
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def _cancel_reap(self) -> None:
        if self._reap_timer is not None:
            self._reap_timer.cancel()
            self._reap_timer = None

    def _schedule_reap(self) -> None:
        self._cancel_reap()
        if (
            self.idle_timeout is None
            or self._executor is None
            or self._active
            or self._closed
        ):
            return
        timer = threading.Timer(self.idle_timeout, self._maybe_reap)
        timer.daemon = True
        self._reap_timer = timer
        timer.start()

    def _maybe_reap(self) -> None:
        with self._lock:
            if self._closed or self._executor is None or self._active:
                return
            if time.monotonic() - self._last_used + 1e-3 < (self.idle_timeout or 0):
                self._schedule_reap()  # touched since the timer was set
                return
            # Workers are idle by construction, so the join is immediate;
            # the store (and its warm artifacts) survives the reap.
            self._stop_executor(wait=True)


# ---------------------------------------------------------------------------
# Persistent process-pool worker side.
# ---------------------------------------------------------------------------

_WORKER_SERVICE = None
_WORKER_STORE: Optional[DiskArtifactStore] = None
_WORKER_BATCHES: "OrderedDict[str, tuple]" = OrderedDict()


def _persistent_worker_init(
    store_root: str,
    namespaces: Sequence[str],
    cache_bytes: Optional[int],
    kernel_backend: Optional[str] = None,
    store_tier: str = "disk",
    store_remote: Optional[str] = None,
) -> None:
    """Build this worker's long-lived service over the pool's store.

    Also resolves the kernel backend and pre-compiles the native kernel
    set — once per worker lifetime, so no batch this worker ever serves
    pays JIT latency — and publishes the warm-up record (keyed by pid)
    into the store's ``runtime`` namespace for the parent's
    :meth:`ExecutorPool.kernel_stats`.
    """
    global _WORKER_SERVICE, _WORKER_STORE, _WORKER_BATCHES
    from repro.api.cache import ArtifactCache
    from repro.api.service import MappingService
    from repro.kernels.backend import set_backend, warm_up

    # owner=False: a worker must not unlink segments at exit — its
    # siblings (and the parent) still read them; the parent reaps.
    _WORKER_STORE = make_store(
        store_root,
        tier=store_tier,
        namespaces=frozenset(namespaces),
        owner=False,
        remote=store_remote,
    )
    _WORKER_SERVICE = MappingService(
        cache=ArtifactCache(store=_WORKER_STORE, max_bytes=cache_bytes)
    )
    _WORKER_BATCHES = OrderedDict()
    record = warm_up(set_backend(kernel_backend))
    record["pid"] = os.getpid()
    record["warmed_at"] = time.time()
    try:
        _WORKER_STORE.save("runtime", f"kernel-warmup-{os.getpid()}", record)
    except OSError:
        pass  # observability only — never fail a worker over it


def _persistent_run_node(
    batch_key: str, request_index: int, kind: str, algorithm: Optional[str]
):
    """Execute one plan node of a published batch in this worker."""
    from repro.api.executor import run_plan_node

    requests = _WORKER_BATCHES.get(batch_key)
    if requests is None:
        requests = _WORKER_STORE.load("batch", batch_key)
        if requests is None:
            raise RuntimeError(
                f"batch payload {batch_key!r} is missing from the pool store"
            )
        _WORKER_BATCHES[batch_key] = requests
        while len(_WORKER_BATCHES) > _WORKER_BATCH_LIMIT:
            _WORKER_BATCHES.popitem(last=False)
    else:
        _WORKER_BATCHES.move_to_end(batch_key)
    return run_plan_node(
        _WORKER_SERVICE, requests[request_index], kind, algorithm
    )
