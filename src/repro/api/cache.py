"""ArtifactCache — bounded, namespaced memoization shared across requests.

Every expensive artifact the mapping service (and the experiment
harness) produces is stored here under a *namespace* ("grouping",
"route_table", "workload", "def_baseline", …) and a content-derived
key, so that

* ``map_batch`` computes each workload's grouping exactly once across
  algorithms and routes each set of endpoints once across the
  congestion refiners, metrics and simulators,
* TMAP's DEF-fallback comparison reuses the DEF baseline instead of
  re-running it,
* figure runners sharing inputs (Fig. 2/3, Fig. 4/5, Table I) share
  matrices, hypergraphs, workloads, machines and groupings through one
  store instead of five ad-hoc dicts.

Keys for task graphs and machines are *content fingerprints* (chained
CRC-32/Adler-32 over the underlying arrays, see
:mod:`repro.util.fingerprint`) rather than object ids, so two
structurally identical inputs hit the same entry regardless of how
they were constructed, and nothing keeps stale references alive by
identity.

The store is optionally **bounded**: pass ``max_entries`` and/or
``max_bytes`` and the least-recently-used artifacts are evicted once
either budget is exceeded (every ``get_or_compute`` hit refreshes
recency).  Unbounded remains the default — the figure runners want
every artifact resident for the duration of a sweep — but long-lived
services should set a byte budget: route tables and DEF baselines are
the big entries.  Per-namespace hit/miss/eviction/byte statistics are
exported by :meth:`ArtifactCache.stats` and surfaced by the
``python -m repro.api`` CLI (``--stats``).
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

import numpy as np

from repro.util.fingerprint import fingerprint_arrays

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "fingerprint_arrays",
    "task_graph_key",
    "machine_key",
]


def task_graph_key(task_graph) -> int:
    """Content key of a :class:`~repro.graph.task_graph.TaskGraph`."""
    g = task_graph.graph
    return fingerprint_arrays(g.indptr, g.indices, g.weights, g.vertex_weights)


def machine_key(machine) -> int:
    """Content key of a :class:`~repro.topology.machine.Machine`."""
    dims = np.asarray(machine.torus.dims, dtype=np.int64)
    return fingerprint_arrays(dims, machine.alloc_nodes, machine.capacities)


def _estimate_nbytes(value: Any, _depth: int = 0) -> int:
    """Approximate resident bytes of an artifact (ndarray-aware).

    Recurses through the containers artifacts are actually made of —
    dicts, tuples/lists, dataclass-like objects, ``__slots__`` holders —
    summing ndarray buffer sizes; everything else falls back to
    ``sys.getsizeof``.  An estimate is enough: the budget exists to stop
    unbounded growth, not to account memory exactly.
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if _depth >= 4 or value is None:
        return sys.getsizeof(value) if value is not None else 0
    if isinstance(value, dict):
        return sys.getsizeof(value) + sum(
            _estimate_nbytes(v, _depth + 1) for v in value.values()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return sys.getsizeof(value) + sum(
            _estimate_nbytes(v, _depth + 1) for v in value
        )
    if hasattr(value, "__dict__"):
        return sys.getsizeof(value) + sum(
            _estimate_nbytes(v, _depth + 1) for v in vars(value).values()
        )
    slots = getattr(type(value), "__slots__", None)
    if slots:
        return sys.getsizeof(value) + sum(
            _estimate_nbytes(getattr(value, s, None), _depth + 1) for s in slots
        )
    return sys.getsizeof(value)


@dataclass
class CacheStats:
    """Hit/miss/eviction counters and resident bytes for one namespace."""

    hits: int = 0
    misses: int = 0
    size: int = 0
    evictions: int = 0
    bytes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class ArtifactCache:
    """Namespaced ``get_or_compute`` store with LRU bounds and statistics.

    Parameters
    ----------
    max_entries:
        Evict least-recently-used artifacts once more than this many are
        stored (``None`` = unbounded).
    max_bytes:
        Evict least-recently-used artifacts once the estimated resident
        bytes exceed this budget (``None`` = unbounded).  A single
        artifact larger than the whole budget is still computed and
        returned — it just is not retained.
    """

    def __init__(
        self,
        *,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._store: "OrderedDict[Tuple[str, Hashable], Any]" = OrderedDict()
        self._nbytes: Dict[Tuple[str, Hashable], int] = {}
        self._total_bytes = 0
        self._stats: Dict[str, CacheStats] = {}

    # ------------------------------------------------------------------
    def get_or_compute(
        self, namespace: str, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        """Return the cached artifact, computing and storing it on a miss.

        A hit marks the entry most-recently-used; a miss inserts the
        computed value and evicts LRU entries past the configured
        budgets.
        """
        stats = self._stats.setdefault(namespace, CacheStats())
        full = (namespace, key)
        if full in self._store:
            stats.hits += 1
            self._store.move_to_end(full)
            return self._store[full]
        stats.misses += 1
        value = compute()
        self._insert(full, value, stats)
        return value

    def get(self, namespace: str, key: Hashable, default: Any = None) -> Any:
        """Peek without recording a hit/miss, refreshing recency or computing."""
        return self._store.get((namespace, key), default)

    def put(self, namespace: str, key: Hashable, value: Any) -> None:
        """Insert (or overwrite) an artifact directly (most-recently-used)."""
        stats = self._stats.setdefault(namespace, CacheStats())
        self._insert((namespace, key), value, stats)

    def __contains__(self, full_key: Tuple[str, Hashable]) -> bool:
        return full_key in self._store

    # ------------------------------------------------------------------
    def _insert(
        self, full: Tuple[str, Hashable], value: Any, stats: CacheStats
    ) -> None:
        if full in self._store:
            self._drop(full, count_eviction=False)
        nbytes = _estimate_nbytes(value)
        self._store[full] = value  # a fresh key lands at the MRU end
        self._nbytes[full] = nbytes
        self._total_bytes += nbytes
        stats.size += 1
        stats.bytes += nbytes
        self._evict_over_budget()

    def _over_budget(self) -> bool:
        if self.max_entries is not None and len(self._store) > self.max_entries:
            return True
        if self.max_bytes is not None and self._total_bytes > self.max_bytes:
            return True
        return False

    def _evict_over_budget(self) -> None:
        while self._store and self._over_budget():
            oldest = next(iter(self._store))
            self._drop(oldest, count_eviction=True)

    def _drop(self, full: Tuple[str, Hashable], *, count_eviction: bool) -> None:
        del self._store[full]
        nbytes = self._nbytes.pop(full, 0)
        self._total_bytes -= nbytes
        stats = self._stats.setdefault(full[0], CacheStats())
        stats.size -= 1
        stats.bytes -= nbytes
        if count_eviction:
            stats.evictions += 1

    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Estimated resident bytes of every stored artifact."""
        return self._total_bytes

    def stats(self, namespace: Optional[str] = None):
        """Per-namespace :class:`CacheStats` (or one namespace's)."""
        if namespace is not None:
            return self._stats.setdefault(namespace, CacheStats())
        return dict(self._stats)

    def clear(self, namespace: Optional[str] = None) -> None:
        """Drop all artifacts, or only one namespace's."""
        if namespace is None:
            self._store.clear()
            self._nbytes.clear()
            self._total_bytes = 0
            self._stats.clear()
            return
        for full in [k for k in self._store if k[0] == namespace]:
            nbytes = self._nbytes.pop(full, 0)
            self._total_bytes -= nbytes
            del self._store[full]
        self._stats.pop(namespace, None)

    def __len__(self) -> int:
        return len(self._store)

    def format_stats(self) -> str:
        """One line per namespace, e.g. ``grouping: 6 hits / 2 misses (2 stored, 1.2 MB)``."""
        lines = []
        for ns in sorted(self._stats):
            s = self._stats[ns]
            line = (
                f"{ns}: {s.hits} hits / {s.misses} misses "
                f"({s.size} stored, {_format_bytes(s.bytes)}"
            )
            if s.evictions:
                line += f", {s.evictions} evicted"
            lines.append(line + ")")
        return "\n".join(lines) if lines else "(empty)"


def _format_bytes(n: int) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024 or unit == "GB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"  # pragma: no cover - unreachable
