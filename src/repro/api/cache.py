"""ArtifactCache — namespaced memoization shared across mapping requests.

Every expensive artifact the mapping service (and the experiment
harness) produces is stored here under a *namespace* ("grouping",
"workload", "def_baseline", …) and a content-derived key, so that

* ``map_batch`` computes each workload's grouping exactly once across
  algorithms,
* TMAP's DEF-fallback comparison reuses the DEF baseline instead of
  re-running it,
* figure runners sharing inputs (Fig. 2/3, Fig. 4/5, Table I) share
  matrices, hypergraphs, workloads, machines and groupings through one
  store instead of five ad-hoc dicts.

Keys for task graphs and machines are *content fingerprints* (chained
CRC-32/Adler-32 over the underlying arrays) rather than object ids, so
two structurally identical inputs hit the same entry regardless of how
they were constructed, and nothing keeps stale references alive by
identity.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

import numpy as np

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "fingerprint_arrays",
    "task_graph_key",
    "machine_key",
]


def fingerprint_arrays(*arrays: np.ndarray) -> int:
    """64-bit content fingerprint of a sequence of ndarrays.

    Chains CRC-32 and Adler-32 over each array's bytes and shape; the two
    checksums land in separate halves of the result so single-checksum
    collisions do not collide the combined key.
    """
    crc = 0
    adl = 1
    for a in arrays:
        arr = np.ascontiguousarray(a)
        meta = f"{arr.dtype.str}{arr.shape}".encode()
        data = arr.tobytes()
        crc = zlib.crc32(data, zlib.crc32(meta, crc))
        adl = zlib.adler32(data, zlib.adler32(meta, adl))
    return (crc << 32) | adl


def task_graph_key(task_graph) -> int:
    """Content key of a :class:`~repro.graph.task_graph.TaskGraph`."""
    g = task_graph.graph
    return fingerprint_arrays(g.indptr, g.indices, g.weights, g.vertex_weights)


def machine_key(machine) -> int:
    """Content key of a :class:`~repro.topology.machine.Machine`."""
    dims = np.asarray(machine.torus.dims, dtype=np.int64)
    return fingerprint_arrays(dims, machine.alloc_nodes, machine.capacities)


@dataclass
class CacheStats:
    """Hit/miss counters for one namespace."""

    hits: int = 0
    misses: int = 0
    size: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class ArtifactCache:
    """Namespaced ``get_or_compute`` store with per-namespace statistics.

    The cache is a plain in-process dictionary — deliberately simple, so
    it can later be swapped for a bounded/LRU or cross-process store
    without touching any caller (everything goes through
    :meth:`get_or_compute`).
    """

    def __init__(self) -> None:
        self._store: Dict[Tuple[str, Hashable], Any] = {}
        self._stats: Dict[str, CacheStats] = {}

    # ------------------------------------------------------------------
    def get_or_compute(
        self, namespace: str, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        """Return the cached artifact, computing and storing it on a miss."""
        stats = self._stats.setdefault(namespace, CacheStats())
        full = (namespace, key)
        if full in self._store:
            stats.hits += 1
            return self._store[full]
        stats.misses += 1
        value = compute()
        self._store[full] = value
        stats.size += 1
        return value

    def get(self, namespace: str, key: Hashable, default: Any = None) -> Any:
        """Peek without recording a hit/miss or computing anything."""
        return self._store.get((namespace, key), default)

    def put(self, namespace: str, key: Hashable, value: Any) -> None:
        """Insert (or overwrite) an artifact directly."""
        full = (namespace, key)
        stats = self._stats.setdefault(namespace, CacheStats())
        if full not in self._store:
            stats.size += 1
        self._store[full] = value

    def __contains__(self, full_key: Tuple[str, Hashable]) -> bool:
        return full_key in self._store

    # ------------------------------------------------------------------
    def stats(self, namespace: Optional[str] = None):
        """Per-namespace :class:`CacheStats` (or one namespace's)."""
        if namespace is not None:
            return self._stats.setdefault(namespace, CacheStats())
        return dict(self._stats)

    def clear(self, namespace: Optional[str] = None) -> None:
        """Drop all artifacts, or only one namespace's."""
        if namespace is None:
            self._store.clear()
            self._stats.clear()
            return
        for full in [k for k in self._store if k[0] == namespace]:
            del self._store[full]
        self._stats.pop(namespace, None)

    def __len__(self) -> int:
        return len(self._store)

    def format_stats(self) -> str:
        """One line per namespace: ``grouping: 6 hits / 2 misses (2 stored)``."""
        lines = []
        for ns in sorted(self._stats):
            s = self._stats[ns]
            lines.append(f"{ns}: {s.hits} hits / {s.misses} misses ({s.size} stored)")
        return "\n".join(lines) if lines else "(empty)"
