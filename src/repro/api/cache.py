"""ArtifactCache — bounded, namespaced memoization shared across requests.

Every expensive artifact the mapping service (and the experiment
harness) produces is stored here under a *namespace* ("grouping",
"route_table", "workload", "def_baseline", …) and a content-derived
key, so that

* ``map_batch`` computes each workload's grouping exactly once across
  algorithms and routes each set of endpoints once across the
  congestion refiners, metrics and simulators,
* TMAP's DEF-fallback comparison reuses the DEF baseline instead of
  re-running it,
* figure runners sharing inputs (Fig. 2/3, Fig. 4/5, Table I) share
  matrices, hypergraphs, workloads, machines and groupings through one
  store instead of five ad-hoc dicts.

Keys for task graphs and machines are *content fingerprints* (chained
CRC-32/Adler-32 over the underlying arrays, see
:mod:`repro.util.fingerprint`) rather than object ids, so two
structurally identical inputs hit the same entry regardless of how
they were constructed, and nothing keeps stale references alive by
identity.

The store is optionally **bounded**: pass ``max_entries`` and/or
``max_bytes`` and the least-recently-used artifacts are evicted once
either budget is exceeded (every ``get_or_compute`` hit refreshes
recency).  Unbounded remains the default — the figure runners want
every artifact resident for the duration of a sweep — but long-lived
services should set a byte budget: route tables and DEF baselines are
the big entries.  Per-namespace hit/miss/eviction/byte statistics are
exported by :meth:`ArtifactCache.stats` and surfaced by the
``python -m repro.api`` CLI (``--stats``).

Two orthogonal extensions serve the parallel execution engine
(:mod:`repro.api.executor`):

* **Concurrent mode** (:meth:`enable_concurrency`, used by the
  ``thread`` backend): all bookkeeping — stats counters, the LRU
  order, byte accounting — happens under one short-lived mutex, so
  hits/misses/evictions stay exact under concurrent callers, and a
  bank of *striped* locks serializes top-level computes of the same
  key (two threads asking for one grouping run one compute).  Nested
  ``get_or_compute`` calls issued from inside a compute (the DEF
  baseline computes groupings and route tables) deliberately bypass
  the stripes — a thread never holds two stripes, so the striping can
  never deadlock; a nested duplicate compute is benign because every
  artifact is deterministic in its key.
* **Disk layering** (``store=``): a
  :class:`~repro.api.store.DiskArtifactStore` underneath the LRU turns
  a memory miss into a disk read and a computed value into an atomic
  write-through (for the store's declared namespaces), which is how
  the ``process`` backend's pool workers share groupings, route tables
  and DEF baselines across address spaces.  Disk reads count as hits
  (``CacheStats.store_hits`` tracks them separately).
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.util.fingerprint import fingerprint_arrays

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "fingerprint_arrays",
    "task_graph_key",
    "machine_key",
]

_MISSING = object()

#: Stripe count of the concurrent mode's per-key compute locks.
_NUM_STRIPES = 64


def task_graph_key(task_graph) -> int:
    """Content key of a :class:`~repro.graph.task_graph.TaskGraph`."""
    g = task_graph.graph
    return fingerprint_arrays(g.indptr, g.indices, g.weights, g.vertex_weights)


def machine_key(machine) -> int:
    """Content key of a :class:`~repro.topology.machine.Machine`.

    A degraded machine (failure mask on its torus) fingerprints its
    dead links/nodes too — a healthy and a degraded machine over the
    same allocation must never share cached groupings, route tables or
    baselines.  Healthy keys are unchanged.
    """
    dims = np.asarray(machine.torus.dims, dtype=np.int64)
    arrays = [dims, machine.alloc_nodes, machine.capacities]
    if machine.torus.has_faults:
        arrays.extend(machine.torus.fault_arrays())
    return fingerprint_arrays(*arrays)


def _estimate_nbytes(value: Any, _depth: int = 0) -> int:
    """Approximate resident bytes of an artifact (ndarray-aware).

    Recurses through the containers artifacts are actually made of —
    dicts, tuples/lists, dataclass-like objects, ``__slots__`` holders —
    summing ndarray buffer sizes; everything else falls back to
    ``sys.getsizeof``.  An estimate is enough: the budget exists to stop
    unbounded growth, not to account memory exactly.
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if _depth >= 4 or value is None:
        return sys.getsizeof(value) if value is not None else 0
    if isinstance(value, dict):
        return sys.getsizeof(value) + sum(
            _estimate_nbytes(v, _depth + 1) for v in value.values()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return sys.getsizeof(value) + sum(
            _estimate_nbytes(v, _depth + 1) for v in value
        )
    if hasattr(value, "__dict__"):
        return sys.getsizeof(value) + sum(
            _estimate_nbytes(v, _depth + 1) for v in vars(value).values()
        )
    slots = getattr(type(value), "__slots__", None)
    if slots:
        return sys.getsizeof(value) + sum(
            _estimate_nbytes(getattr(value, s, None), _depth + 1) for s in slots
        )
    return sys.getsizeof(value)


@dataclass
class CacheStats:
    """Hit/miss/eviction counters and resident bytes for one namespace.

    ``store_hits`` counts the subset of ``hits`` that were served from
    the layered :class:`~repro.api.store.DiskArtifactStore` rather than
    memory; ``store_errors`` counts write-throughs that failed and were
    skipped (both 0 when no store is attached).
    """

    hits: int = 0
    misses: int = 0
    size: int = 0
    evictions: int = 0
    bytes: int = 0
    store_hits: int = 0
    store_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class ArtifactCache:
    """Namespaced ``get_or_compute`` store with LRU bounds and statistics.

    Parameters
    ----------
    max_entries:
        Evict least-recently-used artifacts once more than this many are
        stored (``None`` = unbounded).
    max_bytes:
        Evict least-recently-used artifacts once the estimated resident
        bytes exceed this budget (``None`` = unbounded).  A single
        artifact larger than the whole budget is still computed and
        returned — it just is not retained.
    store:
        Optional :class:`~repro.api.store.DiskArtifactStore` layered
        under the LRU: memory misses in the store's declared namespaces
        fall through to disk, and computed values are written through
        atomically, making the artifact shareable across processes.
    concurrent:
        Start in concurrent mode (see :meth:`enable_concurrency`).
    """

    def __init__(
        self,
        *,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        store=None,
        concurrent: bool = False,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.store = store
        self._store: "OrderedDict[Tuple[str, Hashable], Any]" = OrderedDict()
        self._nbytes: Dict[Tuple[str, Hashable], int] = {}
        self._total_bytes = 0
        self._stats: Dict[str, CacheStats] = {}
        # The mutex guards every bookkeeping structure above; it is held
        # only for dict/counter updates, never across a compute or disk
        # I/O, so the serial path pays one uncontended acquire per call.
        self._mutex = threading.RLock()
        self._stripes: Optional[List[threading.Lock]] = None
        self._in_compute = threading.local()
        if concurrent:
            self.enable_concurrency()

    # ------------------------------------------------------------------
    # concurrency
    # ------------------------------------------------------------------
    @property
    def concurrent(self) -> bool:
        """Whether striped compute locks are installed."""
        return self._stripes is not None

    def enable_concurrency(self) -> None:
        """Install the striped compute locks (idempotent).

        Called by the ``thread`` execution backend before fanning out.
        Bookkeeping is mutex-protected regardless of this mode; the
        stripes only add same-key compute dedup for top-level calls.
        """
        if self._stripes is None:
            self._stripes = [threading.Lock() for _ in range(_NUM_STRIPES)]

    # ------------------------------------------------------------------
    def get_or_compute(
        self, namespace: str, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        """Return the cached artifact, computing and storing it on a miss.

        A hit marks the entry most-recently-used; a memory miss falls
        through to the disk store (when layered), then to *compute*; a
        computed value is inserted, written through to disk, and LRU
        entries past the configured budgets are evicted.
        """
        stripes = self._stripes
        if stripes is None or getattr(self._in_compute, "held", False):
            return self._get_or_compute_inner(namespace, key, compute)
        stripe = stripes[hash((namespace, key)) % len(stripes)]
        self._in_compute.held = True
        try:
            with stripe:
                return self._get_or_compute_inner(namespace, key, compute)
        finally:
            self._in_compute.held = False

    def _get_or_compute_inner(
        self, namespace: str, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        full = (namespace, key)
        with self._mutex:
            stats = self._stats.setdefault(namespace, CacheStats())
            if full in self._store:
                stats.hits += 1
                self._store.move_to_end(full)
                return self._store[full]
        value = self._load_from_store(namespace, key)  # I/O outside the mutex
        if value is not _MISSING:
            with self._mutex:
                stats.hits += 1
                stats.store_hits += 1
                self._insert(full, value, stats)
            return value
        value = compute()  # compute outside the mutex
        with self._mutex:
            stats.misses += 1
            self._insert(full, value, stats)
        self._write_through(namespace, key, value)
        return value

    def get(self, namespace: str, key: Hashable, default: Any = None) -> Any:
        """Peek (memory only) without recording a hit/miss or recency."""
        with self._mutex:
            return self._store.get((namespace, key), default)

    def put(self, namespace: str, key: Hashable, value: Any) -> None:
        """Insert (or overwrite) an artifact directly (most-recently-used)."""
        with self._mutex:
            stats = self._stats.setdefault(namespace, CacheStats())
            self._insert((namespace, key), value, stats)
        # force=True: unlike get_or_compute results (deterministic in
        # their key, so an existing file is already correct), a direct
        # put may revise an entry — the DEF baseline's lazily filled
        # metrics — and must reach disk even when the path exists.
        self._write_through(namespace, key, value, force=True)

    def __contains__(self, full_key: Tuple[str, Hashable]) -> bool:
        with self._mutex:
            return full_key in self._store

    # ------------------------------------------------------------------
    # disk layering
    # ------------------------------------------------------------------
    def _load_from_store(self, namespace: str, key: Hashable) -> Any:
        if self.store is None or namespace not in self.store.namespaces:
            return _MISSING
        return self.store.load(namespace, key, default=_MISSING)

    def _write_through(
        self, namespace: str, key: Hashable, value: Any, *, force: bool = False
    ) -> None:
        """Persist to the layered store; failures degrade, never abort.

        The store is an optimization layer: a full disk, a permission
        error or an unpicklable third-party artifact must not discard a
        successfully computed result, so write failures only bump the
        namespace's ``store_errors`` counter (mirroring the read side,
        where corruption is a miss).
        """
        if self.store is None or namespace not in self.store.namespaces:
            return
        try:
            self.store.save(namespace, key, value, force=force)
        except Exception:
            with self._mutex:
                self._stats.setdefault(namespace, CacheStats()).store_errors += 1

    # ------------------------------------------------------------------
    def _insert(
        self, full: Tuple[str, Hashable], value: Any, stats: CacheStats
    ) -> None:
        """Insert under the already-held mutex and evict past budgets."""
        if full in self._store:
            self._drop(full, count_eviction=False)
        nbytes = _estimate_nbytes(value)
        self._store[full] = value  # a fresh key lands at the MRU end
        self._nbytes[full] = nbytes
        self._total_bytes += nbytes
        stats.size += 1
        stats.bytes += nbytes
        self._evict_over_budget()

    def _over_budget(self) -> bool:
        if self.max_entries is not None and len(self._store) > self.max_entries:
            return True
        if self.max_bytes is not None and self._total_bytes > self.max_bytes:
            return True
        return False

    def _evict_over_budget(self) -> None:
        while self._store and self._over_budget():
            oldest = next(iter(self._store))
            self._drop(oldest, count_eviction=True)

    def _drop(self, full: Tuple[str, Hashable], *, count_eviction: bool) -> None:
        del self._store[full]
        nbytes = self._nbytes.pop(full, 0)
        self._total_bytes -= nbytes
        stats = self._stats.setdefault(full[0], CacheStats())
        stats.size -= 1
        stats.bytes -= nbytes
        if count_eviction:
            stats.evictions += 1

    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Estimated resident bytes of every stored artifact."""
        with self._mutex:
            return self._total_bytes

    def stats(self, namespace: Optional[str] = None):
        """Per-namespace :class:`CacheStats` (or one namespace's)."""
        with self._mutex:
            if namespace is not None:
                return self._stats.setdefault(namespace, CacheStats())
            return dict(self._stats)

    def store_stats(self) -> Optional[dict]:
        """The layered store's tier/I-O counters (None when unlayered).

        The tiered read path is memory LRU (this cache) → shm → disk;
        this exposes the two lower tiers' side of it — segment counts
        and bytes for shm, load/save/skip counters for disk.
        """
        store = self.store
        if store is None or not hasattr(store, "stats"):
            return None
        return store.stats()

    def clear(self, namespace: Optional[str] = None) -> None:
        """Drop all in-memory artifacts, or only one namespace's.

        The layered disk store (if any) is untouched — use
        ``cache.store.clear()`` to delete persisted artifacts.
        """
        with self._mutex:
            if namespace is None:
                self._store.clear()
                self._nbytes.clear()
                self._total_bytes = 0
                self._stats.clear()
                return
            for full in [k for k in self._store if k[0] == namespace]:
                nbytes = self._nbytes.pop(full, 0)
                self._total_bytes -= nbytes
                del self._store[full]
            self._stats.pop(namespace, None)

    def __len__(self) -> int:
        with self._mutex:
            return len(self._store)

    def format_stats(self) -> str:
        """One line per namespace, e.g. ``grouping: 6 hits / 2 misses (2 stored, 1.2 MB)``."""
        lines = []
        with self._mutex:
            snapshot = {ns: s for ns, s in self._stats.items()}
        for ns in sorted(snapshot):
            s = snapshot[ns]
            line = (
                f"{ns}: {s.hits} hits / {s.misses} misses "
                f"({s.size} stored, {_format_bytes(s.bytes)}"
            )
            if s.store_hits:
                line += f", {s.store_hits} from disk"
            if s.store_errors:
                line += f", {s.store_errors} failed writes"
            if s.evictions:
                line += f", {s.evictions} evicted"
            lines.append(line + ")")
        return "\n".join(lines) if lines else "(empty)"


def _format_bytes(n: int) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024 or unit == "GB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"  # pragma: no cover - unreachable
