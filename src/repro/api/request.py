"""MapRequest / MapResponse — the service's wire-level dataclasses.

A :class:`MapRequest` bundles everything one mapping run needs: the task
graph, the machine, one or more algorithm names, the seeds/Δ-budget, and
optional precomputed artifacts.  A :class:`MapResponse` carries the
legacy :class:`~repro.mapping.pipeline.MapperResult` (so every existing
consumer keeps working) plus per-stage timings and, when requested, the
fine-level quality metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graph.task_graph import TaskGraph
from repro.mapping.pipeline import MapperResult
from repro.metrics.mapping import MappingMetrics
from repro.partition.driver import EngineConfig
from repro.topology.machine import Machine

__all__ = ["MapRequest", "MapResponse"]


@dataclass
class MapRequest:
    """One mapping job: a workload, a machine, and the algorithm(s) to run.

    Parameters
    ----------
    task_graph:
        Fine (rank-level) communication graph.
    machine:
        Allocated torus nodes + per-node processor capacities.
    algorithms:
        Registered mapper name(s).  A plain string is accepted and
        normalized to a one-element tuple; :meth:`MappingService.map`
        requires exactly one name, :meth:`~MappingService.map_batch`
        runs them all against the shared artifact cache.
    seed:
        Seed for the mapping algorithms (grouping partitioner, baseline
        engines).
    delta:
        Early-exit budget Δ of the refinement algorithms.
    group_config:
        Optional partitioner configuration for the grouping stage.
    groups:
        Optional precomputed ``(group_of_task, coarse)`` pair, injected
        verbatim (the legacy ``TwoPhaseMapper.map(groups=...)`` path).
    grouping_seed:
        Seed for the shared grouping stage when the service computes it;
        defaults to ``seed``.  The experiment harness uses a distinct,
        workload-derived seed here so all algorithms (and all figure
        runners) share one cached grouping per workload.
    evaluate:
        Attach fine-level :class:`MappingMetrics` to each response.
    tag:
        Opaque caller label, echoed on the response (useful when batching
        requests for many workloads).
    """

    task_graph: TaskGraph
    machine: Machine
    algorithms: Union[str, Sequence[str]] = ("UG",)
    seed: int = 0
    delta: int = 8
    group_config: Optional[EngineConfig] = None
    groups: Optional[Tuple[np.ndarray, TaskGraph]] = None
    grouping_seed: Optional[int] = None
    evaluate: bool = False
    tag: Optional[Hashable] = None

    def __post_init__(self) -> None:
        if isinstance(self.algorithms, str):
            self.algorithms = (self.algorithms,)
        else:
            self.algorithms = tuple(self.algorithms)
        if not self.algorithms:
            raise ValueError("MapRequest needs at least one algorithm name")
        self._content_keys: Optional[Tuple[int, int]] = None

    @property
    def effective_grouping_seed(self) -> int:
        return self.seed if self.grouping_seed is None else self.grouping_seed

    def content_keys(self) -> Tuple[int, int]:
        """(task-graph, machine) content fingerprints, computed once.

        A batched request fingerprints its (possibly MB-sized) arrays a
        single time, however many algorithms it fans out to.  The
        request's task graph and machine must not be mutated after the
        first service call — the service does not, and callers share the
        same contract.
        """
        if self._content_keys is None:
            from repro.api.cache import machine_key, task_graph_key

            self._content_keys = (
                task_graph_key(self.task_graph),
                machine_key(self.machine),
            )
        return self._content_keys


@dataclass
class MapResponse:
    """Outcome of one (request, algorithm) run.

    ``result`` is the legacy :class:`MapperResult` — fine/coarse Γ,
    grouping vector, coarse graph, ``map_time``/``prep_time`` with the
    paper's Figure-3 accounting.  ``stage_times`` breaks ``map_time``
    down per declared stage (``"placement:greedy"``, ``"refine:wh"``,
    …), which the monolithic pipeline could never report.

    Under ``map_batch(..., on_error="partial")`` a failed run comes
    back with ``result=None`` and a structured
    :class:`~repro.api.fault.PlanError` on ``error`` instead of
    aborting the batch; check :attr:`ok` before touching the mapping
    accessors.
    """

    algorithm: str
    result: Optional[MapperResult]
    stage_times: Dict[str, float] = field(default_factory=dict)
    metrics: Optional[MappingMetrics] = None
    grouping_cached: bool = False
    tag: Optional[Hashable] = None
    error: Optional["PlanError"] = None

    @property
    def ok(self) -> bool:
        """True when the run produced a mapping (no structured error)."""
        return self.error is None

    def _result(self) -> MapperResult:
        if self.result is None:
            raise RuntimeError(
                f"response for {self.algorithm!r} carries no mapping: {self.error}"
            )
        return self.result

    @property
    def fine_gamma(self) -> np.ndarray:
        return self._result().fine_gamma

    @property
    def coarse_gamma(self) -> np.ndarray:
        return self._result().coarse_gamma

    @property
    def map_time(self) -> float:
        return self._result().map_time

    @property
    def prep_time(self) -> float:
        return self._result().prep_time

    def fingerprint(self) -> Optional[int]:
        """Content fingerprint of the produced mapping (None on error).

        Two responses carry the same fingerprint iff their fine and
        coarse mappings are byte-identical — the serving layer ships
        this over the wire instead of the gamma arrays, so clients
        (and the integration tests) can assert response identity
        without a side channel.
        """
        if self.result is None:
            return None
        from repro.util.fingerprint import fingerprint_arrays

        return int(
            fingerprint_arrays(
                np.ascontiguousarray(self.result.fine_gamma),
                np.ascontiguousarray(self.result.coarse_gamma),
            )
        )
