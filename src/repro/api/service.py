"""MappingService — registry-driven execution of mapping requests.

The service replaces ``TwoPhaseMapper``'s if/elif ladder: it looks the
algorithm up in the :mod:`~repro.api.registry`, runs the declared stage
chain (grouping → placement → refine* → expand → fine-refine*) with
per-stage timing, and shares every reusable artifact — groupings, DEF
baselines, unit-cost and message-count coarse views — through an
:class:`~repro.api.cache.ArtifactCache` across algorithms *and*
requests.  ``map_batch`` is the high-throughput entry point: one
workload mapped by N algorithms computes its grouping exactly once.
Hop tables are memoized per torus instance in the kernel layer
(:func:`repro.kernels.hop_table_for`); :meth:`MappingService.hop_table`
additionally exposes them as a content-keyed artifact for API consumers
holding merely-*equal* (not identical) machines.

Since the planner/executor split, ``map_batch`` is a **plan → execute →
collect engine**: :func:`repro.api.plan.build_plan` turns the batch into
an explicit artifact-dependency DAG (shared groupings and DEF baselines
deduped, congestion route-table consumers chained) and
:func:`repro.api.executor.execute_plan` runs it on a pluggable backend —
``serial`` (the bit-identical reference ordering), ``thread`` (pool over
ready nodes, lock-striped concurrent cache) or ``process`` (pool workers
sharing artifacts through a cross-process
:class:`~repro.api.store.DiskArtifactStore`).

Timing follows Figure 3's accounting exactly as the legacy pipeline
did: ``prep_time`` covers the shared grouping (0 when it was injected
or cache-hit; billed to the first consuming algorithm on every
backend), ``map_time`` the algorithm itself — UWH/UMC/UMMC include
UG's time "as they run on top of it", TMAP/DEF charge their private
grouping to ``map_time``.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.api.cache import ArtifactCache, machine_key, task_graph_key
from repro.api.config import EngineConfig
from repro.api.plan import build_plan, grouping_artifact_key
from repro.api.registry import MapperSpec, get_spec
from repro.api.request import MapRequest, MapResponse
from repro.api.stages import (
    FINE_REFINE_STAGES,
    GROUPING_STAGES,
    PLACEMENT_STAGES,
    REFINE_STAGES,
    StageContext,
)
from repro.graph.task_graph import TaskGraph
from repro.mapping.base import Mapping, expand_mapping
from repro.mapping.pipeline import MapperResult
from repro.metrics.mapping import evaluate_mapping
# The *partitioner* configuration (refinement passes, imbalance,
# coarsening) — a different object from repro.api.config.EngineConfig,
# the engine's execution knobs; see the latter's module docstring.
from repro.partition import driver as partition_driver
from repro.topology.machine import Machine

__all__ = ["MappingService"]


class MappingService:
    """Executes :class:`MapRequest` objects against the mapper registry.

    Parameters
    ----------
    cache:
        Shared :class:`ArtifactCache`.  Pass one explicitly to share
        groupings/baselines across services (the experiment harness
        does); by default each service owns a private cache.  Attach a
        :class:`~repro.api.store.DiskArtifactStore`
        (``ArtifactCache(store=...)``) to persist artifacts across
        processes and batches.
    backend:
        Default execution backend of :meth:`map_batch` — ``"serial"``
        (reference), ``"thread"`` or ``"process"``.  Overridable per
        call.
    workers:
        Default pool width for the parallel backends (``None`` = CPU
        count).
    pool:
        Optional long-lived :class:`~repro.api.pool.ExecutorPool`.
        When attached, :meth:`map_batch` reuses the pool's workers and
        store for every non-serial batch instead of spawning per call —
        the serving-layer configuration.  The pool's backend becomes
        the service default unless *backend* is given explicitly
        (``MappingService(backend="serial", pool=pool)`` keeps the
        serial reference path as the default while the pool stays
        available to per-call overrides); per-call ``backend=``/
        ``workers=`` overrides *reconfigure the pool* (its next batch
        respawns with the new shape), and ``backend="serial"`` bypasses
        it.  The pool is shared, not owned: shut it down where it was
        created.
    config:
        Optional :class:`~repro.api.config.EngineConfig` supplying the
        defaults for everything above plus :meth:`map_batch`'s fault
        and sharding knobs.  Explicit constructor/call kwargs always
        win; with no config every historical default applies unchanged.
        A config naming ``store_dir`` (and no explicit *cache*) builds
        the service cache over that store, with ``cache_entries``/
        ``cache_bytes`` as its LRU bounds.
    """

    def __init__(
        self,
        cache: Optional[ArtifactCache] = None,
        *,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        pool=None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        from repro.api.executor import BACKENDS

        config = (config or EngineConfig()).merged(backend=backend, workers=workers)
        backend = config.backend
        if backend is None:
            backend = pool.backend if pool is not None else "serial"
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {BACKENDS}"
            )
        if cache is None:
            store = None
            if config.store_dir is not None:
                from repro.api.store import make_store

                store = make_store(
                    config.store_dir,
                    tier=config.store_tier,
                    remote=config.store_remote,
                )
            cache = ArtifactCache(
                max_entries=config.cache_entries,
                max_bytes=config.cache_bytes,
                store=store,
            )
        self.cache = cache
        self.backend = backend
        self.workers = config.workers
        self.pool = pool
        self.config = config

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def map(self, request: MapRequest) -> MapResponse:
        """Run a single-algorithm request; returns one response."""
        if len(request.algorithms) != 1:
            raise ValueError(
                f"map() takes exactly one algorithm, got {request.algorithms}; "
                "use map_batch() for several"
            )
        return self._run_one(request, request.algorithms[0])

    def map_batch(
        self,
        requests: Union[MapRequest, Iterable[MapRequest]],
        *,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        store_dir: Optional[str] = None,
        pool=None,
        retry=None,
        node_timeout: Optional[float] = None,
        on_error: Optional[str] = None,
        store_tier: Optional[str] = None,
        store_remote: Optional[str] = None,
        hosts: Optional[Iterable[str]] = None,
        steal_threshold: Optional[int] = None,
        config: Optional[EngineConfig] = None,
    ) -> List[MapResponse]:
        """Run one or many requests, all algorithms, sharing the cache.

        Accepts a single (possibly multi-algorithm) request or an
        iterable of requests; responses come back in request order,
        algorithms in each request's declared order.  The batch is
        planned into an artifact-dependency DAG
        (:func:`repro.api.plan.build_plan`) — each workload's grouping
        is computed exactly once across its algorithms and across
        requests hitting the same workload/machine/seed — and executed
        on *backend* (:func:`repro.api.executor.execute_plan`):
        ``"serial"`` preserves the legacy loop bit for bit, ``"thread"``
        and ``"process"`` fan ready nodes out over *workers* while
        producing byte-identical mappings.  ``store_dir`` points the
        process backend at a persistent cross-process artifact
        directory (default: the cache's attached store, else a
        temporary one).

        With a *pool* (argument or service-attached
        :class:`~repro.api.pool.ExecutorPool`), the batch runs on the
        pool's long-lived workers: explicit ``backend=``/``workers=``
        overrides reconfigure the pool, ``store_dir`` is ignored (the
        pool owns its store), and ``backend="serial"`` falls back to
        the in-line reference path.

        Fault tolerance is opt-in and passed straight to the engine:
        *retry* (a :class:`~repro.api.fault.RetryPolicy`) retries nodes
        that raise with exponential backoff, *node_timeout* bounds each
        node's wall time on the parallel backends, and
        ``on_error="partial"`` turns permanent failures into structured
        :attr:`MapResponse.error` outcomes instead of aborting the
        batch — the unaffected requests still return real mappings.
        The defaults reproduce the pre-fault-tolerance behaviour (and
        byte-identical results) exactly.

        *hosts* (or a service/call :class:`~repro.api.config.
        EngineConfig` naming them) runs the batch on the distributed
        coordinator instead: the plan shards across the ``repro-map
        shard-serve`` processes at those addresses, with the batch
        payload replicated through *store_remote* (a ``repro-map
        store-serve`` address).  Every per-call kwarg overrides the
        config; omitted ones fall back to it, then to the historical
        defaults.
        """
        from repro.api.executor import execute_plan

        plan = build_plan(requests)
        cfg = (config if config is not None else self.config).merged(
            backend=backend,
            workers=workers,
            store_dir=store_dir,
            retry=retry,
            node_timeout=node_timeout,
            on_error=on_error,
            store_tier=store_tier,
            store_remote=store_remote,
            hosts=tuple(hosts) if hosts else None,
            steal_threshold=steal_threshold,
        )
        fault_kw = {
            "retry": cfg.retry,
            "node_timeout": cfg.node_timeout,
            "on_error": cfg.on_error,
        }
        if cfg.hosts:
            return execute_plan(
                plan,
                self,
                hosts=cfg.hosts,
                store_remote=cfg.store_remote,
                store_dir=cfg.store_dir,
                store_tier=cfg.store_tier,
                steal_threshold=cfg.steal_threshold,
                **fault_kw,
            )
        pool = pool if pool is not None else self.pool
        # self.backend already defaulted to the pool's backend at
        # construction, so an explicit constructor backend= (e.g. the
        # serial reference path next to an attached pool) stays honored.
        resolved = cfg.backend if cfg.backend is not None else self.backend
        if pool is not None and resolved != "serial":
            pool.configure(
                backend=resolved,
                workers=cfg.workers if cfg.workers is not None else self.workers,
            )
            return execute_plan(plan, self, pool=pool, **fault_kw)
        return execute_plan(
            plan,
            self,
            backend=resolved,
            workers=cfg.workers if cfg.workers is not None else self.workers,
            store_dir=cfg.store_dir,
            store_tier=cfg.store_tier,
            **fault_kw,
        )

    def grouping(
        self,
        task_graph: TaskGraph,
        machine: Machine,
        *,
        seed: int = 0,
        config: Optional[partition_driver.EngineConfig] = None,
    ) -> Tuple[np.ndarray, TaskGraph]:
        """Shared grouping (phase-1 partition of ranks into nodes), cached.

        The same entry serves every subsequent request whose
        ``grouping_seed`` (and workload/machine content) matches, so the
        harness can pre-warm groupings and ``map_batch`` will reuse them.
        """
        key = self._grouping_key(
            task_graph_key(task_graph), machine_key(machine), seed, config
        )
        return self.cache.get_or_compute(
            "grouping",
            key,
            lambda: self._compute_grouping(task_graph, machine, seed, config),
        )

    def hop_table(self, machine: Machine):
        """Hop-distance table for *machine*'s torus, cached as an artifact.

        Delegates to :func:`repro.kernels.hop_table_for` (which also
        memoizes per torus instance); the artifact entry makes the table
        shareable across requests whose machines are merely *equal* in
        content, not identical objects.
        """
        from repro.kernels import hop_table_for

        return self.cache.get_or_compute(
            "hop_table", machine_key(machine), lambda: hop_table_for(machine.torus)
        )

    def warm_grouping(self, request: MapRequest) -> Tuple[float, bool]:
        """Materialize *request*'s shared grouping; ``(elapsed, computed)``.

        The executors run this for the plan's grouping nodes.
        ``computed`` is True only when the artifact was actually built
        here — False on a memory or disk-store hit — which is what
        decides whether the first consumer gets billed ``prep_time``.
        """
        tg_key, m_key = request.content_keys()
        key = grouping_artifact_key(
            tg_key, m_key, request.effective_grouping_seed, request.group_config
        )
        ran: List[bool] = []

        def compute():
            ran.append(True)
            return self._compute_grouping(
                request.task_graph,
                request.machine,
                request.effective_grouping_seed,
                request.group_config,
            )

        t0 = time.perf_counter()
        self.cache.get_or_compute("grouping", key, compute)
        return time.perf_counter() - t0, bool(ran)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _compute_grouping(task_graph, machine, seed, config):
        from repro.mapping.pipeline import prepare_groups

        return prepare_groups(task_graph, machine, seed=seed, config=config)

    # The single authority on grouping cache-key shape lives in
    # repro.api.plan.grouping_artifact_key — pre-warmed entries
    # (``grouping()``), plan nodes and stage execution (``_execute``)
    # all key through it.
    _grouping_key = staticmethod(grouping_artifact_key)

    def _baseline_def(self, request: MapRequest, *, need_metrics: bool) -> dict:
        """DEF's cached baseline: ``{"result", "stage_times", "metrics"}``.

        DEF is deterministic in (task graph, machine) — it ignores seeds
        and Δ — so one entry serves both direct DEF requests and TMAP's
        fallback comparison.  The rank-level metrics cost O(edges) to
        evaluate and are filled in lazily, only when a caller
        (``evaluate=True`` or the fallback rule) actually needs them.
        """
        key = request.content_keys()

        def compute():
            stage_times: dict = {}
            result, _ = self._execute(request, get_spec("DEF"), stage_times)
            return {"result": result, "stage_times": stage_times, "metrics": None}

        entry = self.cache.get_or_compute("def_baseline", key, compute)
        if need_metrics and entry["metrics"] is None:
            entry["metrics"] = evaluate_mapping(
                request.task_graph,
                request.machine,
                entry["result"].fine_gamma,
                cache=self.cache,
            )
            # Re-put so a bounded cache re-estimates the entry's bytes
            # (the in-place mutation above is invisible to it).
            self.cache.put("def_baseline", key, entry)
        return entry

    def _run_one(self, request: MapRequest, algo: str) -> MapResponse:
        spec = get_spec(algo)
        if spec.name == "DEF":
            # Run (and time) DEF freshly on every request, like the
            # legacy pipeline — replaying a cached map_time would skew
            # DEF-normalized time ratios on a warm cache.  The run still
            # seeds the baseline entry so TMAP's fallback reuses it.
            stage_times: dict = {}
            result, _ = self._execute(request, spec, stage_times)
            metrics = None
            if request.evaluate:
                metrics = evaluate_mapping(
                    request.task_graph,
                    request.machine,
                    result.fine_gamma,
                    cache=self.cache,
                )
            self.cache.put(
                "def_baseline",
                request.content_keys(),
                {"result": result, "stage_times": stage_times, "metrics": metrics},
            )
            return MapResponse(
                algorithm=spec.name,
                result=result,
                stage_times=dict(stage_times),
                metrics=metrics,
                grouping_cached=False,
                tag=request.tag,
            )
        stage_times = {}
        result, grouping_cached = self._execute(request, spec, stage_times)
        metrics = None
        if request.evaluate:
            metrics = evaluate_mapping(
                request.task_graph,
                request.machine,
                result.fine_gamma,
                cache=self.cache,
            )
        return MapResponse(
            algorithm=spec.name,
            result=result,
            stage_times=stage_times,
            metrics=metrics,
            grouping_cached=grouping_cached,
            tag=request.tag,
        )

    def _execute(
        self, request: MapRequest, spec: MapperSpec, stage_times: dict
    ) -> Tuple[MapperResult, bool]:
        ctx = StageContext(
            task_graph=request.task_graph,
            machine=request.machine,
            seed=request.seed,
            delta=request.delta,
            cache=self.cache,
            group_config=request.group_config,
        )

        # -- shared grouping (prep-timed, cacheable) -------------------
        prep_time = 0.0
        grouping_cached = False
        if not spec.group_in_map_time:
            t0 = time.perf_counter()
            if request.groups is not None:
                ctx.group_of_task, ctx.coarse = request.groups
                grouping_cached = True
            else:
                tg_key, m_key = request.content_keys()
                key = grouping_artifact_key(
                    tg_key,
                    m_key,
                    request.effective_grouping_seed,
                    request.group_config,
                )
                ran: List[bool] = []

                def compute():
                    ran.append(True)
                    return self._compute_grouping(
                        request.task_graph,
                        request.machine,
                        request.effective_grouping_seed,
                        request.group_config,
                    )

                ctx.group_of_task, ctx.coarse = self.cache.get_or_compute(
                    "grouping", key, compute
                )
                # A disk-store read counts as cached: nothing was
                # recomputed, so Figure 3's prep accounting bills 0.
                grouping_cached = not ran
                if not grouping_cached:
                    prep_time = time.perf_counter() - t0
            stage_times["grouping"] = time.perf_counter() - t0

        # -- the algorithm itself (map-timed) --------------------------
        t_map = time.perf_counter()
        if spec.group_in_map_time:
            # TMAP re-partitions the task graph itself; DEF's blocking is
            # part of its (trivial) mapping cost.  Never shared or cached.
            t0 = time.perf_counter()
            GROUPING_STAGES[spec.grouping](ctx)
            stage_times[f"grouping:{spec.grouping}"] = time.perf_counter() - t0

        ctx.view = ctx.coarse if spec.coarse_view == "volume" else self._unit_view(ctx)

        t0 = time.perf_counter()
        mapping = PLACEMENT_STAGES[spec.placement](ctx)
        if not isinstance(mapping, Mapping):
            mapping = Mapping(np.asarray(mapping, dtype=np.int64), ctx.machine)
        stage_times[f"placement:{spec.placement}"] = time.perf_counter() - t0

        for name in spec.refine:
            t0 = time.perf_counter()
            mapping = REFINE_STAGES[name](ctx, mapping)
            stage_times[f"refine:{name}"] = time.perf_counter() - t0

        # TMAP's reported time covers its own partitioning + placement
        # but not the DEF comparison, matching the paper's accounting.
        map_time_pre_fallback = time.perf_counter() - t_map

        fine = expand_mapping(ctx.group_of_task, mapping.gamma)
        for name in spec.fine_refine:
            t0 = time.perf_counter()
            fine = FINE_REFINE_STAGES[name](ctx, fine)
            stage_times[f"fine:{name}"] = time.perf_counter() - t0
        map_time = time.perf_counter() - t_map

        if spec.fallback == "def_mc":
            entry = self._baseline_def(request, need_metrics=True)
            def_result, def_metrics = entry["result"], entry["metrics"]
            ours = evaluate_mapping(
                request.task_graph, request.machine, fine, cache=self.cache
            )
            if ours.mc >= def_metrics.mc:
                # "If TMAP's MC value is not smaller than the DEF mapping,
                # it returns the DEF mapping" — compared at rank level.
                return (
                    MapperResult(
                        name=spec.name,
                        fine_gamma=def_result.fine_gamma,
                        group_of_task=def_result.group_of_task,
                        coarse=def_result.coarse,
                        coarse_gamma=def_result.coarse_gamma,
                        map_time=map_time_pre_fallback,
                        prep_time=prep_time,
                    ),
                    grouping_cached,
                )
            map_time = map_time_pre_fallback

        return (
            MapperResult(
                name=spec.name,
                fine_gamma=fine,
                group_of_task=ctx.group_of_task,
                coarse=ctx.coarse,
                coarse_gamma=mapping.gamma,
                map_time=map_time,
                prep_time=prep_time,
            ),
            grouping_cached,
        )

    def _unit_view(self, ctx: StageContext) -> TaskGraph:
        """Unit-cost view of the coarse graph (UTH), cached per coarse."""
        key = task_graph_key(ctx.coarse)
        return self.cache.get_or_compute(
            "unit_coarse", key, lambda: ctx.coarse.unit_cost()
        )
