"""Shared-memory artifact tier — the zero-copy half of the data plane.

:class:`SharedMemoryStore` publishes artifacts into named POSIX
shared-memory segments (``multiprocessing.shared_memory``): one segment
per artifact, holding a small JSON header plus the raw bytes of every
ndarray in the value — no serialization of array payloads, no disk.
Readers (pool workers, the serving parent, a sibling process) attach
the segment and reconstruct the value with ``np.frombuffer`` views, so
a grouping or RouteTable computed by one worker is *mapped*, not
copied, by every other process on the host.  Non-array leaves ride
along as a pickle-protocol-5 stream whose out-of-band buffers are
themselves raw segment regions (see ``repro.api.store``'s codec, which
this module shares), so even a ``TaskGraph`` inside a batch payload
reattaches as views.

Addressing is content-derived, mirroring the disk store: the segment
name is ``rpr`` + an 8-hex *store token* (hash of the disk root, so
independent stores never collide) + 16 hex of the namespace/key hash —
the name itself is the registry, and the full ``repr`` of the key is
verified in the header on attach, so a hash collision reads as a miss.
A publish writes the payload first and stamps an 8-byte magic last;
readers treat an unstamped segment as missing, so a worker killed
mid-publish can never serve a torn artifact (the analogue of the disk
store's temp-file + rename).

Lifetime
--------
* **Refcounted unlink-on-last-close**: every array view handed out
  holds a reference (via ``weakref.finalize``) on its segment
  attachment; :meth:`SharedMemoryStore.delete` unlinks the name
  immediately (new attaches miss) but the local mapping closes only
  when the last view dies, so readers never observe a vanishing
  buffer.
* **Owner reap**: the store that *owns* a root (the pool parent, the
  CLI service) unlinks every token-prefixed segment at :meth:`close`
  — including segments published by since-dead workers — so a clean
  shutdown leaks nothing.  Worker-side stores are non-owners and only
  detach.
* **Crash-orphan sweeping**: :meth:`sweep_orphans` (run on every store
  open, same contract as the disk store's ``.tmp`` reaping) unlinks
  *uncommitted* token-prefixed segments older than ``min_age_s`` —
  the droppings of a worker killed inside a publish.  Committed
  segments are live artifacts and are left to the owner's close.

Segments created or attached here are explicitly unregistered from
Python's ``multiprocessing.resource_tracker``: the tracker would
otherwise unlink a shared segment when *any* attaching process exits
(and warn about it), which is exactly wrong for a cross-process cache.
Cleanup is this module's job, not the tracker's.

:class:`TieredArtifactStore` composes the tiers — reads go shm → disk
(promoting disk hits into shm), writes go to both (disk stays the
durable layer) except the ``batch`` namespace, whose payloads are
ephemeral by construction and live in shared memory only.  It is
duck-compatible with :class:`~repro.api.store.DiskArtifactStore`, so
:class:`~repro.api.cache.ArtifactCache` layers over it unchanged and
the full read path becomes memory LRU → shm → disk.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import struct
import threading
import time
import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, Hashable, List, Optional, Set

import numpy as np

from repro.api.store import (
    DEFAULT_PERSIST_NAMESPACES,
    STORE_TIERS,
    ArtifactStore,
    DiskArtifactStore,
    _decode,
    _encode,
    make_store,
)

__all__ = [
    "SharedMemoryStore",
    "TieredArtifactStore",
    "make_store",
    "shm_available",
    "STORE_TIERS",
]

_MAGIC = b"RPRSHM1\0"
_PREFIX = "rpr"
_ALIGN = 64
_SHM_DIR = "/dev/shm"

_MISSING = object()

_available: Optional[bool] = None
_available_lock = threading.Lock()


def shm_available() -> bool:
    """Whether the shared-memory tier can run here (probed once).

    Requires working ``multiprocessing.shared_memory`` *and* a listable
    ``/dev/shm`` (sweeping and owner reap enumerate segments there), so
    the tier auto-disables on platforms without it — macOS names
    segments but exposes no listing — and in containers that mount no
    shm filesystem.
    """
    global _available
    with _available_lock:
        if _available is None:
            _available = _probe()
        return _available


def _probe() -> bool:
    if not os.path.isdir(_SHM_DIR):
        return False
    try:
        seg = shared_memory.SharedMemory(create=True, size=16)
        try:
            seg.buf[0] = 1
        finally:
            seg.close()
            seg.unlink()  # unlink also unregisters from the tracker
        return True
    except Exception:
        return False


def _untrack(seg: shared_memory.SharedMemory) -> None:
    """Remove *seg* from the resource tracker (cleanup is ours)."""
    try:
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass


def _store_token(root: str) -> str:
    return hashlib.sha256(os.path.abspath(root).encode()).hexdigest()[:8]


class _Attachment:
    """One mapped segment + the refcount of live views into it."""

    __slots__ = ("segment", "refs", "retired")

    def __init__(self, segment: shared_memory.SharedMemory) -> None:
        self.segment = segment
        self.refs = 0
        self.retired = False


def _release_view(store_ref, name: str, att: "_Attachment") -> None:
    """``weakref.finalize`` callback: one view into *name* died.

    Holding *att* (not just its name) keeps the mapping alive as long
    as any view does, even if the store itself was collected first —
    in that case the last view closes the segment directly.
    """
    store = store_ref()
    if store is not None:
        store._drop_ref(name)
        return
    att.refs -= 1
    if att.refs <= 0:
        try:
            att.segment.close()
        except BufferError:  # pragma: no cover - a view resurrected
            pass


class SharedMemoryStore(ArtifactStore):
    """Named-segment artifact store scoped to one disk root's token.

    Parameters
    ----------
    root:
        The sibling disk store's root directory; only its hash enters
        segment names, nothing is written there.
    namespaces:
        Namespaces an attached cache persists (same contract as the
        disk store; direct ``save``/``load`` calls are unrestricted).
    owner:
        Whether :meth:`close` reaps every token-prefixed segment
        (pool parents and CLI services own their root; pool *workers*
        must not unlink segments their siblings still read).
    """

    tier = "shm"

    def __init__(
        self,
        root: str,
        *,
        namespaces: frozenset = DEFAULT_PERSIST_NAMESPACES,
        owner: bool = False,
    ) -> None:
        self.root = os.path.abspath(root)
        self.namespaces = frozenset(namespaces)
        self.owner = owner
        self.token = _store_token(root)
        self._lock = threading.RLock()
        self._attached: Dict[str, _Attachment] = {}
        self._published: Set[str] = set()
        self._closed = False
        self._publishes = 0
        self._publish_skips = 0
        self._publish_bytes = 0
        self._attaches = 0
        self._loads = 0
        self._load_hits = 0
        self._swept = 0
        self.sweep_orphans()
        if owner:
            atexit.register(self.close)

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    def segment_name(self, namespace: str, key: Hashable) -> str:
        digest = hashlib.sha256(repr((namespace, key)).encode()).hexdigest()[:16]
        return f"{_PREFIX}{self.token}{digest}"

    def _token_segments(self) -> List[str]:
        prefix = _PREFIX + self.token
        try:
            return [n for n in os.listdir(_SHM_DIR) if n.startswith(prefix)]
        except OSError:
            return []

    # ------------------------------------------------------------------
    # save / load
    # ------------------------------------------------------------------
    def save(
        self, namespace: str, key: Hashable, value: Any, *, force: bool = False
    ) -> bool:
        """Publish *value* as one committed segment; False on failure.

        Failure (an unpicklable leaf, shm exhaustion, a racing
        publisher) is never an error — the caller's disk tier is the
        durable fallback.  A segment already committed under this name
        is content-addressed and therefore already holds these bytes;
        the publish is skipped (counted as ``save_skips``) unless
        ``force=True``, which unlinks and republishes — a direct
        ``ArtifactCache.put`` may legitimately revise an entry.
        """
        if self._closed:
            return False
        name = self.segment_name(namespace, key)
        try:
            if force:
                self.delete(namespace, key)
            return self._publish(name, namespace, key, value, retried=False)
        except Exception:
            return False

    def _publish(
        self, name: str, namespace: str, key: Hashable, value: Any, retried: bool
    ) -> bool:
        arrays: Dict[str, np.ndarray] = {}
        spec = _encode(value, arrays)
        header = {
            "version": 1,
            "key_repr": repr(key),
            "namespace": namespace,
            "value": spec,
            "arrays": {},
        }
        offset = 0
        metas = {}
        for aid, arr in arrays.items():
            order = (
                "F"
                if arr.flags.f_contiguous and not arr.flags.c_contiguous
                else "C"
            )
            metas[aid] = {
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "order": order,
                "offset": offset,
                "nbytes": int(arr.nbytes),
            }
            offset += -(-int(arr.nbytes) // _ALIGN) * _ALIGN
        header["arrays"] = metas
        payload = json.dumps(header).encode("utf-8")
        data_start = -(-(24 + len(payload)) // _ALIGN) * _ALIGN
        total = max(data_start + offset, 1)
        try:
            seg = shared_memory.SharedMemory(create=True, size=total, name=name)
        except FileExistsError:
            return self._handle_existing(name, namespace, key, value, retried)
        try:
            buf = seg.buf
            buf[8:16] = struct.pack("<Q", len(payload))
            buf[16:24] = struct.pack("<Q", data_start)
            buf[24 : 24 + len(payload)] = payload
            for aid, arr in arrays.items():
                meta = metas[aid]
                if meta["nbytes"] == 0:
                    continue
                dst = np.ndarray(
                    arr.shape,
                    dtype=arr.dtype,
                    buffer=buf,
                    offset=data_start + meta["offset"],
                    order=meta["order"],
                )
                np.copyto(dst, arr, casting="no")
                del dst
            buf[0:8] = _MAGIC  # commit: readers only trust stamped segments
        except BaseException:
            seg.close()
            try:
                seg.unlink()  # unlink also unregisters from the tracker
            except OSError:
                pass
            raise
        _untrack(seg)  # committed: cleanup is the store's job now
        seg.close()
        with self._lock:
            self._published.add(name)
            self._publishes += 1
            self._publish_bytes += total
        return True

    def _handle_existing(
        self, name: str, namespace: str, key: Hashable, value: Any, retried: bool
    ) -> bool:
        """A segment by this name exists: committed means published
        (content-addressed ⇒ identical bytes); an uncommitted corpse
        from a crashed publisher is unlinked and the publish retried
        once."""
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            if retried:
                return False
            return self._publish(name, namespace, key, value, retried=True)
        _untrack(seg)
        committed = bytes(seg.buf[0:8]) == _MAGIC
        seg.close()
        if committed:
            with self._lock:
                self._published.add(name)
                # Same naming as the disk tier: a duplicate publish of a
                # content-addressed key is a skip, not a failure.
                self._publish_skips += 1
            return True
        if retried:
            return False  # a live concurrent publisher owns it; yield
        try:
            self._unlink_name(name)
        except OSError:
            pass
        return self._publish(name, namespace, key, value, retried=True)

    def load(self, namespace: str, key: Hashable, default: Any = None) -> Any:
        """Attach and reconstruct; *default* on miss or any surprise.

        Returned arrays are read-only ``np.frombuffer`` views into the
        segment; each view refcounts the attachment (see module docs).
        """
        with self._lock:
            self._loads += 1
        name = self.segment_name(namespace, key)
        try:
            att = self._attach(name)
            if att is None:
                return default
            buf = att.segment.buf
            if bytes(buf[0:8]) != _MAGIC:
                return default  # mid-publish: not committed yet
            (hlen,) = struct.unpack("<Q", buf[8:16])
            (data_start,) = struct.unpack("<Q", buf[16:24])
            header = json.loads(bytes(buf[24 : 24 + hlen]).decode("utf-8"))
            if header.get("version") != 1 or header.get("key_repr") != repr(key):
                return default  # name-hash collision: not our key
            archive = _SegmentArchive(self, name, att, header, data_start)
            value = _decode(header["value"], archive)
        except Exception:
            return default
        with self._lock:
            self._load_hits += 1
        return value

    def _attach(self, name: str) -> Optional[_Attachment]:
        with self._lock:
            att = self._attached.get(name)
            if att is not None and not att.retired:
                return att
        try:
            seg = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            return None
        _untrack(seg)
        with self._lock:
            current = self._attached.get(name)
            if current is not None and not current.retired:
                seg.close()  # raced another attacher; use theirs
                return current
            att = _Attachment(seg)
            self._attached[name] = att
            self._attaches += 1
            return att

    def _take_ref(self, name: str, att: _Attachment) -> None:
        with self._lock:
            att.refs += 1

    def _drop_ref(self, name: str) -> None:
        with self._lock:
            att = self._attached.get(name)
            if att is None:
                return
            att.refs -= 1
            if att.refs <= 0 and (att.retired or self._closed):
                self._close_attachment(name, att)

    def _close_attachment(self, name: str, att: _Attachment) -> None:
        try:
            att.segment.close()
        except BufferError:  # pragma: no cover - a view resurrected
            return
        self._attached.pop(name, None)

    # ------------------------------------------------------------------
    # contains / delete
    # ------------------------------------------------------------------
    def contains(self, namespace: str, key: Hashable) -> bool:
        """Whether a committed segment for this key exists right now."""
        name = self.segment_name(namespace, key)
        try:
            seg = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            return False
        _untrack(seg)
        committed = bytes(seg.buf[0:8]) == _MAGIC
        seg.close()
        return committed

    def delete(self, namespace: str, key: Hashable) -> bool:
        """Unlink one artifact's segment (refcounted local close).

        The *name* disappears immediately — new attaches miss — but
        this process's mapping survives until the last live view dies,
        and other processes' mappings until theirs do (POSIX keeps an
        unlinked segment alive for existing maps).
        """
        name = self.segment_name(namespace, key)
        removed = False
        try:
            self._unlink_name(name)
            removed = True
        except OSError:
            pass
        with self._lock:
            self._published.discard(name)
            att = self._attached.get(name)
            if att is not None:
                att.retired = True
                if att.refs <= 0:
                    self._close_attachment(name, att)
        return removed

    def _unlink_name(self, name: str) -> None:
        os.unlink(os.path.join(_SHM_DIR, name))

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def sweep_orphans(self, *, min_age_s: float = 300.0) -> int:
        """Unlink *uncommitted* token segments older than *min_age_s*.

        Same contract as the disk store's ``.tmp`` reaping: an
        uncommitted segment is, by construction, never a live artifact
        — it is the leak of a publisher killed between create and
        commit — and the age gate keeps a store opening next to a live
        publisher from yanking its in-flight segment.  Committed
        segments are valid artifacts and are left for the owner's
        :meth:`close`.  Returns the number of segments removed.
        """
        removed = 0
        cutoff = time.time() - min_age_s
        for name in self._token_segments():
            with self._lock:
                if name in self._attached or name in self._published:
                    continue
            path = os.path.join(_SHM_DIR, name)
            try:
                if os.path.getmtime(path) > cutoff:
                    continue
                with open(path, "rb") as fh:
                    committed = fh.read(8) == _MAGIC
                if not committed:
                    os.unlink(path)
                    removed += 1
            except OSError:
                pass  # vanished under us: someone else swept it
        with self._lock:
            self._swept += removed
        return removed

    def clear(self, namespace: Optional[str] = None) -> int:
        """Unlink this token's segments; count removed.

        Namespace-selective clearing attaches each segment to read its
        header; ``None`` clears everything token-prefixed.
        """
        removed = 0
        for name in self._token_segments():
            if namespace is not None:
                ns = self._segment_namespace(name)
                if ns != namespace:
                    continue
            try:
                self._unlink_name(name)
                removed += 1
            except OSError:
                continue
            with self._lock:
                self._published.discard(name)
                att = self._attached.get(name)
                if att is not None:
                    att.retired = True
                    if att.refs <= 0:
                        self._close_attachment(name, att)
        return removed

    def _segment_namespace(self, name: str) -> Optional[str]:
        try:
            seg = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            return None
        _untrack(seg)
        try:
            if bytes(seg.buf[0:8]) != _MAGIC:
                return None
            (hlen,) = struct.unpack("<Q", seg.buf[8:16])
            header = json.loads(bytes(seg.buf[24 : 24 + hlen]).decode("utf-8"))
            return header.get("namespace")
        except Exception:
            return None
        finally:
            seg.close()

    def segment_count(self) -> int:
        """Live token-prefixed segments on the host (committed or not)."""
        return len(self._token_segments())

    def segment_bytes(self) -> int:
        """Total bytes of live token-prefixed segments."""
        total = 0
        for name in self._token_segments():
            try:
                total += os.path.getsize(os.path.join(_SHM_DIR, name))
            except OSError:
                pass
        return total

    def stats(self) -> dict:
        with self._lock:
            counters = {
                # Canonical cross-tier keys first (every ArtifactStore
                # reports saves/save_skips/loads/load_hits uniformly) …
                "saves": self._publishes,
                "save_skips": self._publish_skips,
                "loads": self._loads,
                "load_hits": self._load_hits,
                # … then the shm-specific detail (publishes aliases
                # saves for backward compatibility).
                "publishes": self._publishes,
                "publish_bytes": self._publish_bytes,
                "attaches": self._attaches,
                "orphans_swept": self._swept,
                "attached_segments": len(self._attached),
            }
        counters["segments"] = self.segment_count()
        counters["segment_bytes"] = self.segment_bytes()
        counters["token"] = self.token
        counters["owner"] = self.owner
        return counters

    def close(self) -> None:
        """Detach everything; an owner also unlinks its token segments.

        Idempotent.  Attachments with live views are marked retired and
        close when their last view dies; the *names* are gone at once,
        so nothing leaks even while a caller still holds arrays.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            attachments = list(self._attached.items())
        if self.owner:
            for name in self._token_segments():
                try:
                    self._unlink_name(name)
                except OSError:
                    pass
            atexit.unregister(self.close)
        with self._lock:
            for name, att in attachments:
                att.retired = True
                if att.refs <= 0:
                    self._close_attachment(name, att)
            self._published.clear()


class _SegmentArchive:
    """Archive facade over one committed segment for the store codec.

    ``archive[aid]`` materializes a read-only view into the segment and
    registers a finalizer so the attachment's refcount tracks live
    views.
    """

    def __init__(
        self,
        store: SharedMemoryStore,
        name: str,
        att: _Attachment,
        header: dict,
        data_start: int,
    ) -> None:
        self._store_ref = weakref.ref(store)
        self._store = store
        self._name = name
        self._att = att
        self._metas = header["arrays"]
        self._data_start = data_start

    def __getitem__(self, aid: str) -> np.ndarray:
        meta = self._metas[aid]
        arr = np.ndarray(
            tuple(meta["shape"]),
            dtype=np.dtype(meta["dtype"]),
            buffer=self._att.segment.buf,
            offset=self._data_start + meta["offset"],
            order=meta["order"],
        )
        arr.flags.writeable = False
        self._store._take_ref(self._name, self._att)
        weakref.finalize(arr, _release_view, self._store_ref, self._name, self._att)
        return arr


class TieredArtifactStore(ArtifactStore):
    """shm-over-disk(-over-remote) composition behind one store surface.

    Reads: shm → disk → remote (a lower-tier hit is promoted into shm
    so the *next* reader on the host maps it).  Writes: shm best-effort
    + disk durable + remote replicated — except the ``batch``
    namespace, whose payloads exist only for the duration of one
    in-flight batch and therefore skip disk entirely when shm is live
    (the zero-disk hot path the process backend's warm batches ride);
    batch payloads *do* replicate to an attached remote, which is how a
    sharding coordinator hands request payloads to its hosts.

    The remote tier (a :class:`~repro.dist.remote.RemoteArtifactStore`
    speaking to a ``repro-map store-serve`` process) is strictly
    best-effort at runtime: an unreachable remote reads as a miss and
    drops writes, never raises — local tiers keep the host correct.
    """

    #: Namespaces that never touch disk while the shm tier is live.
    EPHEMERAL_NAMESPACES = frozenset({"batch"})

    def __init__(
        self,
        root: str,
        *,
        namespaces: frozenset = DEFAULT_PERSIST_NAMESPACES,
        owner: bool = True,
        mmap_reads: Optional[bool] = None,
        use_shm: bool = True,
        remote=None,
    ) -> None:
        if use_shm and not shm_available():
            raise RuntimeError(
                "the shm store tier needs working POSIX shared memory and "
                "a listable /dev/shm; use tier='auto' to fall back to disk"
            )
        self.disk = DiskArtifactStore(
            root, namespaces=namespaces, mmap_reads=mmap_reads
        )
        self.shm = (
            SharedMemoryStore(root, namespaces=namespaces, owner=owner)
            if use_shm
            else None
        )
        if isinstance(remote, str):
            from repro.dist.remote import RemoteArtifactStore  # lazy

            remote = RemoteArtifactStore(remote, namespaces=namespaces)
        self.remote = remote
        self.tier = "shm" if use_shm else "disk"

    # -- identity ------------------------------------------------------
    @property
    def root(self) -> str:
        return self.disk.root

    @property
    def namespaces(self) -> frozenset:
        return self.disk.namespaces

    def path_for(self, namespace: str, key: Hashable) -> str:
        return self.disk.path_for(namespace, key)

    # -- save / load ---------------------------------------------------
    def save(
        self, namespace: str, key: Hashable, value: Any, *, force: bool = False
    ) -> str:
        published = (
            self.shm.save(namespace, key, value, force=force)
            if self.shm is not None
            else False
        )
        if self.remote is not None:
            # Replicate so sibling hosts can read it; the remote client
            # degrades to a no-op when the server is unreachable.
            self.remote.save(namespace, key, value, force=force)
        if published and namespace in self.EPHEMERAL_NAMESPACES:
            return self.path_for(namespace, key)  # shm-only by design
        return self.disk.save(namespace, key, value, force=force)

    def load(self, namespace: str, key: Hashable, default: Any = None) -> Any:
        if self.shm is not None:
            value = self.shm.load(namespace, key, default=_MISSING)
            if value is not _MISSING:
                return value
        value = self.disk.load(namespace, key, default=_MISSING)
        if value is not _MISSING:
            if self.shm is not None and namespace not in self.EPHEMERAL_NAMESPACES:
                self.shm.save(namespace, key, value)  # promote for the host
            return value
        if self.remote is not None:
            value = self.remote.load(namespace, key, default=_MISSING)
            if value is not _MISSING:
                # Remote reads promote into shm (memory-speed for the
                # whole host) — or onto disk when shm is off, so the
                # next reader skips the network round trip.
                if self.shm is not None:
                    self.shm.save(namespace, key, value)
                elif namespace not in self.EPHEMERAL_NAMESPACES:
                    self.disk.save(namespace, key, value)
                return value
        return default

    def contains(self, namespace: str, key: Hashable) -> bool:
        if self.shm is not None and self.shm.contains(namespace, key):
            return True
        if self.disk.contains(namespace, key):
            return True
        return self.remote is not None and self.remote.contains(namespace, key)

    def delete(self, namespace: str, key: Hashable) -> bool:
        removed = self.shm.delete(namespace, key) if self.shm is not None else False
        if self.remote is not None:
            removed = self.remote.delete(namespace, key) or removed
        return self.disk.delete(namespace, key) or removed

    # -- maintenance ---------------------------------------------------
    def sweep_orphans(self, *, min_age_s: float = 300.0) -> int:
        # The remote store is deliberately *not* swept here: its root
        # belongs to the server process (and to every other host), so
        # crash hygiene there is the server's job.
        removed = self.disk.sweep_orphans(min_age_s=min_age_s)
        if self.shm is not None:
            removed += self.shm.sweep_orphans(min_age_s=min_age_s)
        return removed

    def clear(self, namespace: Optional[str] = None) -> int:
        if self.shm is not None:
            self.shm.clear(namespace)
        return self.disk.clear(namespace)

    def file_count(self, namespace: Optional[str] = None) -> int:
        return self.disk.file_count(namespace)

    def stats(self) -> dict:
        disk = self.disk.stats()
        shm = self.shm.stats() if self.shm is not None else None
        remote = self.remote.stats() if self.remote is not None else None
        # Canonical cross-tier keys: every load consults the front tier
        # first and hits at most one tier, and every non-ephemeral save
        # runs through the durable disk tier (where duplicate detection
        # lives) — so these rollups count tiered-level operations, not
        # per-tier traffic sums.
        front = shm if shm is not None else disk
        stats = {
            "tier": self.tier,
            "saves": disk["saves"],
            "save_skips": disk["save_skips"],
            "loads": front["loads"],
            "load_hits": sum(
                tier["load_hits"] for tier in (shm, disk, remote) if tier
            ),
        }
        if shm is not None:
            stats["shm"] = shm
        stats["disk"] = disk
        if remote is not None:
            stats["remote"] = remote
        return stats

    def close(self) -> None:
        if self.shm is not None:
            self.shm.close()
        if self.remote is not None:
            self.remote.close()
