"""Public mapping API: registry-driven service, batch execution, caching.

This package is the composition seam over the paper's algorithms
(:mod:`repro.mapping`): every algorithm is a declarative
:class:`~repro.api.registry.MapperSpec` naming its stages (grouping →
placement → refine*), the :class:`~repro.api.service.MappingService`
executes :class:`~repro.api.request.MapRequest` objects against that
registry, and an :class:`~repro.api.cache.ArtifactCache` shares
groupings, DEF baselines and derived coarse graphs across algorithms
and requests (hop tables are memoized per torus in the kernel layer,
with a content-keyed handle via ``MappingService.hop_table``).

Quickstart::

    from repro.api import MapRequest, MappingService

    service = MappingService()
    responses = service.map_batch(
        MapRequest(task_graph=tg, machine=machine,
                   algorithms=("UG", "UWH", "UMC"), seed=0, evaluate=True)
    )
    for r in responses:
        print(r.algorithm, r.metrics.wh, r.map_time)

Third-party algorithms register through the public decorator::

    from repro.api import register_mapper

    @register_mapper("SNAKE", refine=("wh",))
    def snake_placement(ctx):
        ...
        return gamma

For serving (many batches through one process), keep the workers and
artifact store alive across calls::

    from repro.api import AsyncMappingService, ExecutorPool

    with ExecutorPool("process", workers=4, idle_timeout=30) as pool:
        service = MappingService(pool=pool)       # sync front end
        async with AsyncMappingService(pool=pool) as aio:  # or awaitable
            ...

Serving is fault tolerant: ``map_batch(..., retry=RetryPolicy(...),
node_timeout=..., on_error="partial")`` retries transient node
failures with backoff, bounds per-node wall time, and returns partial
batch results (failed requests carry a structured
:class:`~repro.api.fault.PlanError` on ``response.error``); a crashed
process pool self-heals (:meth:`ExecutorPool.respawn`), re-running
only the lost nodes and quarantining poison requests.  Degraded
machines (dead links/nodes) are first-class via
``Machine.degrade(...)`` with fault-avoiding rerouting in the
topology layer.

Also runnable as a CLI: ``python -m repro.api map --matrix cage15_like
--algos UWH,UMC --json`` (installed as the ``repro-map`` console
script); ``map-batch --follow`` serves a JSONL request stream.
"""

from repro.api.aio import AsyncMappingService
from repro.api.config import EngineConfig
from repro.api.cache import (
    ArtifactCache,
    CacheStats,
    fingerprint_arrays,
    machine_key,
    task_graph_key,
)
from repro.api.executor import BACKENDS, execute_plan
from repro.api.fault import FaultInjector, InjectedFault, PlanError, RetryPolicy
from repro.api.plan import Plan, PlanNode, build_plan
from repro.api.pool import POOL_BACKENDS, ExecutorPool
from repro.api.shm import (
    STORE_TIERS,
    SharedMemoryStore,
    TieredArtifactStore,
    make_store,
    shm_available,
)
from repro.api.store import ArtifactStore, DiskArtifactStore
from repro.api.registry import (
    MapperRegistrationError,
    MapperSpec,
    UnknownMapperError,
    get_spec,
    register_mapper,
    registered_mappers,
    unregister_mapper,
)
from repro.api.request import MapRequest, MapResponse
from repro.api.service import MappingService
from repro.api.stages import (
    FINE_REFINE_STAGES,
    GROUPING_STAGES,
    PLACEMENT_STAGES,
    REFINE_STAGES,
    StageContext,
    register_fine_refine_stage,
    register_grouping_stage,
    register_placement_stage,
    register_refine_stage,
)

__all__ = [
    "ArtifactCache",
    "ArtifactStore",
    "AsyncMappingService",
    "BACKENDS",
    "CacheStats",
    "DiskArtifactStore",
    "EngineConfig",
    "SharedMemoryStore",
    "TieredArtifactStore",
    "make_store",
    "shm_available",
    "STORE_TIERS",
    "ExecutorPool",
    "FaultInjector",
    "InjectedFault",
    "POOL_BACKENDS",
    "PlanError",
    "RetryPolicy",
    "Plan",
    "PlanNode",
    "build_plan",
    "execute_plan",
    "fingerprint_arrays",
    "machine_key",
    "task_graph_key",
    "MapperSpec",
    "MapperRegistrationError",
    "UnknownMapperError",
    "register_mapper",
    "unregister_mapper",
    "get_spec",
    "registered_mappers",
    "MapRequest",
    "MapResponse",
    "MappingService",
    "StageContext",
    "GROUPING_STAGES",
    "PLACEMENT_STAGES",
    "REFINE_STAGES",
    "FINE_REFINE_STAGES",
    "register_grouping_stage",
    "register_placement_stage",
    "register_refine_stage",
    "register_fine_refine_stage",
]
