"""Batch planner — the explicit artifact-dependency DAG behind ``map_batch``.

``MappingService.map_batch`` used to be a sequential loop whose sharing
was implicit: the first algorithm to ask for a grouping computed it, the
others hit the cache, and UMC/UMMC happened to route one placement once
because they ran back to back.  :func:`build_plan` makes that data-flow
explicit: it walks the batch once and emits a DAG of :class:`PlanNode`\\ s

* one **grouping node** per distinct grouping artifact key (workload ×
  machine × grouping seed × partitioner config) — every algorithm that
  declares ``"grouping"`` in its :attr:`~repro.api.registry.MapperSpec.
  consumes` depends on it, so the phase-1 partition is computed exactly
  once per batch on every backend;
* one **algo node** per (request, algorithm) pair, holding the response
  slot so results collect back in request order;
* **producer edges** for the remaining declared artifacts:
  ``def_baseline`` consumers (TMAP) depend on the batch's first
  producer (a DEF run, or the first TMAP for that workload), and
  ``route_table`` consumers (the congestion refiners) are *chained* per
  placement identity, generalizing the old "route one placement once"
  adjacency into an ordering guarantee that holds even when the batch
  executes in parallel.

Dependencies always point to earlier nodes, so node-index order is a
valid topological order — and it reproduces the legacy loop's execution
order exactly, which is what keeps ``backend="serial"`` bit-identical
to the sequential implementation.  The executors
(:mod:`repro.api.executor`) consume the plan; they never re-derive
scheduling information from specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple, Union

from repro.api.registry import get_spec
from repro.api.request import MapRequest

__all__ = ["PlanNode", "Plan", "build_plan", "grouping_artifact_key"]


def grouping_artifact_key(
    tg_key: int, m_key: int, seed: int, config
) -> Tuple:
    """The single authority on grouping cache-key shape.

    Pre-warmed entries (``MappingService.grouping``), batch plans
    (:func:`build_plan`) and stage execution (``MappingService._execute``)
    must agree on this shape or the compute-once guarantee silently
    degrades.
    """
    cfg = "default" if config is None else repr(config)
    return (tg_key, m_key, int(seed), cfg)


@dataclass
class PlanNode:
    """One schedulable unit: a shared-artifact build or an algorithm run.

    Attributes
    ----------
    index:
        Position in :attr:`Plan.nodes`; dependencies always point to
        smaller indices.
    kind:
        ``"grouping"`` (build one shared grouping artifact) or
        ``"algo"`` (run one algorithm of one request).
    request_index:
        The owning request's position in the batch.
    deps:
        Node indices that must complete first.
    algorithm:
        Registry name (algo nodes).
    slot:
        Position of this algo node's response in the collected output.
    artifact:
        ``(namespace, key)`` the node produces (grouping nodes).
    charges:
        Index of the algo node billed for this grouping node's compute
        time (grouping nodes; Figure 3's ``prep_time`` accounting says
        the first consumer pays, exactly like the sequential loop).
    """

    index: int
    kind: str
    request_index: int
    deps: Tuple[int, ...] = ()
    algorithm: Optional[str] = None
    slot: Optional[int] = None
    artifact: Optional[Tuple[str, Hashable]] = None
    charges: Optional[int] = None

    @property
    def label(self) -> str:
        if self.kind == "grouping":
            return f"grouping[req{self.request_index}]"
        return f"{self.algorithm}[req{self.request_index}]"


@dataclass
class Plan:
    """An executable batch: requests + DAG nodes in topological order.

    ``baseline_producers`` records, per workload fingerprint
    ``(tg_key, m_key)``, the algo node that produces the shared DEF
    baseline — the shard router pins these (and grouping nodes) to
    stay host-local with their consumers.
    """

    requests: Tuple[MapRequest, ...]
    nodes: List[PlanNode] = field(default_factory=list)
    baseline_producers: Dict[Tuple[int, int], int] = field(default_factory=dict)

    @property
    def num_slots(self) -> int:
        return sum(1 for n in self.nodes if n.kind == "algo")

    def workload_of(self, index: int) -> Tuple[int, int]:
        """Workload fingerprint ``(tg_key, m_key)`` of one node.

        This is the sharding unit: every node of one workload shares
        the fingerprint, so a router hashing it keeps a workload's
        grouping, DEF baseline, route chains and consumers together.
        """
        return self.requests[self.nodes[index].request_index].content_keys()

    def dependents(self) -> List[List[int]]:
        """Adjacency list: node index -> indices depending on it."""
        out: List[List[int]] = [[] for _ in self.nodes]
        for node in self.nodes:
            for dep in node.deps:
                out[dep].append(node.index)
        return out

    def validate(self) -> None:
        """Sanity-check the topological invariant (used by tests)."""
        for i, node in enumerate(self.nodes):
            if node.index != i:
                raise AssertionError("node indices out of sync")
            for dep in node.deps:
                if dep >= node.index:
                    raise AssertionError(
                        f"node {node.label} depends on later node {dep}"
                    )


def build_plan(
    requests: Union[MapRequest, Iterable[MapRequest]]
) -> Plan:
    """Plan a batch: dedupe shared artifacts into an explicit DAG.

    Accepts what ``map_batch`` accepts — a single (possibly
    multi-algorithm) request or an iterable of requests — and resolves
    every algorithm's declared artifact dependencies
    (:attr:`MapperSpec.consumes` / :attr:`MapperSpec.produces`) against
    the batch built so far.  Unknown algorithm names fail here, before
    any work runs.
    """
    if isinstance(requests, MapRequest):
        requests = (requests,)
    requests = tuple(requests)

    plan = Plan(requests=requests)
    nodes = plan.nodes
    #: grouping artifact key -> producing grouping node index
    grouping_producers: Dict[Tuple, int] = {}
    #: (tg_key, m_key) -> first def_baseline-producing algo node index
    #: (recorded on the plan for the shard router's pinning policy)
    baseline_producers = plan.baseline_producers
    #: placement-identity key -> last route_table-consuming algo node
    route_chain_tails: Dict[Tuple, int] = {}

    slot = 0
    for ri, request in enumerate(requests):
        tg_key, m_key = request.content_keys()
        for algo in request.algorithms:
            spec = get_spec(algo)
            deps: List[int] = []
            new_grouping: Optional[int] = None

            if "grouping" in spec.consumes and request.groups is None:
                gkey = grouping_artifact_key(
                    tg_key,
                    m_key,
                    request.effective_grouping_seed,
                    request.group_config,
                )
                gi = grouping_producers.get(gkey)
                if gi is None:
                    gi = len(nodes)
                    nodes.append(
                        PlanNode(
                            index=gi,
                            kind="grouping",
                            request_index=ri,
                            artifact=("grouping", gkey),
                        )
                    )
                    grouping_producers[gkey] = gi
                    new_grouping = gi
                deps.append(gi)

            if "def_baseline" in spec.consumes:
                bi = baseline_producers.get((tg_key, m_key))
                if bi is not None:
                    deps.append(bi)

            route_key: Optional[Tuple] = None
            if "route_table" in spec.consumes:
                # The initial route table depends on the placement the
                # first congestion stage sees: grouping, placement
                # stage, optimized view and any refines applied before
                # it (plus the request's seed/Δ, which those stages may
                # read).  Conservative keys only cost parallelism, never
                # correctness — chained nodes still run, just in order.
                prefix = []
                for name in spec.refine:
                    if name in spec.CONGESTION_REFINES:
                        break
                    prefix.append(name)
                route_key = (
                    tg_key,
                    m_key,
                    request.effective_grouping_seed,
                    request.seed,
                    request.delta,
                    spec.placement,
                    spec.coarse_view,
                    tuple(prefix),
                )
                tail = route_chain_tails.get(route_key)
                if tail is not None:
                    deps.append(tail)

            ni = len(nodes)
            nodes.append(
                PlanNode(
                    index=ni,
                    kind="algo",
                    request_index=ri,
                    deps=tuple(sorted(set(deps))),
                    algorithm=spec.name,
                    slot=slot,
                )
            )
            slot += 1
            if new_grouping is not None:
                nodes[new_grouping].charges = ni
            if (
                "def_baseline" in spec.produces
                and (tg_key, m_key) not in baseline_producers
            ):
                baseline_producers[(tg_key, m_key)] = ni
            if route_key is not None:
                route_chain_tails[route_key] = ni

    return plan
