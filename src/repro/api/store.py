"""DiskArtifactStore — content-addressed, ``.npz``-backed artifact store.

The cross-process layer of the artifact system (the ROADMAP's "cross-
process artifact store" open item): where :class:`~repro.api.cache.
ArtifactCache` is one process's in-memory LRU, this store persists
selected namespaces to disk so *other* processes — the ``process``
backend's pool workers, a later batch, a sibling service — can read an
artifact instead of recomputing it.  The cache layers over the store
transparently: a memory miss falls through to :meth:`load`, a computed
value is written through with :meth:`save` (see
``ArtifactCache(store=...)``).

Layout and format
-----------------
One file per artifact: ``<root>/<namespace>/<sha256(key)[:32]>.npz``.
Each file is a regular NumPy ``.npz`` archive holding

* the artifact's ndarrays as native entries (zero-copy friendly,
  CRC-checked by the zip container),
* a JSON *manifest* describing how to reassemble nested
  tuples/lists/dicts, :class:`~repro.topology.routing.RouteTable`
  instances and plain scalars,
* a pickle payload only for objects with no native encoding
  (``TaskGraph``, ``MapperResult``, metrics dataclasses, …).

The full key ``repr`` is stored in the manifest and verified on load,
so a (vanishingly unlikely) filename-hash collision reads as a miss
rather than silently returning the wrong artifact.

Durability contract
-------------------
Writes are atomic (temp file + ``os.replace``) so concurrent writers of
the same key — two pool workers racing on one artifact — each leave a
complete file behind and readers never observe a torn write.  *Reads
are corruption-tolerant*: a truncated, garbled or version-skewed file
is treated as a miss (and the caller recomputes and overwrites it), so
a crashed run can never poison the store.  Like any pickle-bearing
cache directory, the store trusts its filesystem location; do not point
it at a directory written by untrusted parties.
"""

from __future__ import annotations

import abc
import hashlib
import io
import json
import mmap
import os
import pickle
import struct
import tempfile
import threading
import time
import zipfile
from typing import Any, Dict, Hashable, List, Optional

import numpy as np

__all__ = [
    "ArtifactStore",
    "DiskArtifactStore",
    "DEFAULT_PERSIST_NAMESPACES",
    "STORE_TIERS",
    "artifact_digest",
    "encode_artifact_bytes",
    "decode_artifact_bytes",
    "make_store",
]

#: When this environment variable names an *existing* file, every
#: :meth:`DiskArtifactStore.load` raises instead of reading.  Tests arm
#: it to prove a warm shared-memory-tier batch touches no artifact file
#: (the flag-file indirection lets a test arm it after pool workers
#: have already inherited the environment).
READS_FORBIDDEN_ENV = "REPRO_STORE_READS_FORBIDDEN"

#: Namespaces worth sharing across processes by default: the expensive,
#: deterministic artifacts the planner dedupes (groupings, initial route
#: tables, DEF baselines and the derived coarse views).  Hop tables are
#: excluded — they are cheap to rebuild and memoized per torus already.
DEFAULT_PERSIST_NAMESPACES = frozenset(
    {"grouping", "route_table", "def_baseline", "message_coarse", "unit_coarse"}
)

_MISSING = object()
_SENTINEL_DEFAULT = object()

#: Tier names :func:`make_store` accepts.  ``auto`` resolves to ``shm``
#: where POSIX shared memory is available and ``disk`` elsewhere.
STORE_TIERS = ("auto", "shm", "disk")


def artifact_digest(namespace: str, key: Hashable) -> str:
    """Content address of ``(namespace, key)`` — the filename stem.

    Every store backend (disk, shm, remote) derives its storage name
    from this one digest, which is what lets a
    :class:`~repro.dist.remote.RemoteArtifactStore` server and a
    :class:`DiskArtifactStore` interoperate over the same directory.
    """
    return hashlib.sha256(repr((namespace, key)).encode()).hexdigest()[:32]


class ArtifactStore(abc.ABC):
    """The contract every artifact-store backend implements.

    An artifact store is a *content-addressed*, namespaced map from
    ``(namespace, key)`` to a deterministic artifact value.  Four
    backends implement it — :class:`DiskArtifactStore` (durable files),
    :class:`~repro.api.shm.SharedMemoryStore` (node-local zero-copy
    segments), :class:`~repro.api.shm.TieredArtifactStore` (the
    composition) and :class:`~repro.dist.remote.RemoteArtifactStore`
    (the same surface over a TCP object protocol) — and
    :func:`make_store` is the single construction path; engine, pool
    and serve code hold an ``ArtifactStore``, never a concrete class.

    Contract
    --------
    * **Namespaces** partition the key space ("grouping",
      "route_table", "def_baseline", "batch", …).  :attr:`namespaces`
      declares which of them an attached
      :class:`~repro.api.cache.ArtifactCache` reads *and* writes
      through; direct calls are never restricted by the set.  The
      ephemeral ``"batch"`` namespace may be served from volatile
      tiers only (see ``TieredArtifactStore.EPHEMERAL_NAMESPACES``).
    * **Determinism**: a key's value is a pure function of the key, so
      a save whose target already exists may be skipped (counted as
      ``save_skips`` in :meth:`stats`); ``force=True`` overwrites
      anyway.  The return value of :meth:`save` is backend-specific (a
      path, a bool, …) and only meaningful as truthiness.
    * **Corruption tolerance**: :meth:`load` returns *default* on any
      failure — missing entry, torn write, garbled bytes, version or
      key-hash mismatch — never an exception; the caller recomputes.
    * **Crash hygiene**: :meth:`sweep_orphans` reclaims artifacts a
      crashed writer left mid-publish, age-gated so live writers are
      never yanked.
    """

    #: Tier label reported through :meth:`stats` ("disk", "shm",
    #: "remote").
    tier: str = "unknown"
    #: Namespaces an attached cache persists through this store.
    namespaces: frozenset = DEFAULT_PERSIST_NAMESPACES

    @abc.abstractmethod
    def save(
        self, namespace: str, key: Hashable, value: Any, *, force: bool = False
    ):
        """Publish *value* under ``(namespace, key)``; atomic, skippable."""

    @abc.abstractmethod
    def load(self, namespace: str, key: Hashable, default: Any = None) -> Any:
        """Read an artifact back; *default* on miss or any corruption."""

    @abc.abstractmethod
    def contains(self, namespace: str, key: Hashable) -> bool:
        """Cheap existence probe (need not validate content)."""

    @abc.abstractmethod
    def delete(self, namespace: str, key: Hashable) -> bool:
        """Remove one artifact; True when something was removed."""

    @abc.abstractmethod
    def stats(self) -> dict:
        """Monitoring counters.  Every backend reports the canonical
        ``saves`` / ``save_skips`` / ``loads`` / ``load_hits`` keys
        plus a ``tier`` label (tier-specific extras are allowed)."""

    @abc.abstractmethod
    def sweep_orphans(self, *, min_age_s: float = 300.0) -> int:
        """Reap artifacts a crashed writer left mid-publish; returns
        the number removed.  Entries younger than *min_age_s* survive
        (a live writer may own them)."""

    # Optional surface with workable defaults ---------------------------
    def close(self) -> None:
        """Release backend resources (idempotent; no-op by default)."""

    def clear(self, namespace: Optional[str] = None) -> int:
        """Delete stored artifacts (one namespace's, or all)."""
        raise NotImplementedError

    def file_count(self, namespace: Optional[str] = None) -> int:
        """Number of stored artifacts (one namespace's, or all)."""
        raise NotImplementedError


class DiskArtifactStore(ArtifactStore):
    """Content-addressed artifact files under one root directory.

    Parameters
    ----------
    root:
        Directory holding the store (created if absent).  Multiple
        processes may share one root concurrently.
    namespaces:
        The namespaces an attached :class:`~repro.api.cache.ArtifactCache`
        should persist (read *and* write through).  Direct
        :meth:`save`/:meth:`load` calls are not restricted by this set.
    """

    #: Tier label reported through :meth:`stats` (the shared-memory
    #: layer's ``TieredArtifactStore`` reports ``"shm"``).
    tier = "disk"

    def __init__(
        self,
        root: str,
        *,
        namespaces: frozenset = DEFAULT_PERSIST_NAMESPACES,
        mmap_reads: Optional[bool] = None,
    ) -> None:
        self.root = os.path.abspath(root)
        self.namespaces = frozenset(namespaces)
        # Lazy mmap reads need stored (uncompressed) zip members and
        # POSIX unlink-while-mapped semantics; default on where both
        # hold, with a per-load fallback to the eager decoder.
        self.mmap_reads = (os.name == "posix") if mmap_reads is None else mmap_reads
        self._counter_lock = threading.Lock()
        self._loads = 0
        self._load_hits = 0
        self._bytes_read = 0
        self._saves = 0
        self._save_skips = 0
        os.makedirs(self.root, exist_ok=True)
        self.sweep_orphans()

    def sweep_orphans(self, *, min_age_s: float = 300.0) -> int:
        """Remove orphaned ``*.tmp`` files a crashed writer left behind.

        Runs on every store open: a worker killed mid-:meth:`save` (the
        window between ``mkstemp`` and ``os.replace``) leaks its private
        temp file, which nothing would ever reclaim.  Completed
        artifacts are untouched — the atomic rename means a ``.tmp``
        file is, by construction, never a live artifact.  Only files
        older than *min_age_s* are swept so a store being opened next
        to a *live* writer (two pool workers starting up) cannot yank a
        temp file mid-write.  Returns the number of files removed.
        """
        removed = 0
        cutoff = time.time() - min_age_s
        for directory in [self.root] + [
            os.path.join(self.root, ns) for ns in self._namespace_dirs()
        ]:
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(directory, name)
                try:
                    if os.path.getmtime(path) <= cutoff:
                        os.unlink(path)
                        removed += 1
                except OSError:
                    pass  # a concurrent opener already swept it
        return removed

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def path_for(self, namespace: str, key: Hashable) -> str:
        return os.path.join(
            self.root, namespace, f"{artifact_digest(namespace, key)}.npz"
        )

    # ------------------------------------------------------------------
    # save / load
    # ------------------------------------------------------------------
    def save(
        self, namespace: str, key: Hashable, value: Any, *, force: bool = False
    ) -> str:
        """Persist *value* atomically; returns the file path.

        Concurrent writers of the same key are safe: each writes a
        private temp file and ``os.replace``s it into place, so the file
        is always a complete archive (last writer wins — artifacts are
        deterministic in their key, so every writer stores equal bytes
        of content).

        Because of that determinism, a save whose target already exists
        with a matching manifest key is a no-op (racing pool workers
        otherwise rewrite identical files, temp churn included).  Pass
        ``force=True`` to overwrite anyway — ``ArtifactCache.put`` does,
        because direct puts may legitimately revise an entry (the DEF
        baseline's lazily filled metrics).
        """
        path = self.path_for(namespace, key)
        if not force and self._existing_matches(path, key):
            with self._counter_lock:
                self._save_skips += 1
            return path
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        arrays = _manifest_arrays(key, value)
        fd, tmp = tempfile.mkstemp(suffix=".npz.tmp", dir=directory)
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        with self._counter_lock:
            self._saves += 1
        return path

    def _existing_matches(self, path: str, key: Hashable) -> bool:
        """Whether *path* is a complete archive for *key* (cheap check:
        reads only the small manifest member, never the arrays)."""
        if not os.path.exists(path):
            return False
        try:
            with zipfile.ZipFile(path) as zf:
                with zf.open("__manifest__.npy") as member:
                    raw = _read_npy_bytes(member)
            manifest = json.loads(raw.decode("utf-8"))
            return manifest.get("version") == 1 and manifest.get(
                "key_repr"
            ) == repr(key)
        except Exception:
            return False  # torn/garbled target: rewrite it

    def load(self, namespace: str, key: Hashable, default: Any = None) -> Any:
        """Read an artifact back; *default* on miss **or any corruption**.

        Every failure mode — missing file, truncated zip, garbled JSON,
        stale format version, key-hash collision, broken pickle — is a
        miss, never an exception: the caller recomputes and overwrites.

        With :attr:`mmap_reads` (the default on POSIX) array payloads
        are returned as read-only views over a memory-mapped file —
        lazy, no eager copy — falling back to the eager ``np.load``
        decoder whenever the file predates the stored-member layout the
        mapper needs.
        """
        forbid = os.environ.get(READS_FORBIDDEN_ENV)
        if forbid and os.path.exists(forbid):
            # Deliberately outside the try: the whole point of the
            # canary is to surface, not mask, a forbidden disk read.
            raise RuntimeError(
                f"artifact disk read of {namespace!r} forbidden while "
                f"{READS_FORBIDDEN_ENV} flag file {forbid!r} exists"
            )
        path = self.path_for(namespace, key)
        with self._counter_lock:
            self._loads += 1
        value = _MISSING
        if self.mmap_reads:
            try:
                value = self._load_mmap(path, key, default)
            except Exception:
                value = _MISSING  # fall back to the eager decoder
        if value is _MISSING:
            try:
                with np.load(path, allow_pickle=False) as archive:
                    manifest = json.loads(
                        bytes(archive["__manifest__"]).decode("utf-8")
                    )
                    if manifest.get("version") != 1:
                        return default
                    if manifest.get("key_repr") != repr(key):
                        return default  # filename-hash collision: not our key
                    value = _decode(manifest["value"], archive)
            except Exception:
                return default
        if value is _SENTINEL_DEFAULT:
            return default
        with self._counter_lock:
            self._load_hits += 1
            try:
                self._bytes_read += os.path.getsize(path)
            except OSError:
                pass
        return value

    def _load_mmap(self, path: str, key: Hashable, default: Any) -> Any:
        """Lazy decode over one shared ``mmap`` of the archive.

        Returns ``_MISSING`` to request the eager fallback and the
        ``_SENTINEL_DEFAULT`` marker for a definitive miss (collision /
        version skew), so the caller distinguishes "try again eagerly"
        from "this file is not our artifact".
        """
        with open(path, "rb") as fh:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        archive = _MmapArchive(mapped)
        manifest = json.loads(bytes(archive["__manifest__"]).decode("utf-8"))
        if manifest.get("version") != 1:
            return _SENTINEL_DEFAULT
        if manifest.get("key_repr") != repr(key):
            return _SENTINEL_DEFAULT
        return _decode(manifest["value"], archive)

    def contains(self, namespace: str, key: Hashable) -> bool:
        """Cheap existence probe (does not validate the file's content)."""
        return os.path.exists(self.path_for(namespace, key))

    def delete(self, namespace: str, key: Hashable) -> bool:
        """Remove one artifact; True when a file was deleted.

        Used by :class:`~repro.api.pool.ExecutorPool` to retire a
        batch's request payload once every node has executed.
        """
        try:
            os.unlink(self.path_for(namespace, key))
            return True
        except OSError:
            return False

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def clear(self, namespace: Optional[str] = None) -> int:
        """Delete stored artifacts (one namespace's, or all); returns count.

        Also sweeps orphaned ``.npz.tmp`` files a crashed writer may
        have left behind (they do not count toward the return value).
        """
        removed = 0
        targets = [namespace] if namespace is not None else self._namespace_dirs()
        for ns in targets:
            directory = os.path.join(self.root, ns)
            if not os.path.isdir(directory):
                continue
            for name in os.listdir(directory):
                if name.endswith(".npz"):
                    os.unlink(os.path.join(directory, name))
                    removed += 1
                elif name.endswith(".npz.tmp"):
                    os.unlink(os.path.join(directory, name))
        return removed

    def file_count(self, namespace: Optional[str] = None) -> int:
        """Number of stored artifact files (one namespace's, or all)."""
        total = 0
        targets = [namespace] if namespace is not None else self._namespace_dirs()
        for ns in targets:
            directory = os.path.join(self.root, ns)
            if os.path.isdir(directory):
                total += sum(
                    1 for name in os.listdir(directory) if name.endswith(".npz")
                )
        return total

    def stats(self) -> dict:
        """I/O counters for monitoring (`loads` counts attempts, hits or
        not; ``bytes_read`` is file bytes behind successful loads —
        mapped lazily when :attr:`mmap_reads` is on)."""
        with self._counter_lock:
            return {
                "tier": self.tier,
                "loads": self._loads,
                "load_hits": self._load_hits,
                "bytes_read": self._bytes_read,
                "saves": self._saves,
                "save_skips": self._save_skips,
                "mmap_reads": self.mmap_reads,
            }

    def _namespace_dirs(self) -> List[str]:
        return [
            name
            for name in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, name))
        ]


# ---------------------------------------------------------------------------
# Value codec: ndarrays native, containers via manifest, pickle fallback.
# ---------------------------------------------------------------------------


def _encode(value: Any, arrays: Dict[str, np.ndarray]) -> Dict[str, Any]:
    """Encode *value* into a JSON-able spec, appending ndarrays to *arrays*."""
    if isinstance(value, np.ndarray):
        return {"kind": "ndarray", "id": _add_array(arrays, value)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return {"kind": "scalar", "value": value}
    if isinstance(value, (tuple, list)):
        return {
            "kind": "tuple" if isinstance(value, tuple) else "list",
            "items": [_encode(v, arrays) for v in value],
        }
    if isinstance(value, dict) and all(isinstance(k, str) for k in value):
        return {
            "kind": "dict",
            "keys": list(value.keys()),
            "items": [_encode(v, arrays) for v in value.values()],
        }
    route_spec = _encode_route_table(value, arrays)
    if route_spec is not None:
        return route_spec
    # Protocol-5 out-of-band fallback: contiguous ndarrays inside an
    # otherwise unencodable object (a TaskGraph's CSR arrays, a
    # MapperResult's permutation) leave the pickle stream as raw
    # buffers and become native array entries — which the shm tier and
    # the mmap reader then serve as zero-copy views.
    oob: List[np.ndarray] = []

    def _take_out_of_band(pb: pickle.PickleBuffer):
        try:
            raw = pb.raw()
        except BufferError:
            return True  # non-contiguous: keep it in-band
        oob.append(np.frombuffer(raw, dtype=np.uint8))
        return None

    payload = np.frombuffer(
        pickle.dumps(value, protocol=5, buffer_callback=_take_out_of_band),
        dtype=np.uint8,
    )
    return {
        "kind": "pickle5",
        "id": _add_array(arrays, payload),
        "buffers": [_add_array(arrays, b) for b in oob],
    }


def _decode(spec: Dict[str, Any], archive) -> Any:
    kind = spec["kind"]
    if kind == "ndarray":
        return archive[spec["id"]]
    if kind == "scalar":
        return spec["value"]
    if kind == "tuple":
        return tuple(_decode(s, archive) for s in spec["items"])
    if kind == "list":
        return [_decode(s, archive) for s in spec["items"]]
    if kind == "dict":
        return {
            k: _decode(s, archive) for k, s in zip(spec["keys"], spec["items"])
        }
    if kind == "route_table":
        from repro.topology.routing import RouteTable

        return RouteTable(
            archive[spec["ptr"]], archive[spec["links"]], spec["num_links"]
        )
    if kind == "pickle":
        return pickle.loads(bytes(archive[spec["id"]]))
    if kind == "pickle5":
        buffers = [archive[b] for b in spec["buffers"]]
        return pickle.loads(archive[spec["id"]], buffers=buffers)
    raise ValueError(f"unknown artifact spec kind {kind!r}")


def _encode_route_table(
    value: Any, arrays: Dict[str, np.ndarray]
) -> Optional[Dict[str, Any]]:
    from repro.topology.routing import RouteTable

    if not isinstance(value, RouteTable):
        return None
    return {
        "kind": "route_table",
        "ptr": _add_array(arrays, value.ptr),
        "links": _add_array(arrays, value.links),
        "num_links": int(value.num_links),
    }


def _add_array(arrays: Dict[str, np.ndarray], value: np.ndarray) -> str:
    name = f"a{len(arrays)}"
    arrays[name] = value
    return name


def _manifest_arrays(key: Hashable, value: Any) -> Dict[str, np.ndarray]:
    """Encode *value* into the named-array dict one ``.npz`` file holds."""
    arrays: Dict[str, np.ndarray] = {}
    manifest = {
        "version": 1,
        "key_repr": repr(key),
        "value": _encode(value, arrays),
    }
    arrays["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    return arrays


def encode_artifact_bytes(key: Hashable, value: Any) -> bytes:
    """Serialize an artifact to the store's on-disk ``.npz`` byte format.

    The bytes are exactly what :meth:`DiskArtifactStore.save` would
    write for the same key, which is what lets the remote store ship
    artifacts over a socket and land them as regular disk-store files
    on the far side (and vice versa).
    """
    buf = io.BytesIO()
    np.savez(buf, **_manifest_arrays(key, value))
    return buf.getvalue()


def decode_artifact_bytes(key: Hashable, data: bytes, default: Any = None) -> Any:
    """Inverse of :func:`encode_artifact_bytes`; *default* on any failure.

    Mirrors :meth:`DiskArtifactStore.load`'s corruption tolerance:
    truncated archives, garbled manifests, version skew and key
    mismatches all read as a miss, never an exception.
    """
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as archive:
            manifest = json.loads(bytes(archive["__manifest__"]).decode("utf-8"))
            if manifest.get("version") != 1:
                return default
            if manifest.get("key_repr") != repr(key):
                return default
            return _decode(manifest["value"], archive)
    except Exception:
        return default


# ---------------------------------------------------------------------------
# Construction: the single entry point engine/pool/serve/CLI go through.
# ---------------------------------------------------------------------------


def make_store(
    root: str,
    *,
    tier: str = "auto",
    namespaces: frozenset = DEFAULT_PERSIST_NAMESPACES,
    owner: bool = True,
    mmap_reads: Optional[bool] = None,
    remote: Optional[str] = None,
) -> "ArtifactStore":
    """Build the artifact store for *root* at the requested *tier*.

    ``tier="auto"`` resolves to the shared-memory tier where POSIX
    shared memory works and plain disk elsewhere; ``"shm"`` insists
    (and raises where unsupported); ``"disk"`` opts out.  *owner* marks
    the store that reaps this root's shm segments at close.

    *remote* ("host:port" of a ``repro-map store-serve`` process) layers
    a :class:`~repro.dist.remote.RemoteArtifactStore` under the local
    tiers: remote reads promote into shm/memory, local writes replicate
    to the remote so sibling hosts can read them.  Connection failures
    at construction raise immediately (fail fast); at runtime the
    remote degrades to a miss, never an error.
    """
    if tier not in STORE_TIERS:
        raise ValueError(f"unknown store tier {tier!r}; expected {STORE_TIERS}")
    from repro.api import shm as shm_mod  # lazy: shm imports this module

    use_shm = shm_mod.shm_available() if tier == "auto" else (tier == "shm")
    if not use_shm and remote is None:
        return DiskArtifactStore(root, namespaces=namespaces, mmap_reads=mmap_reads)
    return shm_mod.TieredArtifactStore(
        root,
        namespaces=namespaces,
        owner=owner,
        mmap_reads=mmap_reads,
        use_shm=use_shm,
        remote=remote,
    )


# ---------------------------------------------------------------------------
# Lazy mmap reads: ``np.savez`` stores each member uncompressed, so every
# array body is a contiguous region of the archive that can be served as
# an ``np.frombuffer`` view over one shared memory map instead of being
# eagerly copied out of the zip.
# ---------------------------------------------------------------------------

_ZIP_LOCAL_HEADER_SIZE = 30
_ZIP_LOCAL_MAGIC = b"PK\x03\x04"


def _read_array_header(fh, version):
    """Version-dispatched ``.npy`` header parse (NumPy 1.x/2.x safe)."""
    if version == (1, 0):
        return np.lib.format.read_array_header_1_0(fh)
    if version == (2, 0):
        return np.lib.format.read_array_header_2_0(fh)
    raise ValueError(f"unsupported .npy format version {version}")


def _read_npy_bytes(fh) -> bytes:
    """Raw bytes of a 1-D uint8 ``.npy`` stream (the JSON manifest)."""
    version = np.lib.format.read_magic(fh)
    shape, fortran, dtype = _read_array_header(fh, version)
    if dtype != np.uint8 or len(shape) != 1:
        raise ValueError("manifest member is not a flat uint8 array")
    return fh.read(shape[0])


class _MmapArchive:
    """Read-only, ``NpzFile``-shaped view over one memory-mapped archive.

    ``archive[name]`` returns a read-only ``np.frombuffer`` view into
    the map (the view's ``base`` keeps the map alive), so a load
    materializes no array bytes until a kernel actually touches them.
    Any structural surprise — compressed member, foreign local header,
    truncated data region, object dtype — raises, and the store falls
    back to the eager ``np.load`` decoder.
    """

    def __init__(self, mapped: mmap.mmap) -> None:
        self._mm = mapped
        self._zip = zipfile.ZipFile(mapped)  # mmap objects are file-like

    def __getitem__(self, name: str) -> np.ndarray:
        info = self._zip.getinfo(f"{name}.npy")
        if info.compress_type != zipfile.ZIP_STORED:
            raise ValueError(f"member {name!r} is compressed; cannot map")
        mm = self._mm
        header = mm[
            info.header_offset : info.header_offset + _ZIP_LOCAL_HEADER_SIZE
        ]
        if len(header) != _ZIP_LOCAL_HEADER_SIZE or not header.startswith(
            _ZIP_LOCAL_MAGIC
        ):
            raise ValueError(f"member {name!r} has a garbled local header")
        name_len, extra_len = struct.unpack("<HH", header[26:30])
        start = info.header_offset + _ZIP_LOCAL_HEADER_SIZE + name_len + extra_len
        mm.seek(start)
        version = np.lib.format.read_magic(mm)
        shape, fortran, dtype = _read_array_header(mm, version)
        if dtype.hasobject:
            raise ValueError(f"member {name!r} holds objects; cannot map")
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        offset = mm.tell()
        if offset + count * dtype.itemsize > len(mm):
            raise ValueError(f"member {name!r} is truncated")
        flat = np.frombuffer(mm, dtype=dtype, count=count, offset=offset)
        arr = flat.reshape(shape, order="F" if fortran else "C")
        # ACCESS_READ maps already decode read-only; keep the invariant
        # explicit — every store tier returns copy-on-write views.
        arr.flags.writeable = False
        return arr
