"""DiskArtifactStore — content-addressed, ``.npz``-backed artifact store.

The cross-process layer of the artifact system (the ROADMAP's "cross-
process artifact store" open item): where :class:`~repro.api.cache.
ArtifactCache` is one process's in-memory LRU, this store persists
selected namespaces to disk so *other* processes — the ``process``
backend's pool workers, a later batch, a sibling service — can read an
artifact instead of recomputing it.  The cache layers over the store
transparently: a memory miss falls through to :meth:`load`, a computed
value is written through with :meth:`save` (see
``ArtifactCache(store=...)``).

Layout and format
-----------------
One file per artifact: ``<root>/<namespace>/<sha256(key)[:32]>.npz``.
Each file is a regular NumPy ``.npz`` archive holding

* the artifact's ndarrays as native entries (zero-copy friendly,
  CRC-checked by the zip container),
* a JSON *manifest* describing how to reassemble nested
  tuples/lists/dicts, :class:`~repro.topology.routing.RouteTable`
  instances and plain scalars,
* a pickle payload only for objects with no native encoding
  (``TaskGraph``, ``MapperResult``, metrics dataclasses, …).

The full key ``repr`` is stored in the manifest and verified on load,
so a (vanishingly unlikely) filename-hash collision reads as a miss
rather than silently returning the wrong artifact.

Durability contract
-------------------
Writes are atomic (temp file + ``os.replace``) so concurrent writers of
the same key — two pool workers racing on one artifact — each leave a
complete file behind and readers never observe a torn write.  *Reads
are corruption-tolerant*: a truncated, garbled or version-skewed file
is treated as a miss (and the caller recomputes and overwrites it), so
a crashed run can never poison the store.  Like any pickle-bearing
cache directory, the store trusts its filesystem location; do not point
it at a directory written by untrusted parties.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from typing import Any, Dict, Hashable, List, Optional

import numpy as np

__all__ = ["DiskArtifactStore", "DEFAULT_PERSIST_NAMESPACES"]

#: Namespaces worth sharing across processes by default: the expensive,
#: deterministic artifacts the planner dedupes (groupings, initial route
#: tables, DEF baselines and the derived coarse views).  Hop tables are
#: excluded — they are cheap to rebuild and memoized per torus already.
DEFAULT_PERSIST_NAMESPACES = frozenset(
    {"grouping", "route_table", "def_baseline", "message_coarse", "unit_coarse"}
)

_MISSING = object()


class DiskArtifactStore:
    """Content-addressed artifact files under one root directory.

    Parameters
    ----------
    root:
        Directory holding the store (created if absent).  Multiple
        processes may share one root concurrently.
    namespaces:
        The namespaces an attached :class:`~repro.api.cache.ArtifactCache`
        should persist (read *and* write through).  Direct
        :meth:`save`/:meth:`load` calls are not restricted by this set.
    """

    def __init__(
        self,
        root: str,
        *,
        namespaces: frozenset = DEFAULT_PERSIST_NAMESPACES,
    ) -> None:
        self.root = os.path.abspath(root)
        self.namespaces = frozenset(namespaces)
        os.makedirs(self.root, exist_ok=True)
        self.sweep_orphans()

    def sweep_orphans(self, *, min_age_s: float = 300.0) -> int:
        """Remove orphaned ``*.tmp`` files a crashed writer left behind.

        Runs on every store open: a worker killed mid-:meth:`save` (the
        window between ``mkstemp`` and ``os.replace``) leaks its private
        temp file, which nothing would ever reclaim.  Completed
        artifacts are untouched — the atomic rename means a ``.tmp``
        file is, by construction, never a live artifact.  Only files
        older than *min_age_s* are swept so a store being opened next
        to a *live* writer (two pool workers starting up) cannot yank a
        temp file mid-write.  Returns the number of files removed.
        """
        removed = 0
        cutoff = time.time() - min_age_s
        for directory in [self.root] + [
            os.path.join(self.root, ns) for ns in self._namespace_dirs()
        ]:
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(directory, name)
                try:
                    if os.path.getmtime(path) <= cutoff:
                        os.unlink(path)
                        removed += 1
                except OSError:
                    pass  # a concurrent opener already swept it
        return removed

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def path_for(self, namespace: str, key: Hashable) -> str:
        digest = hashlib.sha256(repr((namespace, key)).encode()).hexdigest()[:32]
        return os.path.join(self.root, namespace, f"{digest}.npz")

    # ------------------------------------------------------------------
    # save / load
    # ------------------------------------------------------------------
    def save(self, namespace: str, key: Hashable, value: Any) -> str:
        """Persist *value* atomically; returns the file path.

        Concurrent writers of the same key are safe: each writes a
        private temp file and ``os.replace``s it into place, so the file
        is always a complete archive (last writer wins — artifacts are
        deterministic in their key, so every writer stores equal bytes
        of content).
        """
        path = self.path_for(namespace, key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        arrays: Dict[str, np.ndarray] = {}
        manifest = {
            "version": 1,
            "key_repr": repr(key),
            "value": _encode(value, arrays),
        }
        arrays["__manifest__"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        fd, tmp = tempfile.mkstemp(suffix=".npz.tmp", dir=directory)
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def load(self, namespace: str, key: Hashable, default: Any = None) -> Any:
        """Read an artifact back; *default* on miss **or any corruption**.

        Every failure mode — missing file, truncated zip, garbled JSON,
        stale format version, key-hash collision, broken pickle — is a
        miss, never an exception: the caller recomputes and overwrites.
        """
        path = self.path_for(namespace, key)
        try:
            with np.load(path, allow_pickle=False) as archive:
                manifest = json.loads(bytes(archive["__manifest__"]).decode("utf-8"))
                if manifest.get("version") != 1:
                    return default
                if manifest.get("key_repr") != repr(key):
                    return default  # filename-hash collision: not our key
                return _decode(manifest["value"], archive)
        except Exception:
            return default

    def contains(self, namespace: str, key: Hashable) -> bool:
        """Cheap existence probe (does not validate the file's content)."""
        return os.path.exists(self.path_for(namespace, key))

    def delete(self, namespace: str, key: Hashable) -> bool:
        """Remove one artifact; True when a file was deleted.

        Used by :class:`~repro.api.pool.ExecutorPool` to retire a
        batch's request payload once every node has executed.
        """
        try:
            os.unlink(self.path_for(namespace, key))
            return True
        except OSError:
            return False

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def clear(self, namespace: Optional[str] = None) -> int:
        """Delete stored artifacts (one namespace's, or all); returns count.

        Also sweeps orphaned ``.npz.tmp`` files a crashed writer may
        have left behind (they do not count toward the return value).
        """
        removed = 0
        targets = [namespace] if namespace is not None else self._namespace_dirs()
        for ns in targets:
            directory = os.path.join(self.root, ns)
            if not os.path.isdir(directory):
                continue
            for name in os.listdir(directory):
                if name.endswith(".npz"):
                    os.unlink(os.path.join(directory, name))
                    removed += 1
                elif name.endswith(".npz.tmp"):
                    os.unlink(os.path.join(directory, name))
        return removed

    def file_count(self, namespace: Optional[str] = None) -> int:
        """Number of stored artifact files (one namespace's, or all)."""
        total = 0
        targets = [namespace] if namespace is not None else self._namespace_dirs()
        for ns in targets:
            directory = os.path.join(self.root, ns)
            if os.path.isdir(directory):
                total += sum(
                    1 for name in os.listdir(directory) if name.endswith(".npz")
                )
        return total

    def _namespace_dirs(self) -> List[str]:
        return [
            name
            for name in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, name))
        ]


# ---------------------------------------------------------------------------
# Value codec: ndarrays native, containers via manifest, pickle fallback.
# ---------------------------------------------------------------------------


def _encode(value: Any, arrays: Dict[str, np.ndarray]) -> Dict[str, Any]:
    """Encode *value* into a JSON-able spec, appending ndarrays to *arrays*."""
    if isinstance(value, np.ndarray):
        return {"kind": "ndarray", "id": _add_array(arrays, value)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return {"kind": "scalar", "value": value}
    if isinstance(value, (tuple, list)):
        return {
            "kind": "tuple" if isinstance(value, tuple) else "list",
            "items": [_encode(v, arrays) for v in value],
        }
    if isinstance(value, dict) and all(isinstance(k, str) for k in value):
        return {
            "kind": "dict",
            "keys": list(value.keys()),
            "items": [_encode(v, arrays) for v in value.values()],
        }
    route_spec = _encode_route_table(value, arrays)
    if route_spec is not None:
        return route_spec
    payload = np.frombuffer(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL), dtype=np.uint8
    )
    return {"kind": "pickle", "id": _add_array(arrays, payload)}


def _decode(spec: Dict[str, Any], archive) -> Any:
    kind = spec["kind"]
    if kind == "ndarray":
        return archive[spec["id"]]
    if kind == "scalar":
        return spec["value"]
    if kind == "tuple":
        return tuple(_decode(s, archive) for s in spec["items"])
    if kind == "list":
        return [_decode(s, archive) for s in spec["items"]]
    if kind == "dict":
        return {
            k: _decode(s, archive) for k, s in zip(spec["keys"], spec["items"])
        }
    if kind == "route_table":
        from repro.topology.routing import RouteTable

        return RouteTable(
            archive[spec["ptr"]], archive[spec["links"]], spec["num_links"]
        )
    if kind == "pickle":
        return pickle.loads(bytes(archive[spec["id"]]))
    raise ValueError(f"unknown artifact spec kind {kind!r}")


def _encode_route_table(
    value: Any, arrays: Dict[str, np.ndarray]
) -> Optional[Dict[str, Any]]:
    from repro.topology.routing import RouteTable

    if not isinstance(value, RouteTable):
        return None
    return {
        "kind": "route_table",
        "ptr": _add_array(arrays, value.ptr),
        "links": _add_array(arrays, value.links),
        "num_links": int(value.num_links),
    }


def _add_array(arrays: Dict[str, np.ndarray], value: np.ndarray) -> str:
    name = f"a{len(arrays)}"
    arrays[name] = value
    return name
