"""EngineConfig — one object for the engine's execution knobs.

The per-call kwargs the engine grew PR over PR (``backend``,
``workers``, ``store_dir``, ``store_tier``, ``kernel_backend``, cache
bounds, retry/timeout knobs, and now the sharding fields) live in one
frozen dataclass threaded through :class:`~repro.api.service.
MappingService`, :class:`~repro.api.pool.ExecutorPool`, the CLI and the
network server.  Every legacy kwarg keeps working — call sites pass
explicit kwargs, those override the config, and omitted ones fall back
to it — so the config is a consolidation, not a migration.

Note the name collision with :class:`repro.partition.driver.
EngineConfig`, the *partitioner* configuration (refinement passes,
imbalance, coarsening): that object configures one grouping
computation; this one configures how batches execute.  Code touching
both imports this one as ``EngineConfig`` and the partitioner's under
its qualified module path.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["EngineConfig", "DEFAULT_WORKER_CACHE_BYTES"]

#: Per-worker artifact-cache byte budget (mirrors ExecutorPool's).
DEFAULT_WORKER_CACHE_BYTES = 256 << 20


@dataclass(frozen=True)
class EngineConfig:
    """Execution knobs for one service / pool / serve deployment.

    Every field has the engine's historical default, so
    ``EngineConfig()`` reproduces the pre-config behavior exactly.

    Parameters
    ----------
    backend:
        Plan execution backend (``serial`` / ``thread`` / ``process``);
        ``None`` keeps each component's own default.
    workers:
        Worker count for parallel backends (``None`` = auto).
    store_dir:
        Root directory of the artifact store (``None`` = in-memory
        cache only, or a pool-managed temp root).
    store_tier:
        ``auto`` / ``shm`` / ``disk`` (see ``repro.api.store.STORE_TIERS``).
    store_remote:
        ``host:port`` of a ``repro-map store-serve`` process to layer
        under the local tiers (replicated writes, promoted reads).
    kernel_backend:
        Kernel tier (``numpy`` / ``numba``; ``None`` = auto-detect).
    cache_entries / cache_bytes:
        LRU bounds of the service-level :class:`~repro.api.cache.
        ArtifactCache` (``None`` = unbounded).
    worker_cache_bytes:
        Per-process-pool-worker cache byte budget.
    retry:
        :class:`~repro.api.fault.RetryPolicy` for plan nodes (``None``
        = no retries).
    node_timeout:
        Per-node deadline in seconds (``None`` = none).
    on_error:
        ``"raise"`` or ``"partial"`` (structured per-request errors).
    idle_timeout:
        Pool worker idle reap timeout (``None`` = keep forever).
    hosts:
        Shard-host addresses (``host:port`` of ``repro-map
        shard-serve`` processes); non-empty routes ``map_batch``
        through the distributed coordinator.
    steal_threshold:
        Ready-queue backlog above which an idle host may steal
        unpinned nodes from a hot shard.
    """

    backend: Optional[str] = None
    workers: Optional[int] = None
    store_dir: Optional[str] = None
    store_tier: str = "auto"
    store_remote: Optional[str] = None
    kernel_backend: Optional[str] = None
    cache_entries: Optional[int] = None
    cache_bytes: Optional[int] = None
    worker_cache_bytes: int = DEFAULT_WORKER_CACHE_BYTES
    retry: Optional[object] = None
    node_timeout: Optional[float] = None
    on_error: str = "raise"
    idle_timeout: Optional[float] = None
    hosts: Tuple[str, ...] = field(default_factory=tuple)
    steal_threshold: int = 2

    def __post_init__(self) -> None:
        if self.on_error not in ("raise", "partial"):
            raise ValueError(
                f"on_error must be 'raise' or 'partial', got {self.on_error!r}"
            )
        object.__setattr__(self, "hosts", tuple(self.hosts))

    def merged(self, **overrides) -> "EngineConfig":
        """A copy with the non-``None`` *overrides* applied.

        This is the deprecation shim's core: legacy per-call kwargs
        arrive here and win over the config's fields, so existing call
        sites behave identically with or without a config present.
        """
        changes = {k: v for k, v in overrides.items() if v is not None}
        return dataclasses.replace(self, **changes) if changes else self

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)
