"""Named pipeline stages: grouping → placement → refine* → fine-refine*.

The paper's seven algorithms (plus the UTH/UWHF extensions) are
compositions of a handful of primitives; this module gives each
primitive a *name* so :class:`~repro.api.registry.MapperSpec` can
declare an algorithm as data instead of an ``if/elif`` ladder:

=========  ==========================================================
kind       built-in stages
=========  ==========================================================
grouping   ``partition`` (METIS-like + FM fixup, shareable/cacheable),
           ``blocked`` (DEF's consecutive-rank blocking)
placement  ``greedy`` (Alg. 1), ``scotch``, ``topomap``,
           ``consecutive`` (DEF: group *i* → allocation node *i*)
refine     ``wh`` (Alg. 2), ``mc`` (Alg. 3, volume metric),
           ``mmc`` (Alg. 3 on the message-multiplicity coarse graph)
fine       ``fine_wh`` (rank-level WH swap refinement)
=========  ==========================================================

A placement stage receives a :class:`StageContext` and returns the
coarse Γ (a :class:`~repro.mapping.base.Mapping` or a plain array); a
refine stage maps ``(ctx, Mapping) -> Mapping``; a fine stage maps
``(ctx, fine_gamma) -> fine_gamma``.  Third-party stages register
through :func:`register_placement_stage` &c. — usually indirectly via
the :func:`~repro.api.registry.register_mapper` decorator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.graph.task_graph import TaskGraph, coarse_task_graph
from repro.mapping.base import Mapping
from repro.mapping.default import DefaultMapper
from repro.mapping.greedy import GreedyMapper
import repro.mapping.pipeline as _pipeline
from repro.mapping.refine_mc import MCRefiner
from repro.mapping.refine_wh import WHRefiner
from repro.mapping.scotchmap import ScotchMapper
from repro.mapping.topomap import TopoMapper
from repro.topology.machine import Machine

__all__ = [
    "StageContext",
    "GROUPING_STAGES",
    "PLACEMENT_STAGES",
    "REFINE_STAGES",
    "FINE_REFINE_STAGES",
    "register_placement_stage",
    "register_refine_stage",
    "register_grouping_stage",
    "register_fine_refine_stage",
]


@dataclass
class StageContext:
    """Mutable state threaded through one algorithm's stage chain.

    ``coarse`` is the canonical (volume-weighted) node-level graph;
    ``view`` is the graph the placement/refine stages should optimize —
    identical to ``coarse`` except for unit-cost algorithms (UTH), where
    it is the unit-weight view of the same grouping.
    """

    task_graph: TaskGraph
    machine: Machine
    seed: int
    delta: int
    cache: Optional[object] = None  # ArtifactCache, typed loosely to avoid a cycle
    group_of_task: Optional[np.ndarray] = None
    coarse: Optional[TaskGraph] = None
    view: Optional[TaskGraph] = None
    group_config: Optional[object] = None
    options: Dict[str, object] = field(default_factory=dict)

    # -- helpers for stages ------------------------------------------------
    def message_coarse(self) -> TaskGraph:
        """Message-multiplicity coarse graph (UMMC's refinement view).

        Deterministic in (task graph, grouping), so it is cached in the
        service's artifact cache when one is attached.
        """
        compute = lambda: _pipeline._message_count_coarse(  # noqa: E731
            self.task_graph, self.group_of_task, self.machine
        )
        if self.cache is None:
            return compute()
        from repro.api.cache import fingerprint_arrays, machine_key, task_graph_key

        key = (
            task_graph_key(self.task_graph),
            fingerprint_arrays(self.group_of_task),
            machine_key(self.machine),
        )
        return self.cache.get_or_compute("message_coarse", key, compute)


# ---------------------------------------------------------------------------
# Stage registries.
# ---------------------------------------------------------------------------

GROUPING_STAGES: Dict[str, Callable[[StageContext], None]] = {}
PLACEMENT_STAGES: Dict[str, Callable[[StageContext], Mapping]] = {}
REFINE_STAGES: Dict[str, Callable[[StageContext, Mapping], Mapping]] = {}
FINE_REFINE_STAGES: Dict[str, Callable[[StageContext, np.ndarray], np.ndarray]] = {}


def _register(registry: Dict[str, Callable], kind: str, name: str, fn, overwrite):
    if not overwrite and name in registry:
        raise ValueError(f"{kind} stage {name!r} is already registered")
    registry[name] = fn
    return fn


def register_grouping_stage(name: str, fn=None, *, overwrite: bool = False):
    """Register a grouping stage (sets ``ctx.group_of_task``/``ctx.coarse``)."""
    if fn is None:
        return lambda f: _register(GROUPING_STAGES, "grouping", name, f, overwrite)
    return _register(GROUPING_STAGES, "grouping", name, fn, overwrite)


def register_placement_stage(name: str, fn=None, *, overwrite: bool = False):
    """Register a placement stage (``ctx -> Mapping | gamma array``)."""
    if fn is None:
        return lambda f: _register(PLACEMENT_STAGES, "placement", name, f, overwrite)
    return _register(PLACEMENT_STAGES, "placement", name, fn, overwrite)


def register_refine_stage(name: str, fn=None, *, overwrite: bool = False):
    """Register a coarse refine stage (``(ctx, Mapping) -> Mapping``)."""
    if fn is None:
        return lambda f: _register(REFINE_STAGES, "refine", name, f, overwrite)
    return _register(REFINE_STAGES, "refine", name, fn, overwrite)


def register_fine_refine_stage(name: str, fn=None, *, overwrite: bool = False):
    """Register a fine refine stage (``(ctx, fine_gamma) -> fine_gamma``)."""
    if fn is None:
        return lambda f: _register(FINE_REFINE_STAGES, "fine", name, f, overwrite)
    return _register(FINE_REFINE_STAGES, "fine", name, fn, overwrite)


# ---------------------------------------------------------------------------
# Built-in grouping stages.
# ---------------------------------------------------------------------------


@register_grouping_stage("partition")
def _grouping_partition(ctx: StageContext) -> None:
    """Paper grouping: METIS-like partition + exact-balance FM fixup."""
    ctx.group_of_task, ctx.coarse = _pipeline.prepare_groups(
        ctx.task_graph, ctx.machine, seed=ctx.seed, config=ctx.group_config
    )


@register_grouping_stage("blocked")
def _grouping_blocked(ctx: StageContext) -> None:
    """DEF's implicit grouping: consecutive ranks per allocation node."""
    machine = ctx.machine
    if ctx.task_graph.num_tasks > machine.total_procs:
        raise ValueError(
            f"{ctx.task_graph.num_tasks} tasks exceed "
            f"{machine.total_procs} processors"
        )
    mapper = DefaultMapper()
    group_of_task = mapper.rank_groups(ctx.task_graph.num_tasks, machine)
    coarse = coarse_task_graph(
        ctx.task_graph, group_of_task, machine.num_alloc_nodes
    )
    coarse.graph.vertex_weights = np.bincount(
        group_of_task, minlength=machine.num_alloc_nodes
    ).astype(np.float64)
    ctx.group_of_task, ctx.coarse = group_of_task, coarse


# ---------------------------------------------------------------------------
# Built-in placement stages.
# ---------------------------------------------------------------------------


@register_placement_stage("greedy")
def _place_greedy(ctx: StageContext) -> Mapping:
    """Algorithm 1: greedy graph-growing WH placement (UG)."""
    return GreedyMapper().map(ctx.view, ctx.machine)


@register_placement_stage("scotch")
def _place_scotch(ctx: StageContext) -> Mapping:
    """Scotch-like simultaneous dual recursive bipartitioning (SMAP)."""
    return ScotchMapper(seed=ctx.seed).map(ctx.view, ctx.machine)


@register_placement_stage("topomap")
def _place_topomap(ctx: StageContext) -> Mapping:
    """LibTopoMap-like dual recursive bipartitioning (TMAP core)."""
    return TopoMapper(seed=ctx.seed, fallback_on_mc=False).map(ctx.view, ctx.machine)


@register_placement_stage("consecutive")
def _place_consecutive(ctx: StageContext) -> Mapping:
    """DEF's placement: group *i* lives on allocation node *i*."""
    return Mapping(ctx.machine.alloc_nodes.copy(), ctx.machine)


@register_placement_stage("hier")
def _place_hier(ctx: StageContext) -> Mapping:
    """Hierarchical per-dimension recursive partitioning (HIER family)."""
    from repro.mapping.hier import HierMapper

    return HierMapper(seed=ctx.seed).map(ctx.view, ctx.machine)


@register_placement_stage("sfc")
def _place_sfc(ctx: StageContext) -> Mapping:
    """Geometric space-filling-curve zip placement (SFC family)."""
    from repro.mapping.sfc import SFCMapper

    return SFCMapper().map(ctx.view, ctx.machine)


# ---------------------------------------------------------------------------
# Built-in refine stages.
# ---------------------------------------------------------------------------


@register_refine_stage("wh")
def _refine_wh(ctx: StageContext, mapping: Mapping) -> Mapping:
    """Algorithm 2: WH-driven task-swap refinement."""
    return WHRefiner(delta=ctx.delta).refine(ctx.view, mapping)


@register_refine_stage("mc")
def _refine_mc(ctx: StageContext, mapping: Mapping) -> Mapping:
    """Algorithm 3 with the volume metric (UMC)."""
    return MCRefiner(delta=ctx.delta, metric="volume").refine(
        ctx.view, mapping, cache=ctx.cache
    )


@register_refine_stage("mmc")
def _refine_mmc(ctx: StageContext, mapping: Mapping) -> Mapping:
    """Algorithm 3 on fine message multiplicities (UMMC).

    Refines on a coarse graph whose edge weights count rank-pair
    messages, so the tracked maximum is the rank-level MMC rather than
    the (deduplicated) coarse edge count.  The shared cache lets the
    initial route table come from UMC's run on the same placement —
    the two variants route identical endpoint pairs.
    """
    return MCRefiner(delta=ctx.delta, metric="message").refine(
        ctx.message_coarse(), mapping, cache=ctx.cache
    )


# ---------------------------------------------------------------------------
# Built-in fine refine stages.
# ---------------------------------------------------------------------------


@register_fine_refine_stage("fine_wh")
def _refine_fine_wh(ctx: StageContext, fine_gamma: np.ndarray) -> np.ndarray:
    """Rank-level WH swap refinement (the UWHF extension)."""
    from repro.mapping.refine_fine import FineWHRefiner

    return FineWHRefiner(delta=ctx.delta).refine(
        ctx.task_graph, ctx.machine, fine_gamma
    )
