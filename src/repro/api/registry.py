"""MapperSpec registry: algorithms declared as stage compositions.

Each mapping algorithm is a :class:`MapperSpec` — pure data naming a
grouping stage, a placement stage, and zero or more refine stages, plus
the few behavioural flags the paper's figures need (unit-cost view for
UTH, DEF fallback for TMAP, grouping charged to map time).  The seven
paper algorithms and the UTH/UWHF extensions are registered here at
import; third-party mappers join through :func:`register_mapper`, either
with an explicit spec or as a decorator on a placement function::

    @register_mapper("SNAKE", refine=("wh",))
    def snake_placement(ctx):
        \"\"\"Place groups along a space-filling curve.\"\"\"
        ...
        return gamma            # Mapping or int array, one node per group

After registration the new name works everywhere a paper name does:
``get_mapper("SNAKE")``, ``MappingService.map_batch``, and the
``python -m repro.api`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

from repro.api.stages import (
    FINE_REFINE_STAGES,
    GROUPING_STAGES,
    PLACEMENT_STAGES,
    REFINE_STAGES,
    register_placement_stage,
)

__all__ = [
    "MapperSpec",
    "MapperRegistrationError",
    "UnknownMapperError",
    "register_mapper",
    "unregister_mapper",
    "get_spec",
    "registered_mappers",
]


class MapperRegistrationError(ValueError):
    """Raised on duplicate or malformed mapper registrations."""


class UnknownMapperError(ValueError):
    """Raised when a mapper name is not in the registry."""

    def __init__(self, name: str) -> None:
        super().__init__(
            f"unknown mapper {name!r}; registered: {registered_mappers()}"
        )
        self.name = name


@dataclass(frozen=True)
class MapperSpec:
    """Declarative description of one mapping algorithm.

    Attributes
    ----------
    name:
        Registry key (upper-cased paper-style name).
    grouping:
        Name in :data:`~repro.api.stages.GROUPING_STAGES`.
    placement:
        Name in :data:`~repro.api.stages.PLACEMENT_STAGES`.
    refine:
        Coarse-level refine stage names, applied in order.
    fine_refine:
        Rank-level refine stage names, applied after expansion.
    coarse_view:
        ``"volume"`` (default) or ``"unit"`` — UTH optimizes the
        unit-cost view of the coarse graph (the TH objective).
    fallback:
        ``"def_mc"`` makes the service return the DEF mapping when the
        algorithm's rank-level MC is not strictly better (TMAP's rule).
    group_in_map_time:
        Charge the grouping stage to ``map_time`` and never share it
        (TMAP re-partitions the task graph itself; DEF's blocking is
        part of its placement cost).
    shares_grouping:
        Whether the algorithm consumes the request's shared grouping —
        the paper's "UWH/UMC/UMMC run on top of UG" family.
    consumes:
        Artifact namespaces the algorithm reads from the shared cache,
        used by the batch planner (:func:`repro.api.plan.build_plan`) to
        schedule it after the artifacts' producers: ``"grouping"`` (the
        shared phase-1 partition), ``"route_table"`` (the initial-route
        enumeration of its placement, shared by the congestion
        refiners), ``"def_baseline"`` (TMAP's fallback comparison).
        Derived from the stage composition when not given explicitly.
    produces:
        Artifact namespaces the algorithm's run seeds into the cache for
        later consumers (DEF and TMAP seed ``"def_baseline"``; the
        congestion refiners seed ``"route_table"``).  Derived when not
        given.
    description:
        One-liner for ``python -m repro.api list``.
    """

    name: str
    grouping: str = "partition"
    placement: str = "greedy"
    refine: Tuple[str, ...] = ()
    fine_refine: Tuple[str, ...] = ()
    coarse_view: str = "volume"
    fallback: Optional[str] = None
    group_in_map_time: bool = False
    shares_grouping: bool = True
    consumes: Optional[Tuple[str, ...]] = None
    produces: Optional[Tuple[str, ...]] = None
    description: str = ""

    #: refine stages that enumerate (and share) an initial route table.
    CONGESTION_REFINES = ("mc", "mmc")

    def __post_init__(self) -> None:
        if self.grouping not in GROUPING_STAGES:
            raise MapperRegistrationError(
                f"{self.name}: unknown grouping stage {self.grouping!r}"
            )
        if self.placement not in PLACEMENT_STAGES:
            raise MapperRegistrationError(
                f"{self.name}: unknown placement stage {self.placement!r}"
            )
        for r in self.refine:
            if r not in REFINE_STAGES:
                raise MapperRegistrationError(
                    f"{self.name}: unknown refine stage {r!r}"
                )
        for r in self.fine_refine:
            if r not in FINE_REFINE_STAGES:
                raise MapperRegistrationError(
                    f"{self.name}: unknown fine refine stage {r!r}"
                )
        if self.coarse_view not in ("volume", "unit"):
            raise MapperRegistrationError(
                f"{self.name}: coarse_view must be 'volume' or 'unit'"
            )
        if self.fallback not in (None, "def_mc"):
            raise MapperRegistrationError(
                f"{self.name}: unsupported fallback {self.fallback!r}"
            )
        if self.consumes is None:
            object.__setattr__(self, "consumes", self._derive_consumes())
        else:
            object.__setattr__(self, "consumes", tuple(self.consumes))
        if self.produces is None:
            object.__setattr__(self, "produces", self._derive_produces())
        else:
            object.__setattr__(self, "produces", tuple(self.produces))

    def _derive_consumes(self) -> Tuple[str, ...]:
        out = []
        if not self.group_in_map_time:
            out.append("grouping")
        if any(r in self.CONGESTION_REFINES for r in self.refine):
            out.append("route_table")
        if self.fallback == "def_mc":
            out.append("def_baseline")
        return tuple(out)

    def _derive_produces(self) -> Tuple[str, ...]:
        out = []
        if any(r in self.CONGESTION_REFINES for r in self.refine):
            out.append("route_table")
        if self.fallback == "def_mc":
            # A fallback spec seeds the baseline it compares against
            # (service._baseline_def).  DEF itself declares
            # produces=("def_baseline",) explicitly in its builtin spec
            # — the service's seeding is keyed to that algorithm, so
            # deriving it from a structural proxy here could promise a
            # production that execution never performs.
            out.append("def_baseline")
        return tuple(out)

    def stage_names(self) -> Tuple[str, ...]:
        """Human-readable stage chain, e.g. ``('partition', 'greedy', 'wh')``."""
        return (self.grouping, self.placement) + self.refine + self.fine_refine


_REGISTRY: Dict[str, MapperSpec] = {}


def register_mapper(
    spec_or_name=None,
    *,
    name: Optional[str] = None,
    grouping: str = "partition",
    refine: Tuple[str, ...] = (),
    fine_refine: Tuple[str, ...] = (),
    coarse_view: str = "volume",
    description: str = "",
    overwrite: bool = False,
):
    """Register a mapping algorithm; returns the spec (or the decorated fn).

    Three forms are supported:

    * ``register_mapper(MapperSpec(...))`` — register an explicit spec.
    * ``@register_mapper("NAME", refine=("wh",))`` — decorate a placement
      function ``(ctx: StageContext) -> Mapping | gamma``; the function is
      installed as a placement stage and a spec composing it with the
      shared ``partition`` grouping (plus any requested refiners) is
      registered under ``NAME``.
    * ``@register_mapper(name="NAME")`` — same, keyword form.
    """
    if isinstance(spec_or_name, MapperSpec):
        return _install(spec_or_name, overwrite)

    if callable(spec_or_name) and name is None:
        raise MapperRegistrationError(
            "register_mapper needs a name: use @register_mapper('NAME')"
        )

    algo_name = name if name is not None else spec_or_name
    if not isinstance(algo_name, str) or not algo_name:
        raise MapperRegistrationError(
            f"mapper name must be a non-empty string, got {algo_name!r}"
        )
    algo_name = algo_name.upper()

    def decorator(fn: Callable):
        if not overwrite and algo_name in _REGISTRY:
            raise MapperRegistrationError(
                f"mapper {algo_name!r} is already registered "
                "(pass overwrite=True to replace it)"
            )
        stage_name = f"custom:{algo_name.lower()}"
        register_placement_stage(stage_name, fn, overwrite=overwrite)
        doc = description
        if not doc:
            lines = (fn.__doc__ or "").strip().splitlines()
            doc = lines[0] if lines else ""
        try:
            spec = MapperSpec(
                name=algo_name,
                grouping=grouping,
                placement=stage_name,
                refine=tuple(refine),
                fine_refine=tuple(fine_refine),
                coarse_view=coarse_view,
                description=doc,
            )
            _install(spec, overwrite)
        except Exception:
            # Don't leave a half-registered stage behind: a corrected
            # retry of the same decorator must start clean.
            PLACEMENT_STAGES.pop(stage_name, None)
            raise
        return fn

    return decorator


def _install(spec: MapperSpec, overwrite: bool) -> MapperSpec:
    key = spec.name.upper()
    if not overwrite and key in _REGISTRY:
        raise MapperRegistrationError(
            f"mapper {key!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    if spec.name != key:
        # Normalize so spec.name, registered_mappers() and the
        # MapResponse.algorithm labels always agree on the casing.
        spec = replace(spec, name=key)
    _REGISTRY[key] = spec
    return spec


def unregister_mapper(name: str) -> None:
    """Remove a mapper (and its decorator-created stage, if any)."""
    spec = _REGISTRY.pop(name.upper(), None)
    if spec is not None and spec.placement.startswith("custom:"):
        PLACEMENT_STAGES.pop(spec.placement, None)


def get_spec(name: str) -> MapperSpec:
    """Case-insensitive registry lookup; raises :class:`UnknownMapperError`."""
    try:
        return _REGISTRY[name.upper()]
    except KeyError:
        raise UnknownMapperError(name) from None


def registered_mappers() -> Tuple[str, ...]:
    """All registered mapper names, paper algorithms first."""
    return tuple(_REGISTRY)


# ---------------------------------------------------------------------------
# The paper's seven algorithms + the UTH / UWHF extensions, as data.
# ---------------------------------------------------------------------------

_BUILTIN_SPECS = (
    MapperSpec(
        name="DEF",
        grouping="blocked",
        placement="consecutive",
        group_in_map_time=True,
        shares_grouping=False,
        # Every DEF run (re)seeds the def_baseline entry TMAP's
        # fallback reads — declared explicitly because the service's
        # seeding is keyed to this algorithm, not to its stage shape.
        produces=("def_baseline",),
        description="Hopper-style consecutive ranks along the allocation",
    ),
    MapperSpec(
        name="TMAP",
        grouping="partition",
        placement="topomap",
        fallback="def_mc",
        group_in_map_time=True,  # LibTopoMap partitions the task graph itself
        shares_grouping=False,
        description="LibTopoMap-like dual recursive bipartitioning + DEF fallback",
    ),
    MapperSpec(
        name="SMAP",
        placement="scotch",
        description="Scotch-like simultaneous dual recursive bipartitioning",
    ),
    MapperSpec(name="UG", description="Algorithm 1: greedy WH placement"),
    MapperSpec(
        name="UWH",
        refine=("wh",),
        description="UG + Algorithm 2 WH swap refinement",
    ),
    MapperSpec(
        name="UMC",
        refine=("mc",),
        description="UG + Algorithm 3 congestion refinement (volume)",
    ),
    MapperSpec(
        name="UMMC",
        refine=("mmc",),
        description="UG + Algorithm 3 on fine message multiplicities",
    ),
    MapperSpec(
        name="UTH",
        refine=("wh",),
        coarse_view="unit",
        description="UG+UWH on the unit-cost view (TH objective)",
    ),
    MapperSpec(
        name="UWHF",
        refine=("wh",),
        fine_refine=("fine_wh",),
        description="UWH + rank-level WH swap refinement",
    ),
    # -- algorithm families beyond the paper (ROADMAP directions) --------
    MapperSpec(
        name="HIER",
        placement="hier",
        description="Hierarchical per-dimension partitioning (Schulz & Woydt)",
    ),
    MapperSpec(
        name="HIERWH",
        placement="hier",
        refine=("wh",),
        description="HIER + Algorithm 2 WH swap refinement",
    ),
    MapperSpec(
        name="SFC",
        placement="sfc",
        description="Geometric SFC curve-zip placement (Deveci et al.)",
    ),
    MapperSpec(
        name="SFCWH",
        placement="sfc",
        refine=("wh",),
        description="SFC + Algorithm 2 WH swap refinement",
    ),
)

for _spec in _BUILTIN_SPECS:
    _install(_spec, overwrite=False)
del _spec
