"""Fault-tolerance primitives of the execution engine.

Three pieces live here, shared by every backend and the serving layer:

:class:`RetryPolicy`
    Bounded retries with exponential backoff for *transient* node
    failures, plus the crash-quarantine knobs the self-healing pool
    consults (how many worker crashes a request may cause before it is
    quarantined, and what quarantine does — fail cleanly or re-run on
    the in-process serial path).  The healthy path never touches any of
    this: a node that succeeds on its first attempt pays one integer
    comparison.

:class:`PlanError`
    The structured outcome of a failed plan node.  ``map_batch(...,
    on_error="partial")`` surfaces it on :attr:`MapResponse.error`
    instead of aborting the batch — unaffected requests still succeed.

:class:`FaultInjector`
    A deterministic chaos harness for tests: arm a bounded number of
    faults (``kill-worker`` — the worker process ``os._exit``\\ s while
    running a matching request; ``raise`` — a transient exception) and
    activate them via an environment variable that pool workers
    inherit.  Token files claimed by atomic rename guarantee each armed
    fault fires exactly once, however many workers race for it.
    ``corrupt_artifact`` garbles store files in place (the store's
    corruption-tolerant reads must treat them as misses), and
    ``drop_link`` masks a link dead on a machine (fault-avoiding
    rerouting must detour around it).
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "RetryPolicy",
    "PlanError",
    "FaultInjector",
    "InjectedFault",
    "maybe_inject",
    "FAULT_DIR_ENV",
]

#: Environment variable naming an active :class:`FaultInjector` root.
#: Process-pool workers inherit it at spawn, which is how a parent test
#: arms faults inside long-lived workers it never talks to directly.
FAULT_DIR_ENV = "REPRO_FAULT_DIR"

#: Exit code of an injected worker kill (distinguishable from real
#: segfaults in test assertions; the engine treats any worker death the
#: same way).
KILL_EXIT_CODE = 87


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/quarantine configuration of one plan execution.

    Parameters
    ----------
    max_attempts:
        Total attempts per node (1 = no retries).  Only ordinary
        exceptions are retried; a blown deadline is final, and worker
        crashes follow the quarantine rules below instead.
    backoff:
        Sleep before the second attempt, in seconds.
    backoff_factor:
        Multiplier applied per further attempt (exponential backoff).
    max_backoff:
        Upper bound of any single backoff sleep.
    max_crashes:
        How many times a node may be in flight during a worker-pool
        crash before it is quarantined as poison.  Crash attribution is
        conservative — every node in flight at break time is a suspect —
        so the default (2) means "killed the pool twice".
    poison:
        What quarantine does: ``"fail"`` returns a structured
        :class:`PlanError` of kind ``"crash"``; ``"serial"`` re-runs the
        node on the caller's in-process serial path (appropriate when
        crashes are suspected worker-environment flakes — a genuinely
        segfaulting request would take the caller down with it).
    """

    max_attempts: int = 3
    backoff: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    max_crashes: int = 2
    poison: str = "fail"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff < 0 or self.max_backoff < 0 or self.backoff_factor <= 0:
            raise ValueError("backoff parameters must be non-negative")
        if self.max_crashes < 1:
            raise ValueError("max_crashes must be >= 1")
        if self.poison not in ("fail", "serial"):
            raise ValueError("poison must be 'fail' or 'serial'")

    def delay(self, failures: int) -> float:
        """Backoff before the next attempt after *failures* failures."""
        return min(
            self.backoff * self.backoff_factor ** max(failures - 1, 0),
            self.max_backoff,
        )


#: The engine's defaults when no policy is given: no retries, but the
#: crash-quarantine rules still protect the pool.
NO_RETRY = RetryPolicy(max_attempts=1)


@dataclass
class PlanError:
    """Structured outcome of a failed plan node.

    ``kind`` is one of ``"error"`` (the node raised), ``"timeout"``
    (per-node deadline blown), ``"crash"`` (the node was in flight when
    the worker pool died and was quarantined), ``"host_lost"`` (sharded
    execution: the node was in flight on a shard host that died and no
    retry attempt remained to reroute it), ``"cancelled"`` (the batch
    was torn down around it) or ``"upstream"`` (a dependency failed
    first, so the node never ran).
    """

    kind: str
    message: str
    exception: str = ""
    attempts: int = 1
    node: str = ""
    tag: object = field(default=None)

    def as_dict(self) -> dict:
        """JSON-ready form (the CLI's error payload)."""
        return {
            "kind": self.kind,
            "message": self.message,
            "exception": self.exception,
            "attempts": self.attempts,
            "node": self.node,
        }

    def __str__(self) -> str:
        origin = f" [{self.exception}]" if self.exception else ""
        return f"{self.kind} at {self.node or 'node'}{origin}: {self.message}"


class InjectedFault(RuntimeError):
    """The transient exception the ``raise`` fault kind throws."""


class FaultInjector:
    """Deterministic fault harness driven through a token directory.

    Each armed fault is one token file; whoever claims it (atomic
    ``os.rename``) executes it, so an armed count of N fires exactly N
    times across any number of workers and retries.  Activation is by
    environment variable (:data:`FAULT_DIR_ENV`): spawn the worker pool
    *after* :meth:`activate` so workers inherit it.
    """

    KINDS = ("kill-worker", "raise")

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._counter = 0

    # -- arming --------------------------------------------------------
    def arm(self, kind: str, tag: object, count: int = 1, node: str = "algo") -> None:
        """Arm *count* faults of *kind* against requests tagged *tag*.

        *node* picks which plan node of the request trips the fault:
        ``"algo"`` (default — the request's own mapping run),
        ``"grouping"`` (the shared grouping stage; note a grouping is
        tagged with the *first* request that needs it and its failure
        cascades to every consumer), or ``"any"``.
        """
        if kind not in self.KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; choose from {self.KINDS}")
        if node not in ("algo", "grouping", "any"):
            raise ValueError("node must be 'algo', 'grouping' or 'any'")
        for _ in range(count):
            name = f"{kind}__{_token_tag(tag)}__{node}__{self._counter}.token"
            self._counter += 1
            path = os.path.join(self.root, name)
            with open(path, "w") as fh:
                fh.write(kind)

    def pending(self, kind: Optional[str] = None) -> int:
        """Unclaimed tokens (optionally of one kind)."""
        prefix = f"{kind}__" if kind else ""
        return len(
            [
                n
                for n in os.listdir(self.root)
                if n.endswith(".token") and n.startswith(prefix)
            ]
        )

    def disarm(self) -> None:
        """Remove every unclaimed token."""
        for name in os.listdir(self.root):
            if name.endswith(".token"):
                try:
                    os.unlink(os.path.join(self.root, name))
                except OSError:
                    pass

    # -- activation ----------------------------------------------------
    def activate(self) -> None:
        os.environ[FAULT_DIR_ENV] = self.root

    def deactivate(self) -> None:
        if os.environ.get(FAULT_DIR_ENV) == self.root:
            del os.environ[FAULT_DIR_ENV]

    def __enter__(self) -> "FaultInjector":
        self.activate()
        return self

    def __exit__(self, *exc) -> None:
        self.deactivate()

    # -- direct-action faults (no worker coordination needed) ----------
    @staticmethod
    def corrupt_artifact(store, namespace: Optional[str] = None) -> int:
        """Garble every stored artifact file in place; returns count.

        Overwrites each file's head with junk bytes — the store's
        corruption-tolerant reads must turn these into misses (and the
        engine must recompute), never into exceptions or wrong data.
        """
        corrupted = 0
        targets = [namespace] if namespace else store._namespace_dirs()
        for ns in targets:
            directory = os.path.join(store.root, ns)
            if not os.path.isdir(directory):
                continue
            for name in os.listdir(directory):
                if not name.endswith(".npz"):
                    continue
                path = os.path.join(directory, name)
                with open(path, "r+b") as fh:
                    fh.write(b"\xde\xad\xbe\xef" * 8)
                corrupted += 1
        return corrupted

    @staticmethod
    def drop_link(machine, link_id: int):
        """A degraded copy of *machine* with one directed link dead."""
        return machine.degrade(dead_links=[int(link_id)])


def _token_tag(tag: object) -> str:
    """Filesystem-safe token label of a request tag."""
    text = repr(tag)
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in text)


def maybe_inject(request, node_kind: str = "algo") -> None:
    """Fire an armed fault matching *request* + *node_kind*, if any.

    Called by :func:`repro.api.executor.run_plan_node` before the node
    executes.  When no injector is active (the environment variable is
    unset — always, outside chaos tests) this is a single dict lookup.
    """
    root = os.environ.get(FAULT_DIR_ENV)
    if not root:
        return
    label = _token_tag(getattr(request, "tag", None))
    for kind in FaultInjector.KINDS:
        for scope in (node_kind, "any"):
            pattern = os.path.join(root, f"{kind}__{label}__{scope}__*.token")
            for path in sorted(glob.glob(pattern)):
                try:
                    os.rename(path, path + ".claimed")
                except OSError:
                    continue  # another worker claimed it first
                if kind == "kill-worker":
                    os._exit(KILL_EXIT_CODE)
                raise InjectedFault(
                    f"injected transient fault for tag "
                    f"{getattr(request, 'tag', None)!r}"
                )
