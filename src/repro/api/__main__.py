"""Entry point for ``python -m repro.api``."""

import sys

from repro.api.cli import main

sys.exit(main())
