"""``python -m repro.api`` — command-line front end of the MappingService.

Subcommands
-----------
``list``
    Show every registered mapper and its declared stage composition.
``map``
    Build a workload from a corpus matrix (generate → partition →
    task graph → sparse torus allocation), run one or more mapping
    algorithms through :class:`~repro.api.service.MappingService`, and
    print the fine-level metrics — as a table or as JSON.

Examples::

    python -m repro.api list
    python -m repro.api map --matrix cage15_like --algos UWH,UMC --json
    python -m repro.api map --matrix rgg_n23_like --procs 128 --ppn 4 \
        --algos DEF,UG,UWH --stats
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from repro.api.cache import ArtifactCache
from repro.api.registry import UnknownMapperError, get_spec, registered_mappers
from repro.api.request import MapRequest
from repro.api.service import MappingService
from repro.data.corpus import CORPUS, load_matrix
from repro.graph.task_graph import TaskGraph
from repro.hypergraph.model import Hypergraph
from repro.partition.toolbox import PARTITIONER_NAMES, get_partitioner
from repro.topology.allocation import AllocationSpec, SparseAllocator, torus_for_job

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api",
        description="Registry-driven topology-aware task mapping service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show registered mappers and their stages")
    p_list.add_argument("--json", action="store_true", help="emit JSON")

    p_map = sub.add_parser("map", help="map a corpus matrix with one or more algorithms")
    p_map.add_argument(
        "--matrix",
        required=True,
        help=f"corpus matrix name, e.g. {CORPUS[0].name!r}",
    )
    p_map.add_argument(
        "--algos",
        default="UG,UWH",
        help="comma-separated mapper names (default: UG,UWH)",
    )
    p_map.add_argument("--procs", type=int, default=64, help="MPI ranks (default 64)")
    p_map.add_argument("--ppn", type=int, default=4, help="processors per node")
    p_map.add_argument(
        "--rows-per-unit",
        type=int,
        default=120,
        help="matrix scale: rows per processor unit (default 120)",
    )
    p_map.add_argument(
        "--partitioner",
        default="PATOH",
        help=f"one of {', '.join(PARTITIONER_NAMES)}",
    )
    p_map.add_argument("--seed", type=int, default=0)
    p_map.add_argument("--delta", type=int, default=8, help="refinement budget Δ")
    p_map.add_argument(
        "--fragmentation",
        type=float,
        default=0.3,
        help="sparse-allocation fragmentation (default 0.3)",
    )
    p_map.add_argument("--json", action="store_true", help="emit JSON")
    p_map.add_argument(
        "--stats", action="store_true", help="print artifact-cache statistics"
    )
    p_map.add_argument(
        "--cache-entries",
        type=int,
        default=None,
        metavar="N",
        help="bound the artifact cache to N entries (LRU eviction)",
    )
    p_map.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        metavar="N",
        help="bound the artifact cache to ~N resident bytes (LRU eviction)",
    )
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    names = registered_mappers()
    if args.json:
        payload = {
            name: {
                "stages": list(get_spec(name).stage_names()),
                "description": get_spec(name).description,
            }
            for name in names
        }
        print(json.dumps(payload, indent=1))
        return 0
    print(f"{'mapper':>8s}  {'stages':<40s} description")
    print("-" * 78)
    for name in names:
        spec = get_spec(name)
        chain = " → ".join(spec.stage_names())
        print(f"{name:>8s}  {chain:<40s} {spec.description}")
    return 0


def _build_workload(args: argparse.Namespace):
    """Corpus matrix → partitioned task graph + allocated machine."""
    entry = next((e for e in CORPUS if e.name == args.matrix), None)
    if entry is None:
        raise ValueError(
            f"unknown matrix {args.matrix!r}; corpus: {[e.name for e in CORPUS]}"
        )
    if args.procs % args.ppn:
        raise ValueError(f"--procs {args.procs} not divisible by --ppn {args.ppn}")
    matrix = load_matrix(entry, args.rows_per_unit, args.seed)
    h = Hypergraph.from_matrix(matrix)
    tool = get_partitioner(args.partitioner)
    part = tool.partition(matrix, args.procs, seed=args.seed, hypergraph=h).part
    loads = np.bincount(part, weights=h.loads, minlength=args.procs)
    tg = TaskGraph.from_comm_triplets(
        args.procs, h.comm_triplets(part, args.procs), loads=loads
    )
    nodes = args.procs // args.ppn
    machine = SparseAllocator(torus_for_job(nodes)).allocate(
        AllocationSpec(
            num_nodes=nodes,
            procs_per_node=args.ppn,
            fragmentation=args.fragmentation,
            seed=args.seed,
        )
    )
    return tg, machine


def _cmd_map(args: argparse.Namespace) -> int:
    algos = tuple(a.strip() for a in args.algos.split(",") if a.strip())
    if not algos:
        raise ValueError("--algos needs at least one mapper name")
    for a in algos:  # fail fast, before the workload build
        get_spec(a)

    tg, machine = _build_workload(args)
    service = MappingService(
        cache=ArtifactCache(
            max_entries=args.cache_entries, max_bytes=args.cache_bytes
        )
    )
    responses = service.map_batch(
        MapRequest(
            task_graph=tg,
            machine=machine,
            algorithms=algos,
            seed=args.seed,
            delta=args.delta,
            evaluate=True,
        )
    )

    if args.json:
        payload = {
            "matrix": args.matrix,
            "partitioner": args.partitioner,
            "procs": args.procs,
            "nodes": machine.num_alloc_nodes,
            "torus": list(machine.torus.dims),
            "seed": args.seed,
            "results": [
                {
                    "algorithm": r.algorithm,
                    "metrics": {
                        k: float(v) for k, v in r.metrics.as_dict().items()
                    },
                    "map_time_s": r.map_time,
                    "prep_time_s": r.prep_time,
                    "stage_times_s": {k: float(v) for k, v in r.stage_times.items()},
                    "grouping_cached": r.grouping_cached,
                }
                for r in responses
            ],
        }
        if args.stats:
            payload["cache_stats"] = {
                ns: {
                    "hits": s.hits,
                    "misses": s.misses,
                    "size": s.size,
                    "evictions": s.evictions,
                    "bytes": s.bytes,
                }
                for ns, s in service.cache.stats().items()
            }
            payload["cache_total_bytes"] = service.cache.total_bytes
        print(json.dumps(payload, indent=1))
        return 0

    print(
        f"{args.matrix} via {args.partitioner}: {args.procs} ranks on "
        f"{machine.num_alloc_nodes} nodes (torus {machine.torus.dims})"
    )
    print(
        f"\n{'mapper':>8s} {'TH':>9s} {'WH':>11s} {'MMC':>6s} {'MC':>9s} "
        f"{'map(ms)':>8s} {'shared-grouping':>16s}"
    )
    print("-" * 72)
    for r in responses:
        m = r.metrics
        shared = "hit" if r.grouping_cached else "computed"
        spec = get_spec(r.algorithm)
        if spec.group_in_map_time:
            shared = "own"
        print(
            f"{r.algorithm:>8s} {m.th:9.0f} {m.wh:11.0f} {m.mmc:6.0f} "
            f"{m.mc:9.2f} {r.map_time * 1e3:8.2f} {shared:>16s}"
        )
    if args.stats:
        print("\nArtifact cache:")
        print(service.cache.format_stats())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        return _cmd_map(args)
    except (ValueError, UnknownMapperError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
