"""``python -m repro.api`` — command-line front end of the MappingService.

Subcommands
-----------
``list``
    Show every registered mapper and its declared stage composition.
``map``
    Build a workload from a corpus matrix (generate → partition →
    task graph → sparse torus allocation), run one or more mapping
    algorithms through :class:`~repro.api.service.MappingService`, and
    print the fine-level metrics — as a table or as JSON.
``map-batch``
    Run many requests from a JSON manifest through the parallel
    execution engine (``--backend serial|thread|process``,
    ``--workers N``, ``--store-dir`` for the cross-process artifact
    store) and report per-request results plus batch throughput.
    Fault-tolerance knobs: ``--retries N`` (exponential backoff),
    ``--node-timeout SEC`` (per-node deadline) and ``--partial``
    (failed requests become structured error entries instead of
    aborting the batch).

    With ``--follow``, the manifest becomes a JSONL *stream* (``-`` =
    stdin) and the process turns into a long-running server: one
    :class:`~repro.api.pool.ExecutorPool` and one warm artifact cache
    serve every incoming batch, so pool spawn and cache warm-up are
    paid once, not per batch.  Each input line is a request object, a
    list of request objects (one batch), or ``{"defaults": {...}}`` to
    update the stream's defaults; each served batch emits one JSON
    line on stdout.  ``--idle-timeout`` reaps idle workers between
    bursts (they respawn lazily).
``serve``
    Run the network front end of :mod:`repro.serve`: a TCP server
    speaking length-prefixed JSON with admission control
    (``--max-pending`` load shedding), weighted-fair-queuing tenant
    isolation (``--tenant-weight``), request coalescing
    (``--coalesce-window`` / ``--max-batch``) and per-endpoint latency
    percentiles via its ``stats`` op.
``stats``
    Query a running ``serve`` instance's observability snapshot:
    queue depths, shed/coalesce counters, p50/p95/p99 latencies, pool
    health and cache statistics.
``store-serve``
    Run a remote content-addressed artifact store: a TCP object server
    any number of engines and shard hosts layer under their local
    store tiers (``--store-remote HOST:PORT``).
``shard-serve``
    Run one shard host for multi-host batch execution: it executes
    individual plan nodes for a coordinating ``map-batch --hosts ...``
    process, sharing artifacts through the ``store-serve`` store.

Examples::

    python -m repro.api list
    python -m repro.api map --matrix cage15_like --algos UWH,UMC --json
    python -m repro.api map --matrix rgg_n23_like --procs 128 --ppn 4 \
        --algos DEF,UG,UWH --stats
    python -m repro.api map-batch --manifest reqs.json --workers 4 \
        --backend process --json
    ... | python -m repro.api map-batch --follow --manifest - \
        --backend process --workers 4 --idle-timeout 30
    python -m repro.api serve --listen 127.0.0.1:8765 --backend process \
        --workers 4 --max-pending 64 --tenant-weight batch=1 \
        --tenant-weight interactive=4
    python -m repro.api stats --connect 127.0.0.1:8765

The manifest is either a JSON list of request objects or
``{"defaults": {...}, "requests": [...]}``; each request names a corpus
``matrix`` and optionally ``algos``, ``procs``, ``ppn``,
``rows_per_unit``, ``partitioner``, ``seed``, ``delta``,
``fragmentation`` and ``tag`` (defaults fill the gaps)::

    {"defaults": {"procs": 64, "ppn": 4, "algos": "DEF,UG,UWH"},
     "requests": [{"matrix": "cage15_like"},
                  {"matrix": "rgg_n23_like", "algos": ["UMC"], "seed": 3}]}
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import OrderedDict
from typing import List, Optional

from repro.api.cache import ArtifactCache
from repro.api.executor import BACKENDS
from repro.api.registry import UnknownMapperError, get_spec, registered_mappers
from repro.api.request import MapRequest
from repro.api.service import MappingService
from repro.api.shm import STORE_TIERS, make_store
from repro.data.corpus import CORPUS
from repro.kernels.backend import (
    ENV_VAR as KERNEL_ENV_VAR,
    KERNEL_BACKENDS,
    backend_info,
    set_backend,
)
from repro.partition.toolbox import PARTITIONER_NAMES
from repro.serve.protocol import (
    ProtocolError,
    build_workload,
    error_payload,
    parse_stream_line,
    requests_from_entries,
    response_payload,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api",
        description="Registry-driven topology-aware task mapping service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show registered mappers and their stages")
    p_list.add_argument("--json", action="store_true", help="emit JSON")

    p_map = sub.add_parser("map", help="map a corpus matrix with one or more algorithms")
    p_map.add_argument(
        "--matrix",
        required=True,
        help=f"corpus matrix name, e.g. {CORPUS[0].name!r}",
    )
    p_map.add_argument(
        "--algos",
        default="UG,UWH",
        help="comma-separated mapper names (default: UG,UWH)",
    )
    p_map.add_argument("--procs", type=int, default=64, help="MPI ranks (default 64)")
    p_map.add_argument("--ppn", type=int, default=4, help="processors per node")
    p_map.add_argument(
        "--rows-per-unit",
        type=int,
        default=120,
        help="matrix scale: rows per processor unit (default 120)",
    )
    p_map.add_argument(
        "--partitioner",
        default="PATOH",
        help=f"one of {', '.join(PARTITIONER_NAMES)}",
    )
    p_map.add_argument("--seed", type=int, default=0)
    p_map.add_argument("--delta", type=int, default=8, help="refinement budget Δ")
    p_map.add_argument(
        "--fragmentation",
        type=float,
        default=0.3,
        help="sparse-allocation fragmentation (default 0.3)",
    )
    p_map.add_argument("--json", action="store_true", help="emit JSON")
    p_map.add_argument(
        "--stats", action="store_true", help="print artifact-cache statistics"
    )
    _add_engine_args(p_map)

    p_batch = sub.add_parser(
        "map-batch",
        help="run many requests from a JSON manifest through the engine",
        description="Run many mapping requests from a JSON manifest through "
        "the parallel execution engine.  Note: the manifest's workloads "
        "(matrix generation + partitioning) are built sequentially in this "
        "process before the engine starts; --backend/--workers parallelize "
        "the mapping work only.",
    )
    p_batch.add_argument(
        "--manifest",
        required=True,
        help="JSON file: list of requests, or {defaults, requests}; with "
        "--follow: a JSONL stream of request objects/batches ('-' = stdin)",
    )
    p_batch.add_argument("--json", action="store_true", help="emit JSON")
    p_batch.add_argument(
        "--stats", action="store_true", help="print artifact-cache statistics"
    )
    p_batch.add_argument(
        "--follow",
        action="store_true",
        help="serve mode: read request batches line by line from the "
        "manifest stream, keeping one worker pool and warm caches alive "
        "across batches; one JSON result line per batch",
    )
    p_batch.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="serve mode: reap idle pool workers after SEC seconds "
        "(they respawn lazily on the next batch)",
    )
    _add_engine_args(p_batch)

    p_serve = sub.add_parser(
        "serve",
        help="run the network mapping server (length-prefixed JSON over TCP)",
        description="Run the asyncio network front end: admission control "
        "with load shedding (--max-pending), weighted-fair-queuing tenant "
        "isolation (--tenant-weight), request coalescing into planner-"
        "deduped batches (--coalesce-window/--max-batch) and a stats op "
        "exposing p50/p95/p99 per endpoint.  Prints one "
        '{"listening": [host, port]} line on stdout once bound; SIGINT/'
        "SIGTERM (or a client shutdown op) drain in-flight work and exit.",
    )
    p_serve.add_argument(
        "--listen",
        default="127.0.0.1:8765",
        metavar="HOST:PORT",
        help="bind address (default 127.0.0.1:8765; port 0 = ephemeral)",
    )
    p_serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        metavar="N",
        help="admission bound: map requests admitted but unanswered; "
        "past it new requests are shed with an 'overloaded' error "
        "(default 64)",
    )
    p_serve.add_argument(
        "--coalesce-window",
        type=float,
        default=0.005,
        metavar="SEC",
        help="batching window: seconds the dispatcher collects concurrent "
        "requests before folding them into one engine batch (default "
        "0.005; 0 dispatches eagerly)",
    )
    p_serve.add_argument(
        "--max-batch",
        type=int,
        default=16,
        metavar="N",
        help="most requests folded into one map_batch call (default 16)",
    )
    p_serve.add_argument(
        "--max-in-flight",
        type=int,
        default=2,
        metavar="N",
        help="concurrent plans executing in the async service (default 2)",
    )
    p_serve.add_argument(
        "--tenant-weight",
        action="append",
        default=[],
        metavar="NAME=W",
        help="weighted-fair-queuing weight for a tenant (repeatable; "
        "higher = more service)",
    )
    p_serve.add_argument(
        "--default-tenant-weight",
        type=float,
        default=1.0,
        metavar="W",
        help="weight of tenants not named by --tenant-weight (default 1)",
    )
    p_serve.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="reap idle pool workers after SEC seconds "
        "(they respawn lazily on the next request)",
    )
    _add_engine_args(p_serve)

    p_stats = sub.add_parser(
        "stats",
        help="query a running server's observability snapshot",
        description="Connect to a running 'serve' instance and print its "
        "stats op: queue depths per tenant, shed/coalesce counters, "
        "per-endpoint latency percentiles, async in-flight counts, "
        "ExecutorPool health and artifact-cache statistics.",
    )
    p_stats.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address of the running server",
    )
    p_stats.add_argument("--json", action="store_true", help="emit JSON")

    p_store = sub.add_parser(
        "store-serve",
        help="run a remote content-addressed artifact store",
        description="Serve a content-addressed artifact store over TCP. "
        "Engines and shard hosts layer it under their local tiers via "
        "--store-remote HOST:PORT: writes replicate in, reads promote "
        "into local shm/memory.  The on-disk layout is identical to a "
        "local --store-dir, so an existing store directory can be served "
        'as-is.  Prints one {"listening": [host, port]} line once bound; '
        "SIGINT/SIGTERM shut down cleanly.",
    )
    p_store.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="bind address (default 127.0.0.1:0 = ephemeral port)",
    )
    p_store.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="store root directory (default: a private temp directory)",
    )

    p_shard = sub.add_parser(
        "shard-serve",
        help="run one shard host for multi-host batch execution",
        description="Serve plan-node execution for a coordinating "
        "'map-batch --hosts ...' process.  The host's cache layers over "
        "its local store tiers with the cluster's --store-remote store "
        "underneath, so batch payloads stream in and shared artifacts "
        "(groupings, DEF baselines) replicate out to sibling hosts.  "
        'Prints one {"listening": [host, port]} line once bound; SIGINT/'
        "SIGTERM drain in-flight nodes and exit.",
    )
    p_shard.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="bind address (default 127.0.0.1:0 = ephemeral port)",
    )
    p_shard.add_argument(
        "--capacity",
        type=int,
        default=None,
        metavar="N",
        help="concurrent plan nodes this host advertises (default: CPUs)",
    )
    p_shard.add_argument(
        "--host-id",
        default=None,
        metavar="ID",
        help="stable identity reported to coordinators (default: pid-based)",
    )
    _add_engine_args(p_shard)
    return parser


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    """Engine + cache knobs shared by ``map`` and ``map-batch``."""
    parser.add_argument(
        "--cache-entries",
        type=int,
        default=None,
        metavar="N",
        help="bound the artifact cache to N entries (LRU eviction)",
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        metavar="N",
        help="bound the artifact cache to ~N resident bytes (LRU eviction)",
    )
    parser.add_argument(
        "--backend",
        default="serial",
        choices=BACKENDS,
        help="execution backend of the batch engine (default serial)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="pool width for the thread/process backends (default: CPUs)",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="cross-process artifact store directory (persists groupings, "
        "route tables and DEF baselines across runs and pool workers)",
    )
    parser.add_argument(
        "--store-tier",
        default="auto",
        choices=STORE_TIERS,
        help="artifact store tier: shm (shared-memory segments + disk "
        "write-through; pool workers attach arrays zero-copy), disk "
        "(files only), or auto-detect (default; shm where "
        "/dev/shm-style segments work, disk elsewhere)",
    )
    parser.add_argument(
        "--store-remote",
        default=None,
        metavar="HOST:PORT",
        help="remote artifact store (a running 'store-serve' process) "
        "layered under the local store tiers: writes replicate to it, "
        "reads promote from it — required for --hosts runs whose shard "
        "hosts do not share a filesystem",
    )
    parser.add_argument(
        "--hosts",
        default=None,
        metavar="H1:P1,H2:P2,...",
        help="shard-host addresses (running 'shard-serve' processes); "
        "when given, map-batch runs on the multi-host coordinator "
        "instead of a local backend",
    )
    parser.add_argument(
        "--steal-threshold",
        type=int,
        default=2,
        metavar="N",
        help="sharded runs: ready-backlog depth above which an idle "
        "host steals unpinned nodes from a hot shard (default 2)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry a failing plan node up to N extra times with "
        "exponential backoff (default: no retries)",
    )
    parser.add_argument(
        "--node-timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="per-node deadline on the thread/process backends; a node "
        "past it fails with a structured timeout error",
    )
    parser.add_argument(
        "--partial",
        action="store_true",
        help="return partial batch results: a failed request becomes a "
        "structured error entry instead of aborting the whole batch "
        "(--follow mode always serves partial results)",
    )
    parser.add_argument(
        "--kernel-backend",
        default=None,
        choices=("auto",) + KERNEL_BACKENDS,
        help="kernel implementation tier: numba (JIT-compiled hot paths), "
        "numpy (always-available reference), or auto-detect (default; "
        "numba when installed).  An unsatisfiable numba request falls "
        "back to numpy with the reason reported",
    )


def _install_kernel_backend(args: argparse.Namespace) -> None:
    """Install the requested kernel backend for this process and its pools.

    An explicit ``--kernel-backend`` is mirrored into the environment so
    process-pool workers — one-shot engine pools and persistent
    ``ExecutorPool`` workers alike — resolve the same choice on spawn.
    """
    choice = getattr(args, "kernel_backend", None)
    if choice is not None:
        import os

        os.environ[KERNEL_ENV_VAR] = choice
    set_backend(choice)


def _cmd_list(args: argparse.Namespace) -> int:
    names = registered_mappers()
    if args.json:
        payload = {
            name: {
                "stages": list(get_spec(name).stage_names()),
                "description": get_spec(name).description,
            }
            for name in names
        }
        payload["kernel_backend"] = backend_info()
        print(json.dumps(payload, indent=1))
        return 0
    print(f"{'mapper':>8s}  {'stages':<40s} description")
    print("-" * 78)
    for name in names:
        spec = get_spec(name)
        chain = " → ".join(spec.stage_names())
        print(f"{name:>8s}  {chain:<40s} {spec.description}")
    info = backend_info()
    note = f" — {info['fallback_reason']}" if info["fallback_reason"] else ""
    print(
        f"\nkernel backend: {info['backend']} "
        f"(requested {info['requested']}){note}"
    )
    return 0


def _parse_hosts(value: Optional[str]) -> tuple:
    """``--hosts`` comma list -> tuple of ``host:port`` strings."""
    if not value:
        return ()
    return tuple(h.strip() for h in value.split(",") if h.strip())


def _engine_config(args: argparse.Namespace):
    """The CLI's :class:`~repro.api.config.EngineConfig` from its flags."""
    from repro.api.config import EngineConfig

    return EngineConfig(
        backend=args.backend,
        workers=args.workers,
        store_dir=args.store_dir,
        store_tier=args.store_tier,
        store_remote=getattr(args, "store_remote", None),
        kernel_backend=getattr(args, "kernel_backend", None),
        cache_entries=args.cache_entries,
        cache_bytes=args.cache_bytes,
        hosts=_parse_hosts(getattr(args, "hosts", None)),
        steal_threshold=getattr(args, "steal_threshold", 2),
    )


def _build_service(args: argparse.Namespace) -> MappingService:
    """Service wired to the CLI's cache bounds, store and backend flags."""
    return MappingService(config=_engine_config(args))


def _fault_kwargs(args: argparse.Namespace, *, partial: bool = False) -> dict:
    """``map_batch`` fault-tolerance kwargs from the CLI flags."""
    from repro.api.fault import RetryPolicy

    kwargs: dict = {}
    if getattr(args, "retries", None):
        kwargs["retry"] = RetryPolicy(max_attempts=args.retries + 1)
    if getattr(args, "node_timeout", None) is not None:
        kwargs["node_timeout"] = args.node_timeout
    if partial or getattr(args, "partial", False):
        kwargs["on_error"] = "partial"
    return kwargs


def _cmd_map(args: argparse.Namespace) -> int:
    _install_kernel_backend(args)
    algos = tuple(a.strip() for a in args.algos.split(",") if a.strip())
    if not algos:
        raise ValueError("--algos needs at least one mapper name")
    for a in algos:  # fail fast, before the workload build
        get_spec(a)

    tg, machine = build_workload(
        args.matrix,
        args.procs,
        args.ppn,
        args.rows_per_unit,
        args.partitioner,
        args.seed,
        args.fragmentation,
    )
    service = _build_service(args)
    responses = service.map_batch(
        MapRequest(
            task_graph=tg,
            machine=machine,
            algorithms=algos,
            seed=args.seed,
            delta=args.delta,
            evaluate=True,
        ),
        store_tier=args.store_tier,
        **_fault_kwargs(args),
    )

    if args.json:
        payload = {
            "matrix": args.matrix,
            "partitioner": args.partitioner,
            "procs": args.procs,
            "nodes": machine.num_alloc_nodes,
            "torus": list(machine.torus.dims),
            "seed": args.seed,
            "results": [
                {
                    "algorithm": r.algorithm,
                    "error": r.error.as_dict(),
                }
                if not r.ok
                else {
                    "algorithm": r.algorithm,
                    "metrics": {
                        k: float(v) for k, v in r.metrics.as_dict().items()
                    },
                    "map_time_s": r.map_time,
                    "prep_time_s": r.prep_time,
                    "stage_times_s": {k: float(v) for k, v in r.stage_times.items()},
                    "grouping_cached": r.grouping_cached,
                }
                for r in responses
            ],
        }
        if args.stats:
            payload["cache_stats"] = _stats_payload(service.cache)
            payload["cache_total_bytes"] = service.cache.total_bytes
            if service.cache.store is not None:
                payload["store_files"] = {
                    ns: service.cache.store.file_count(ns)
                    for ns in sorted(service.cache.store.namespaces)
                }
                payload["store_stats"] = service.cache.store.stats()
        print(json.dumps(payload, indent=1))
        return 0

    print(
        f"{args.matrix} via {args.partitioner}: {args.procs} ranks on "
        f"{machine.num_alloc_nodes} nodes (torus {machine.torus.dims})"
    )
    print(
        f"\n{'mapper':>8s} {'TH':>9s} {'WH':>11s} {'MMC':>6s} {'MC':>9s} "
        f"{'map(ms)':>8s} {'shared-grouping':>16s}"
    )
    print("-" * 72)
    for r in responses:
        if not r.ok:
            print(f"{r.algorithm:>8s} error: {r.error}")
            continue
        m = r.metrics
        shared = "hit" if r.grouping_cached else "computed"
        spec = get_spec(r.algorithm)
        if spec.group_in_map_time:
            shared = "own"
        print(
            f"{r.algorithm:>8s} {m.th:9.0f} {m.wh:11.0f} {m.mmc:6.0f} "
            f"{m.mc:9.2f} {r.map_time * 1e3:8.2f} {shared:>16s}"
        )
    if args.stats:
        _print_stats(service, args.backend)
    return 0


#: Built (task graph, machine) workloads a --follow server keeps warm;
#: least-recently-used entries beyond this are dropped after each batch.
_FOLLOW_WORKLOAD_LIMIT = 32


def _manifest_requests(args: argparse.Namespace) -> List[MapRequest]:
    """Parse the manifest into MapRequests (workloads built once per key)."""
    with open(args.manifest) as fh:
        payload = json.load(fh)
    if isinstance(payload, list):
        defaults, entries = {}, payload
    elif isinstance(payload, dict):
        defaults = payload.get("defaults", {})
        entries = payload.get("requests")
    else:
        raise ValueError("manifest must be a JSON list or object")
    if not isinstance(entries, list) or not entries:
        raise ValueError("manifest needs a non-empty 'requests' list")
    return requests_from_entries(entries, defaults, OrderedDict())


def _cmd_map_batch(args: argparse.Namespace) -> int:
    _install_kernel_backend(args)
    if args.follow:
        return _cmd_follow(args)
    requests = _manifest_requests(args)
    service = _build_service(args)
    t0 = time.perf_counter()
    responses = service.map_batch(
        requests, store_tier=args.store_tier, **_fault_kwargs(args)
    )
    elapsed = time.perf_counter() - t0
    errors = sum(1 for r in responses if not r.ok)
    hosts = _parse_hosts(getattr(args, "hosts", None))
    summary = {
        "backend": "sharded" if hosts else args.backend,
        "workers": args.workers,
        "requests": len(requests),
        "responses": len(responses),
        "errors": errors,
        "elapsed_s": elapsed,
        "requests_per_s": len(requests) / elapsed if elapsed > 0 else 0.0,
    }
    if hosts:
        summary["hosts"] = list(hosts)

    if args.json:
        payload = {
            **summary,
            "results": [response_payload(r) for r in responses],
        }
        if args.stats:
            payload["cache_stats"] = _stats_payload(service.cache)
            if service.cache.store is not None:
                payload["store_files"] = {
                    ns: service.cache.store.file_count(ns)
                    for ns in sorted(service.cache.store.namespaces)
                }
                payload["store_stats"] = service.cache.store.stats()
        print(json.dumps(payload, indent=1))
        return 0

    print(
        f"{summary['requests']} requests -> {summary['responses']} responses "
        f"in {elapsed:.3f} s ({summary['requests_per_s']:.2f} req/s, "
        f"backend={args.backend}, workers={args.workers or 'auto'})"
    )
    print(f"\n{'tag':>6s} {'mapper':>8s} {'WH':>11s} {'MC':>9s} {'map(ms)':>8s}")
    print("-" * 48)
    for r in responses:
        if not r.ok:
            print(f"{str(r.tag):>6s} {r.algorithm:>8s} error: {r.error}")
            continue
        m = r.metrics
        print(
            f"{str(r.tag):>6s} {r.algorithm:>8s} {m.wh:11.0f} {m.mc:9.2f} "
            f"{r.map_time * 1e3:8.2f}"
        )
    if args.stats:
        _print_stats(service, args.backend)
    return 0


def _cmd_follow(args: argparse.Namespace) -> int:
    """Serve mode: one pool + warm caches over a JSONL request stream.

    Reads the manifest stream line by line (``-`` = stdin).  A line is
    a request object, a list of request objects (one batch), or
    ``{"defaults": {...}}`` updating the stream's defaults.  Every
    served batch prints one JSON line; malformed lines report an error
    line and the server keeps going.  Workloads, the artifact cache and
    the ExecutorPool persist across batches — that is the point.

    Fault behaviour: batches always run ``on_error="partial"`` (a
    long-running server must not die on one poisoned request — the
    failed entry becomes a structured ``error`` result), and SIGINT /
    SIGTERM *drain*: the in-flight batch finishes and emits its result
    line, then the server shuts down cleanly.
    """
    import signal

    from repro.api.pool import POOL_BACKENDS, ExecutorPool

    pool = None
    if args.backend in POOL_BACKENDS:
        pool = ExecutorPool(
            args.backend,
            workers=args.workers,
            store_dir=args.store_dir,
            idle_timeout=args.idle_timeout,
            kernel_backend=args.kernel_backend,
            store_tier=args.store_tier,
            store_remote=args.store_remote,
        )
    service = MappingService(
        # The front-end cache layers over the pool's store so the
        # cache bounds and --stats describe the serving configuration
        # on every backend (process workers share the same store).
        cache=ArtifactCache(
            max_entries=args.cache_entries,
            max_bytes=args.cache_bytes,
            store=pool.store if pool is not None else None,
        ),
        backend=args.backend,
        workers=args.workers,
        pool=pool,
    )
    stream = sys.stdin if args.manifest == "-" else open(args.manifest)
    # Built workloads are LRU-bounded: a long-running server fed ever-
    # changing matrices must not accumulate task graphs without limit.
    workloads: "OrderedDict" = OrderedDict()
    defaults: dict = {}
    batches = served = failed = 0
    store_counts = {}
    fault_kwargs = _fault_kwargs(args, partial=True)

    # Graceful drain: a signal arriving mid-batch merely sets the flag —
    # the batch finishes and its result line is emitted before the loop
    # breaks.  A signal while idle (blocked reading the stream) exits
    # immediately via KeyboardInterrupt; there is nothing to drain.
    state = {"in_batch": False, "stop": None}

    def _request_stop(signum, frame):
        state["stop"] = signum
        if not state["in_batch"]:
            raise KeyboardInterrupt

    previous_handlers = {}
    try:
        for sig in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[sig] = signal.signal(sig, _request_stop)
    except ValueError:
        previous_handlers = {}  # not the main thread (in-process tests)

    t_start = time.perf_counter()
    try:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                kind, payload = parse_stream_line(line)
                if kind == "defaults":
                    defaults = {**defaults, **payload}
                    continue
                requests = requests_from_entries(payload, defaults, workloads)
                state["in_batch"] = True
                try:
                    t0 = time.perf_counter()
                    responses = service.map_batch(
                        requests,
                        store_tier=args.store_tier,
                        **fault_kwargs,
                    )
                    elapsed = time.perf_counter() - t0
                finally:
                    state["in_batch"] = False
            except (ValueError, KeyError, TypeError) as exc:
                # ProtocolError carries the structured PlanError-shaped
                # dict the network server emits; anything else is
                # wrapped into the same shape so stream consumers see
                # exactly one malformed-input schema.
                error = (
                    exc.as_dict()
                    if isinstance(exc, ProtocolError)
                    else error_payload(
                        "bad_request", str(exc), exception=type(exc).__name__
                    )
                )
                print(
                    json.dumps({"line": lineno, "error": error}), flush=True
                )
                continue
            batches += 1
            served += len(requests)
            errors = sum(1 for r in responses if not r.ok)
            failed += errors
            while len(workloads) > _FOLLOW_WORKLOAD_LIMIT:
                workloads.popitem(last=False)
            print(
                json.dumps(
                    {
                        "batch": batches,
                        "line": lineno,
                        "requests": len(requests),
                        "errors": errors,
                        "elapsed_s": elapsed,
                        "results": [response_payload(r) for r in responses],
                    }
                ),
                flush=True,
            )
            if state["stop"] is not None:
                break
    except KeyboardInterrupt:
        pass  # idle-time signal: nothing in flight, exit the serve loop
    finally:
        for sig, handler in previous_handlers.items():
            signal.signal(sig, handler)
        if stream is not sys.stdin:
            stream.close()
        if pool is not None:
            if args.stats:
                # Process workers keep private caches; the shared store
                # is the observable footprint — count it before the
                # shutdown (which may remove a temporary store).
                store = pool.store
                store_counts = {
                    ns: store.file_count(ns)
                    for ns in sorted(store.namespaces)
                    if store.file_count(ns)
                }
            pool.shutdown()
    total = time.perf_counter() - t_start
    if state["stop"] is not None:
        try:
            signame = signal.Signals(state["stop"]).name
        except ValueError:
            signame = str(state["stop"])
        print(f"received {signame}; drained in-flight work", file=sys.stderr)
    print(
        f"served {batches} batches / {served} requests "
        f"({failed} failed) in {total:.3f} s "
        f"(backend={args.backend}, workers={args.workers or 'auto'}, "
        f"pool spawns={pool.spawn_count if pool is not None else 0}, "
        f"pool restarts={pool.restarts if pool is not None else 0})",
        file=sys.stderr,
    )
    if args.stats:
        print(service.cache.format_stats(), file=sys.stderr)
        if store_counts:
            summary = ", ".join(f"{ns}: {n}" for ns, n in store_counts.items())
            print(f"Pool artifact store: {summary}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the network server until a signal or client ``shutdown`` op.

    The serving wiring mirrors ``--follow``: one :class:`ExecutorPool`
    (when the backend supports one) and one front-end cache layered
    over the pool's store live for the whole run, so spawn and warm-up
    costs are paid once.  On top sits the asyncio
    :class:`~repro.serve.server.MappingServer` with its admission /
    fairness / coalescing machinery.  Once bound, one
    ``{"listening": [host, port]}`` line goes to stdout (flushed — the
    CI smoke job reads it to discover an ephemeral port); the exit
    summary goes to stderr.
    """
    import asyncio
    import signal

    from repro.api.pool import POOL_BACKENDS, ExecutorPool
    from repro.serve.client import parse_address
    from repro.serve.server import MappingServer

    _install_kernel_backend(args)
    host, port = parse_address(args.listen)
    weights = {}
    for item in args.tenant_weight:
        name, sep, value = item.partition("=")
        if not sep or not name:
            raise ValueError(f"--tenant-weight {item!r} is not NAME=WEIGHT")
        weights[name] = float(value)
    fault = _fault_kwargs(args)

    pool = None
    if args.backend in POOL_BACKENDS:
        pool = ExecutorPool(
            args.backend,
            workers=args.workers,
            store_dir=args.store_dir,
            idle_timeout=args.idle_timeout,
            kernel_backend=args.kernel_backend,
            store_tier=args.store_tier,
            store_remote=args.store_remote,
        )
    store = pool.store if pool is not None else (
        make_store(
            args.store_dir, tier=args.store_tier, remote=args.store_remote
        )
        if args.store_dir is not None
        else None
    )
    snapshot: dict = {}

    async def _amain() -> None:
        server = MappingServer(
            pool=pool,
            host=host,
            port=port,
            max_pending=args.max_pending,
            coalesce_window=args.coalesce_window,
            max_batch=args.max_batch,
            tenant_weights=weights or None,
            default_tenant_weight=args.default_tenant_weight,
            retry=fault.get("retry"),
            node_timeout=fault.get("node_timeout"),
            max_in_flight=args.max_in_flight,
            cache=ArtifactCache(
                max_entries=args.cache_entries,
                max_bytes=args.cache_bytes,
                store=store,
            ),
            backend=args.backend,
            workers=args.workers,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, ValueError):
                pass  # non-main thread (in-process tests)
        bound = await server.start()
        print(json.dumps({"listening": list(bound)}), flush=True)
        try:
            await server.serve_until(stop)
        finally:
            snapshot.update(server.stats_payload())

    try:
        asyncio.run(_amain())
    finally:
        if pool is not None:
            pool.shutdown()
    counters = snapshot.get("counters", {})
    lat = snapshot.get("latency", {}).get("map", {})
    print(
        f"served {counters.get('completed', 0)} requests "
        f"({counters.get('shed', 0)} shed, "
        f"{counters.get('deadline_expired', 0)} expired, "
        f"{counters.get('result_errors', 0)} result errors) over "
        f"{counters.get('dispatches', 0)} dispatches; "
        f"map p50={lat.get('p50_ms', 0.0):.1f} ms "
        f"p99={lat.get('p99_ms', 0.0):.1f} ms "
        f"(backend={args.backend}, workers={args.workers or 'auto'})",
        file=sys.stderr,
    )
    return 0


def _serve_until_signal(server, *, what: str) -> None:
    """Print the listening line, run *server* until SIGINT/SIGTERM."""
    import signal
    import threading

    server.start()
    print(json.dumps({"listening": list(server.address)}), flush=True)
    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    previous = {}
    try:
        for sig in (signal.SIGINT, signal.SIGTERM):
            previous[sig] = signal.signal(sig, _request_stop)
    except ValueError:
        previous = {}  # not the main thread (in-process tests)
    try:
        while not stop.wait(timeout=0.5):
            pass
    except KeyboardInterrupt:
        pass
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.stop()
    print(f"{what} drained; shut down cleanly", file=sys.stderr)


def _cmd_store_serve(args: argparse.Namespace) -> int:
    import tempfile

    from repro.dist.remote import ArtifactStoreServer, parse_address

    tmp = None
    root = args.root
    if root is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-store-serve-")
        root = tmp.name
    server = ArtifactStoreServer(root, parse_address(args.listen))
    try:
        _serve_until_signal(server, what="artifact store")
        stats = server.stats()
        print(
            f"served {stats['saves']} saves ({stats['save_skips']} skips), "
            f"{stats['loads']} loads ({stats['load_hits']} hits), "
            f"{stats['bytes_in']} bytes in / {stats['bytes_out']} bytes out "
            f"from {root}",
            file=sys.stderr,
        )
    finally:
        if tmp is not None:
            tmp.cleanup()
    return 0


def _cmd_shard_serve(args: argparse.Namespace) -> int:
    from repro.dist.host import HostServer
    from repro.dist.remote import parse_address

    _install_kernel_backend(args)
    server = HostServer(
        parse_address(args.listen),
        store_remote=args.store_remote,
        store_dir=args.store_dir,
        store_tier=args.store_tier,
        capacity=args.capacity if args.capacity is not None else args.workers,
        backend="process" if args.backend == "process" else "inline",
        host_id=args.host_id,
        cache_entries=args.cache_entries,
        cache_bytes=args.cache_bytes,
        kernel_backend=args.kernel_backend,
    )
    _serve_until_signal(server, what=f"shard host {server.host_id}")
    stats = server.stats()
    print(
        f"ran {stats['nodes_run']} nodes "
        f"({stats['groupings_computed']} groupings computed, "
        f"{stats['node_errors']} node errors) as {server.host_id} "
        f"(capacity={server.capacity}, backend={server.backend})",
        file=sys.stderr,
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient, parse_address

    host, port = parse_address(args.connect)
    with ServeClient(host, port, timeout=10.0) as client:
        snapshot = client.stats()
    if args.json:
        print(json.dumps(snapshot, indent=1))
        return 0

    server = snapshot["server"]
    queue = snapshot["queue"]
    counters = snapshot["counters"]
    coalesce = snapshot["coalesce"]
    listening = server.get("listening")
    addr = f"{listening[0]}:{listening[1]}" if listening else "?"
    print(
        f"server {addr}  up {server['uptime_s']:.1f} s  "
        f"(max_pending={server['max_pending']}, "
        f"window={server['coalesce_window_s'] * 1e3:g} ms, "
        f"max_batch={server['max_batch']}"
        f"{', draining' if server['stopping'] else ''})"
    )
    tenants = (
        ", ".join(f"{t}={n}" for t, n in sorted(queue["tenants"].items()))
        or "-"
    )
    print(
        f"queue: pending={queue['pending']} depth={queue['depth']} "
        f"recent_rps={queue['recent_rps']:.2f} tenants: {tenants}"
    )
    print(
        "counters: "
        + " ".join(f"{k}={counters[k]}" for k in sorted(counters))
    )
    print(
        f"coalesce: dispatches={coalesce['dispatches']} "
        f"coalesced_requests={coalesce['coalesced_requests']} "
        f"mean_batch={coalesce['mean_batch']:.2f}"
    )
    print(
        f"\n{'endpoint':>12s} {'count':>7s} {'mean':>8s} {'p50':>8s} "
        f"{'p95':>8s} {'p99':>8s} {'max':>8s}  (ms)"
    )
    print("-" * 68)
    for name in sorted(snapshot["latency"]):
        h = snapshot["latency"][name]
        if not h.get("count"):
            print(f"{name:>12s} {0:7d}")
            continue
        print(
            f"{name:>12s} {h['count']:7d} {h['mean_ms']:8.2f} "
            f"{h['p50_ms']:8.2f} {h['p95_ms']:8.2f} {h['p99_ms']:8.2f} "
            f"{h['max_ms']:8.2f}"
        )
    aio = snapshot["aio"]
    print(f"\naio: in_flight {aio['in_flight']}/{aio['max_in_flight']}")
    pool = snapshot.get("pool")
    if pool:
        print(
            f"pool: backend={pool['backend']} "
            f"workers={pool['workers'] or 'auto'} "
            f"live={pool['live_workers']} spawns={pool['spawn_count']} "
            f"restarts={pool['restarts']} "
            f"healthy={'yes' if pool['healthy'] else 'NO'}"
        )
        kb = pool.get("kernel_backend")
        if kb:
            note = (
                f" — {kb['fallback_reason']}" if kb.get("fallback_reason") else ""
            )
            warm = kb.get("warmup")
            workers = kb.get("workers") or {}
            warmed = [w for w in workers.values() if w]
            if warmed:
                extra = (
                    f" warmed_workers={len(warmed)} "
                    f"warmup_max={max(w['warmup_s'] for w in warmed) * 1e3:.1f} ms"
                )
            elif warm:
                extra = f" warmup={warm['warmup_s'] * 1e3:.1f} ms"
            else:
                extra = ""
            print(
                f"kernels: backend={kb['backend']} "
                f"(requested {kb['requested']}){note}{extra}"
            )
    cache = snapshot.get("cache") or {}
    busy = {
        ns: s for ns, s in cache.items() if s["hits"] or s["misses"] or s["size"]
    }
    if busy:
        summary = ", ".join(
            f"{ns}: {s['hits']}h/{s['misses']}m ({s['size']} live)"
            for ns, s in sorted(busy.items())
        )
        print(f"cache: {summary}")
    return 0


def _stats_payload(cache: ArtifactCache) -> dict:
    return {
        ns: {
            "hits": s.hits,
            "misses": s.misses,
            "size": s.size,
            "evictions": s.evictions,
            "bytes": s.bytes,
            "store_hits": s.store_hits,
            "store_errors": s.store_errors,
        }
        for ns, s in cache.stats().items()
    }


def _print_stats(service: MappingService, backend: str) -> None:
    """Cache statistics footer, honest about the process backend.

    The process backend's cache activity happens in the pool workers'
    private caches, which die with the pool — the parent's counters
    stay empty.  What *is* observable from the parent is the shared
    disk store, so its per-namespace file counts are reported instead.
    """
    print("\nArtifact cache:")
    print(service.cache.format_stats())
    if backend == "process":
        print(
            "(process backend: pool workers keep private caches, so the "
            "counters above exclude their activity)"
        )
    store = service.cache.store
    if store is not None:
        counts = {
            ns: store.file_count(ns)
            for ns in sorted(store.namespaces)
            if store.file_count(ns)
        }
        summary = (
            ", ".join(f"{ns}: {n}" for ns, n in counts.items()) or "(empty)"
        )
        tier = getattr(store, "tier", "disk")
        print(f"Artifact store ({store.root}, tier={tier}): {summary}")
        stats = store.stats() if hasattr(store, "stats") else {}
        shm = stats.get("shm")
        if shm:
            print(
                f"Shared memory: {shm.get('segments', 0)} segments, "
                f"{shm.get('segment_bytes', 0)} bytes "
                f"({shm.get('loads', 0)} loads, {shm.get('load_hits', 0)} hits)"
            )
        remote = stats.get("remote")
        if remote:
            print(
                f"Remote store {remote.get('address', '?')}: "
                f"{remote.get('saves', 0)} saves "
                f"({remote.get('save_skips', 0)} skips), "
                f"{remote.get('loads', 0)} loads "
                f"({remote.get('load_hits', 0)} hits, "
                f"{remote.get('errors', 0)} errors)"
            )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "map-batch":
            return _cmd_map_batch(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "store-serve":
            return _cmd_store_serve(args)
        if args.command == "shard-serve":
            return _cmd_shard_serve(args)
        if args.command == "stats":
            return _cmd_stats(args)
        return _cmd_map(args)
    except (OSError, ValueError, UnknownMapperError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
