"""Graph substrate: CSR kernel, task graphs, matrices and generators.

The paper models two kinds of graphs (Sec. II):

* the **task graph** ``Gt = (Vt, Et)`` -- a directed MPI communication
  graph whose edges carry communication volumes ``c(e)``;
* the **topology graph** ``Gm = (Vm, Em)`` -- the machine network (built in
  :mod:`repro.topology`).

This subpackage provides the shared CSR graph kernel
(:class:`repro.graph.csr.CSRGraph`), the task-graph abstraction
(:class:`repro.graph.task_graph.TaskGraph`), a sparse-matrix container and
the synthetic matrix generators standing in for the University of Florida
collection used in the paper's evaluation.
"""

from repro.graph.csr import CSRGraph, expand_frontier
from repro.graph.matrices import SparseMatrix
from repro.graph.task_graph import TaskGraph, coarse_task_graph
from repro.graph.generators import (
    generate_matrix,
    cage_like,
    rgg_like,
    stencil2d,
    stencil3d,
    powerlaw_like,
    fem_like,
    circuit_like,
    road_like,
    econ_like,
)

__all__ = [
    "CSRGraph",
    "expand_frontier",
    "SparseMatrix",
    "TaskGraph",
    "coarse_task_graph",
    "generate_matrix",
    "cage_like",
    "rgg_like",
    "stencil2d",
    "stencil3d",
    "powerlaw_like",
    "fem_like",
    "circuit_like",
    "road_like",
    "econ_like",
]
