"""Compressed-sparse-row graph kernel.

A single CSR structure backs every graph in the library: task graphs,
topology graphs, partitioner working graphs and coarse quotient graphs.
The layout is three NumPy arrays::

    indptr  : int64[n+1]   row pointer
    indices : int32[m]     column (neighbour) ids
    weights : float64[m]   edge weights (1.0 when unweighted)

following the "contiguous arrays, vectorized hot loops" idiom of the
hpc-parallel guides.  Instances are immutable after construction; all
transformations (symmetrization, coarsening, subgraphs) return new objects.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CSRGraph", "expand_frontier"]


class CSRGraph:
    """Directed weighted graph in CSR form.

    Parameters
    ----------
    indptr, indices, weights:
        Standard CSR arrays.  ``weights`` may be ``None`` for an unweighted
        graph (ones are materialized).
    vertex_weights:
        Optional float64[n] vertex weights (task loads / node capacities).
    sorted_indices:
        Set to True if each row's ``indices`` are already sorted; otherwise
        rows are sorted on construction (binary search and deterministic
        iteration both rely on it).

    Notes
    -----
    Self-loops are permitted at this level (some intermediate quotient
    graphs create them); :meth:`without_self_loops` strips them.  Parallel
    edges are *not* permitted -- builders accumulate duplicates.
    """

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "vertex_weights",
        "_undirected_cache",
        "_padded_cache",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
        vertex_weights: Optional[np.ndarray] = None,
        *,
        sorted_indices: bool = False,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int32)
        if self.indptr.ndim != 1 or self.indptr[0] != 0:
            raise ValueError("indptr must be 1-D and start at 0")
        if int(self.indptr[-1]) != self.indices.shape[0]:
            raise ValueError(
                f"indptr[-1]={int(self.indptr[-1])} != len(indices)={self.indices.shape[0]}"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if weights is None:
            weights = np.ones(self.indices.shape[0], dtype=np.float64)
        self.weights = np.asarray(weights, dtype=np.float64)
        if self.weights.shape != self.indices.shape:
            raise ValueError("weights must align with indices")
        n = self.num_vertices
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= n):
            raise ValueError("indices out of range")
        if vertex_weights is None:
            vertex_weights = np.ones(n, dtype=np.float64)
        self.vertex_weights = np.asarray(vertex_weights, dtype=np.float64)
        if self.vertex_weights.shape[0] != n:
            raise ValueError("vertex_weights must have one entry per vertex")
        if not sorted_indices:
            self._sort_rows()
        self._undirected_cache: Optional["CSRGraph"] = None
        self._padded_cache = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        src: Iterable[int],
        dst: Iterable[int],
        weights: Optional[Iterable[float]] = None,
        vertex_weights: Optional[np.ndarray] = None,
        *,
        accumulate: bool = True,
    ) -> "CSRGraph":
        """Build from parallel edge arrays, accumulating duplicate edges.

        Duplicate ``(src, dst)`` pairs have their weights summed (matching
        how communication volumes combine when multiple messages share a
        task pair).
        """
        s = np.asarray(list(src) if not isinstance(src, np.ndarray) else src, dtype=np.int64)
        d = np.asarray(list(dst) if not isinstance(dst, np.ndarray) else dst, dtype=np.int64)
        if s.shape != d.shape:
            raise ValueError("src and dst must have equal length")
        if weights is None:
            w = np.ones(s.shape[0], dtype=np.float64)
        else:
            w = np.asarray(
                list(weights) if not isinstance(weights, np.ndarray) else weights,
                dtype=np.float64,
            )
        if w.shape != s.shape:
            raise ValueError("weights must align with edges")
        n = int(num_vertices)
        if s.size and (min(s.min(), d.min()) < 0 or max(s.max(), d.max()) >= n):
            raise ValueError("edge endpoints out of range")

        if accumulate and s.size:
            # Encode (src, dst) into a single key; unique+bincount
            # accumulates duplicates without a Python loop.
            key = s * n + d
            uniq, inv = np.unique(key, return_inverse=True)
            wsum = np.bincount(inv, weights=w, minlength=uniq.shape[0])
            s = (uniq // n).astype(np.int64)
            d = (uniq % n).astype(np.int64)
            w = wsum

        counts = np.bincount(s, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.lexsort((d, s))
        indices = d[order].astype(np.int32)
        weights_out = w[order]
        return cls(
            indptr,
            indices,
            weights_out,
            vertex_weights,
            sorted_indices=True,
        )

    @classmethod
    def empty(cls, num_vertices: int) -> "CSRGraph":
        """Graph with *num_vertices* vertices and no edges."""
        return cls(
            np.zeros(num_vertices + 1, dtype=np.int64),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.float64),
            sorted_indices=True,
        )

    def _sort_rows(self) -> None:
        indices = self.indices
        if indices.shape[0] <= 1:
            return
        rows = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr)
        )
        # Already sorted iff no within-row adjacent pair decreases.
        same_row = rows[:-1] == rows[1:]
        if not np.any(indices[1:][same_row] < indices[:-1][same_row]):
            return
        order = np.lexsort((indices, rows))
        self.indices = indices[order]
        self.weights = self.weights[order]

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.indptr.shape[0] - 1

    @property
    def num_edges(self) -> int:
        """Number of stored (directed) edges."""
        return self.indices.shape[0]

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.num_vertices}, m={self.num_edges})"

    def neighbors(self, v: int) -> np.ndarray:
        """View of the neighbour ids of vertex *v* (do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """View of the edge weights out of vertex *v*."""
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    def out_degree(self) -> np.ndarray:
        """int64[n] out-degrees."""
        return np.diff(self.indptr)

    _PADDED_MAX_DEGREE = 8

    def padded_neighbors(self) -> Optional[np.ndarray]:
        """int32[n, d] neighbour matrix, or None for high-degree graphs.

        Rows shorter than the maximum degree are padded with the row's
        *own* vertex id — harmless to BFS consumers, which filter against
        a ``seen`` array that already contains the row vertex.  Built
        lazily and cached; only graphs whose maximum out-degree does not
        exceed ``_PADDED_MAX_DEGREE`` qualify (the torus graph ``Gm``,
        degree ≤ 6, is the intended customer).
        """
        if self._padded_cache is False:
            return None
        if self._padded_cache is None:
            deg = np.diff(self.indptr)
            n = self.num_vertices
            if n == 0 or (deg.size and int(deg.max()) > self._PADDED_MAX_DEGREE):
                self._padded_cache = False
                return None
            width = int(deg.max()) if deg.size else 0
            pad = np.repeat(
                np.arange(n, dtype=np.int32)[:, None], max(width, 1), axis=1
            )
            rows = np.repeat(np.arange(n, dtype=np.int64), deg)
            cols = _ranges(deg)
            pad[rows, cols] = self.indices
            self._padded_cache = pad
        return self._padded_cache

    def out_volume(self) -> np.ndarray:
        """float64[n] total outgoing edge weight per vertex."""
        return np.add.reduceat(
            np.append(self.weights, 0.0),
            self.indptr[:-1],
        ) * (np.diff(self.indptr) > 0)

    def in_volume(self) -> np.ndarray:
        """float64[n] total incoming edge weight per vertex."""
        vol = np.zeros(self.num_vertices, dtype=np.float64)
        np.add.at(vol, self.indices, self.weights)
        return vol

    def has_edge(self, u: int, v: int) -> bool:
        """O(log deg) membership test (rows are sorted)."""
        lo, hi = self.indptr[u], self.indptr[u + 1]
        i = np.searchsorted(self.indices[lo:hi], v)
        return bool(i < hi - lo and self.indices[lo + i] == v)

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)`` or 0.0 if absent."""
        lo, hi = self.indptr[u], self.indptr[u + 1]
        i = np.searchsorted(self.indices[lo:hi], v)
        if i < hi - lo and self.indices[lo + i] == v:
            return float(self.weights[lo + i])
        return 0.0

    def edge_list(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(src, dst, weight)`` arrays of all stored edges."""
        src = np.repeat(
            np.arange(self.num_vertices, dtype=np.int32), np.diff(self.indptr)
        )
        return src, self.indices.copy(), self.weights.copy()

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def symmetrized(self) -> "CSRGraph":
        """Undirected view: weight(u,v) = w(u->v) + w(v->u), cached.

        Algorithm 1 of the paper "assumes a symmetric Gt while finding the
        neighbors of a given task since WH is an undirected metric"; this is
        the corresponding transformation.
        """
        if self._undirected_cache is None:
            s, d, w = self.edge_list()
            both_s = np.concatenate([s, d])
            both_d = np.concatenate([d, s])
            both_w = np.concatenate([w, w])
            keep = both_s != both_d
            g = CSRGraph.from_edges(
                self.num_vertices,
                both_s[keep],
                both_d[keep],
                both_w[keep],
                self.vertex_weights.copy(),
            )
            self._undirected_cache = g
        return self._undirected_cache

    def without_self_loops(self) -> "CSRGraph":
        """Copy with self-loop edges removed."""
        s, d, w = self.edge_list()
        keep = s != d
        return CSRGraph.from_edges(
            self.num_vertices, s[keep], d[keep], w[keep], self.vertex_weights.copy()
        )

    def quotient(self, part: np.ndarray, num_parts: Optional[int] = None) -> "CSRGraph":
        """Contract vertices by the partition vector *part*.

        Edge weights between parts accumulate; self-edges of the quotient
        (intra-part communication) are dropped.  Vertex weights accumulate
        into part weights.  This is how the coarse task graph used by the
        mapping algorithms is produced from a METIS-style partition.
        """
        part = np.asarray(part, dtype=np.int64)
        if part.shape[0] != self.num_vertices:
            raise ValueError("part vector length mismatch")
        k = int(num_parts if num_parts is not None else part.max() + 1)
        if part.size and (part.min() < 0 or part.max() >= k):
            raise ValueError("part ids out of range")
        s, d, w = self.edge_list()
        ps, pd = part[s], part[d]
        keep = ps != pd
        pw = np.bincount(part, weights=self.vertex_weights, minlength=k)
        return CSRGraph.from_edges(k, ps[keep], pd[keep], w[keep], pw)

    def subgraph(self, vertices: np.ndarray) -> Tuple["CSRGraph", np.ndarray]:
        """Induced subgraph on *vertices*.

        Returns ``(graph, mapping)`` where ``mapping[i]`` is the original id
        of new vertex ``i``.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        n = self.num_vertices
        new_id = np.full(n, -1, dtype=np.int64)
        new_id[vertices] = np.arange(vertices.shape[0])
        s, d, w = self.edge_list()
        keep = (new_id[s] >= 0) & (new_id[d] >= 0)
        g = CSRGraph.from_edges(
            vertices.shape[0],
            new_id[s[keep]],
            new_id[d[keep]],
            w[keep],
            self.vertex_weights[vertices].copy(),
        )
        return g, vertices

    def reversed(self) -> "CSRGraph":
        """Graph with all edge directions flipped."""
        s, d, w = self.edge_list()
        return CSRGraph.from_edges(self.num_vertices, d, s, w, self.vertex_weights.copy())

    # ------------------------------------------------------------------
    # traversals
    # ------------------------------------------------------------------
    def bfs_levels(
        self,
        sources: Sequence[int],
        *,
        max_level: Optional[int] = None,
    ) -> np.ndarray:
        """Multi-source BFS levels (int64[n]; unreached = -1).

        All *sources* start at level 0, matching the paper's convention
        ("all the mapped tasks are assumed to be at level 0 of the BFS").
        The frontier sweep is vectorized over the CSR arrays.
        """
        n = self.num_vertices
        level = np.full(n, -1, dtype=np.int64)
        frontier = np.asarray(list(sources), dtype=np.int64)
        if frontier.size == 0:
            return level
        level[frontier] = 0
        depth = 0
        indptr, indices = self.indptr, self.indices
        while frontier.size and (max_level is None or depth < max_level):
            depth += 1
            # Gather all neighbours of the frontier in one shot.
            starts = indptr[frontier]
            ends = indptr[frontier + 1]
            counts = ends - starts
            if counts.sum() == 0:
                break
            gather = np.repeat(starts, counts) + _ranges(counts)
            nbrs = indices[gather]
            fresh = nbrs[level[nbrs] < 0]
            if fresh.size == 0:
                break
            fresh = np.unique(fresh)
            level[fresh] = depth
            frontier = fresh
        return level

    def bfs_order(self, sources: Sequence[int]) -> np.ndarray:
        """Vertices in BFS order from *sources* (unreached omitted).

        Within a level, vertices appear in ascending id order, which makes
        candidate enumeration in the mapping algorithms deterministic.
        """
        level = self.bfs_levels(sources)
        reached = np.flatnonzero(level >= 0)
        order = np.lexsort((reached, level[reached]))
        return reached[order]

    def connected_components(self) -> np.ndarray:
        """Component labels of the *undirected* graph (int64[n]).

        BFS from each yet-unlabelled vertex; in an undirected graph that
        reaches exactly one whole component, so a single assignment per
        component suffices.
        """
        g = self.symmetrized()
        n = g.num_vertices
        comp = np.full(n, -1, dtype=np.int64)
        label = 0
        for v in range(n):
            if comp[v] >= 0:
                continue
            level = g.bfs_levels([v])
            comp[np.flatnonzero(level >= 0)] = label
            label += 1
        return comp

    def is_connected(self) -> bool:
        """True if the undirected version of the graph is connected."""
        if self.num_vertices == 0:
            return True
        level = self.symmetrized().bfs_levels([0])
        return bool(np.all(level >= 0))

    def total_edge_weight(self) -> float:
        return float(self.weights.sum())


def expand_frontier(
    graph: CSRGraph, frontier: np.ndarray, seen: np.ndarray
) -> np.ndarray:
    """One vectorized BFS step: the unseen neighbours of *frontier*.

    Gathers every frontier adjacency in one shot (the ``indptr`` /
    ``np.repeat`` / :func:`_ranges` idiom of :meth:`CSRGraph.bfs_levels`),
    filters against *seen*, marks the survivors seen **in place** and
    returns them as a sorted, duplicate-free integer array — the exact
    level ordering the hand-rolled ``for v in frontier.tolist()`` loops
    of the mapping algorithms used to produce.

    Every *frontier* vertex must already be marked in *seen* (BFS
    callers guarantee this for their seeds); low-degree graphs then take
    a padded-matrix gather that skips the ragged-row machinery.
    """
    # Deferred import: the kernel-backend layer lives inside the
    # ``repro.kernels`` package, whose __init__ transitively imports
    # this module — a top-level import here would cycle.
    from repro.kernels.backend import get_backend

    backend = get_backend()
    pad = graph.padded_neighbors()
    if pad is not None:
        if backend.expand_frontier_padded is not None:
            return backend.expand_frontier_padded(
                pad, np.asarray(frontier, dtype=np.int64), seen
            )
        nbrs = pad[frontier].ravel()
    else:
        if backend.expand_frontier_csr is not None:
            return backend.expand_frontier_csr(
                graph.indptr,
                graph.indices,
                np.asarray(frontier, dtype=np.int64),
                seen,
            )
        indptr, indices = graph.indptr, graph.indices
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        if int(counts.sum()) == 0:
            return np.empty(0, dtype=np.int64)
        gather = np.repeat(starts, counts) + _ranges(counts)
        nbrs = indices[gather]
    fresh = nbrs[~seen[nbrs]]
    if fresh.size == 0:
        return np.empty(0, dtype=np.int64)
    fresh = np.unique(fresh)
    seen[fresh] = True
    return fresh


def _ranges(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(c)`` for each c in *counts* (vectorized).

    ``_ranges([2, 0, 3]) == [0, 1, 0, 1, 2]``.  Implemented as a global
    arange minus each element's block start, which is robust to zero-length
    blocks (unlike subtract-at-block-boundary tricks).
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    block_starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(block_starts, counts)
