"""Synthetic sparse-matrix generators standing in for the UFL collection.

The paper evaluates on 25 UFL matrices "belonging to 9 different classes".
Offline we cannot download the collection, so each class is replaced by a
deterministic generator producing matrices with the same *structural*
character -- what actually drives communication-graph shape after 1-D
row-wise partitioning:

=================  =====================================================
class              structural character reproduced
=================  =====================================================
``cage``           DNA-electrophoresis chains: narrow band + bounded
                   long-range couplings, near-constant row degree
``rgg``            random geometric graph: pure spatial locality,
                   Poisson degrees (matches rgg_n_2_23_s0)
``stencil2d``      5-point Laplacian on a square grid
``stencil3d``      7-point Laplacian on a cube
``powerlaw``       scale-free web/social pattern, heavy-tailed degrees
``fem``            finite-element triangulation: planar-ish, clustered
``circuit``        circuit simulation: sparse rows + a few dense
                   columns (power/ground rails)
``road``           road-network-like: very sparse, large diameter
``econ``           input-output economics: block structure + dense
                   coupling rows
=================  =====================================================

All generators return a :class:`repro.graph.matrices.SparseMatrix` whose
pattern is symmetric (SpMV communication is analysed on the symmetrized
structure anyway) with a structurally full diagonal, and are deterministic
in ``(n, seed)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.graph.matrices import SparseMatrix
from repro.util.rng import seeded_rng

__all__ = [
    "cage_like",
    "rgg_like",
    "stencil2d",
    "stencil3d",
    "powerlaw_like",
    "fem_like",
    "circuit_like",
    "road_like",
    "econ_like",
    "generate_matrix",
    "GENERATORS",
]


def _symmetrize(n: int, rows: np.ndarray, cols: np.ndarray) -> sp.csr_array:
    """Build a symmetric boolean CSR pattern from (possibly duplicated) pairs."""
    src = np.concatenate([rows, cols])
    dst = np.concatenate([cols, rows])
    data = np.ones(src.shape[0], dtype=np.int8)
    mat = sp.csr_array((data, (src, dst)), shape=(n, n))
    mat.data = np.ones_like(mat.data)
    return mat


def cage_like(n: int, seed: int = 0, *, band: int = 4, longlinks: int = 3) -> SparseMatrix:
    """cage15-like pattern: banded core plus bounded long-range couplings.

    The cage models (DNA electrophoresis) have an almost regular degree
    (~19 for cage15) with most couplings near the diagonal and a few
    medium-range ones.  We take a band of half-width *band* plus
    *longlinks* couplings per row at geometrically distributed offsets.
    """
    rng = seeded_rng(seed)
    idx = np.arange(n, dtype=np.int64)
    rows = []
    cols = []
    for off in range(1, band + 1):
        rows.append(idx[:-off])
        cols.append(idx[:-off] + off)
    # Long-range couplings: offset ~ geometric, capped at n/8, both signs.
    for _ in range(longlinks):
        off = np.minimum(
            (rng.geometric(p=3.0 / max(4, n // 64), size=n) + band),
            max(band + 1, n // 8),
        )
        tgt = np.clip(idx + off * rng.choice([-1, 1], size=n), 0, n - 1)
        rows.append(idx)
        cols.append(tgt)
    pattern = _symmetrize(n, np.concatenate(rows), np.concatenate(cols))
    return SparseMatrix(name=f"cage_like_n{n}_s{seed}", group="cage", pattern=pattern)


def rgg_like(n: int, seed: int = 0, *, degree: float = 12.0) -> SparseMatrix:
    """Random geometric graph on the unit square with expected *degree*.

    Matches rgg_n_2_23_s0: vertices = random points, edges between pairs
    within radius r chosen so the mean degree is ~*degree*.  Implemented
    with a uniform grid of bucket size r, so the construction is
    O(n·degree) instead of O(n²).
    """
    rng = seeded_rng(seed)
    pts = rng.random((n, 2))
    r = float(np.sqrt(degree / (np.pi * n)))
    nb = max(1, int(1.0 / r))
    cell = np.minimum((pts / (1.0 / nb)).astype(np.int64), nb - 1)
    cell_id = cell[:, 0] * nb + cell[:, 1]
    order = np.argsort(cell_id, kind="stable")
    sorted_ids = cell_id[order]
    starts = np.searchsorted(sorted_ids, np.arange(nb * nb))
    ends = np.searchsorted(sorted_ids, np.arange(nb * nb) + 1)

    rows_out = []
    cols_out = []
    r2 = r * r
    # For each occupied cell, compare against the 5 forward-neighbour cells
    # (self, E, N, NE, NW) -- each unordered pair is examined exactly once.
    offsets = [(0, 0), (1, 0), (0, 1), (1, 1), (-1, 1)]
    for cx in range(nb):
        for cy in range(nb):
            cid = cx * nb + cy
            a0, a1 = starts[cid], ends[cid]
            if a0 == a1:
                continue
            pa = order[a0:a1]
            for dx, dy in offsets:
                ox, oy = cx + dx, cy + dy
                if not (0 <= ox < nb and 0 <= oy < nb):
                    continue
                oid = ox * nb + oy
                b0, b1 = starts[oid], ends[oid]
                if b0 == b1:
                    continue
                pb = order[b0:b1]
                diff = pts[pa, None, :] - pts[None, pb, :]
                d2 = (diff * diff).sum(axis=2)
                ii, jj = np.nonzero(d2 <= r2)
                src, dst = pa[ii], pb[jj]
                if (dx, dy) == (0, 0):
                    keep = src < dst
                    src, dst = src[keep], dst[keep]
                rows_out.append(src)
                cols_out.append(dst)
    rows = np.concatenate(rows_out) if rows_out else np.empty(0, dtype=np.int64)
    cols = np.concatenate(cols_out) if cols_out else np.empty(0, dtype=np.int64)
    pattern = _symmetrize(n, rows, cols)
    return SparseMatrix(name=f"rgg_like_n{n}_s{seed}", group="rgg", pattern=pattern)


def stencil2d(n: int, seed: int = 0) -> SparseMatrix:
    """5-point stencil on a ⌈√n⌉ × ⌈√n⌉ grid (first *n* grid points)."""
    side = int(np.ceil(np.sqrt(n)))
    idx = np.arange(n, dtype=np.int64)
    x, y = idx % side, idx // side
    rows = []
    cols = []
    right = idx + 1
    ok = (x + 1 < side) & (right < n)
    rows.append(idx[ok]); cols.append(right[ok])
    up = idx + side
    ok = up < n
    rows.append(idx[ok]); cols.append(up[ok])
    pattern = _symmetrize(n, np.concatenate(rows), np.concatenate(cols))
    return SparseMatrix(name=f"stencil2d_n{n}_s{seed}", group="stencil2d", pattern=pattern)


def stencil3d(n: int, seed: int = 0) -> SparseMatrix:
    """7-point stencil on a cube of side ⌈n^(1/3)⌉ (first *n* points)."""
    side = int(np.ceil(n ** (1.0 / 3.0)))
    while side**3 < n:
        side += 1
    idx = np.arange(n, dtype=np.int64)
    x = idx % side
    y = (idx // side) % side
    rows = []
    cols = []
    for stride, coord in ((1, x), (side, y), (side * side, (idx // (side * side)))):
        nxt = idx + stride
        ok = (coord + 1 < side) & (nxt < n)
        rows.append(idx[ok])
        cols.append(nxt[ok])
    pattern = _symmetrize(n, np.concatenate(rows), np.concatenate(cols))
    return SparseMatrix(name=f"stencil3d_n{n}_s{seed}", group="stencil3d", pattern=pattern)


def powerlaw_like(n: int, seed: int = 0, *, m_edges: int = 6) -> SparseMatrix:
    """Scale-free pattern via a vectorized preferential-attachment scheme.

    Each vertex v >= m attaches to *m_edges* earlier vertices sampled with
    probability ~ (current degree); we approximate the Barabási–Albert
    process by sampling targets from the concatenated edge-endpoint list
    (repeated-endpoint trick), vectorized in chunks.
    """
    rng = seeded_rng(seed)
    m = max(2, m_edges)
    rows = [np.repeat(np.arange(1, m + 1, dtype=np.int64), 1)]
    cols = [np.zeros(m, dtype=np.int64)]
    endpoint_pool = [np.zeros(m, dtype=np.int64), np.arange(1, m + 1, dtype=np.int64)]
    pool = np.concatenate(endpoint_pool)
    v0 = m + 1
    chunk = max(256, n // 64)
    v = v0
    while v < n:
        hi = min(n, v + chunk)
        cnt = hi - v
        # Sample m targets per new vertex from the current endpoint pool
        # (falls back to uniform over existing ids for variety).
        targets = pool[rng.integers(0, pool.shape[0], size=(cnt, m))]
        uniform = rng.integers(0, v, size=(cnt, m))
        mix = rng.random((cnt, m)) < 0.85
        targets = np.where(mix, targets, uniform)
        src = np.repeat(np.arange(v, hi, dtype=np.int64), m)
        dst = targets.ravel()
        rows.append(src)
        cols.append(dst)
        pool = np.concatenate([pool, src, dst])
        v = hi
    pattern = _symmetrize(n, np.concatenate(rows), np.concatenate(cols))
    return SparseMatrix(name=f"powerlaw_n{n}_s{seed}", group="powerlaw", pattern=pattern)


def fem_like(n: int, seed: int = 0) -> SparseMatrix:
    """FEM-triangulation-like pattern: jittered grid + Delaunay-ish edges.

    We lay points on a jittered grid and connect each point to its grid
    neighbours and one diagonal, giving planar-like meshes with degree ~7,
    similar to 2-D finite-element stiffness matrices.
    """
    rng = seeded_rng(seed)
    side = int(np.ceil(np.sqrt(n)))
    idx = np.arange(n, dtype=np.int64)
    x, y = idx % side, idx // side
    rows = []
    cols = []
    for dx, dy in ((1, 0), (0, 1), (1, 1)):
        nxt = idx + dx + dy * side
        ok = (x + dx < side) & (y + dy < side) & (nxt < n)
        rows.append(idx[ok])
        cols.append(nxt[ok])
    # Random local re-meshing: a small fraction of anti-diagonals.
    nxt = idx - 1 + side
    ok = (x > 0) & (y + 1 < side) & (nxt < n) & (rng.random(n) < 0.35)
    rows.append(idx[ok])
    cols.append(nxt[ok])
    pattern = _symmetrize(n, np.concatenate(rows), np.concatenate(cols))
    return SparseMatrix(name=f"fem_like_n{n}_s{seed}", group="fem", pattern=pattern)


def circuit_like(n: int, seed: int = 0, *, rails: Optional[int] = None) -> SparseMatrix:
    """Circuit-simulation pattern: sparse local wiring + dense rails.

    Most rows have 2-5 local couplings; a handful of "rail" vertices
    (power/ground nets) couple to a constant fraction of all rows, creating
    the dense columns characteristic of circuit matrices.
    """
    rng = seeded_rng(seed)
    if rails is None:
        rails = max(2, n // 2000 + 2)
    idx = np.arange(n, dtype=np.int64)
    deg = rng.integers(2, 6, size=n)
    src = np.repeat(idx, deg)
    # Local couplings within a window of 64.
    offs = rng.integers(1, 64, size=src.shape[0]) * rng.choice([-1, 1], size=src.shape[0])
    dst = np.clip(src + offs, 0, n - 1)
    rail_ids = rng.choice(n, size=rails, replace=False).astype(np.int64)
    fan = rng.random(n) < 0.08
    rail_src = idx[fan]
    rail_dst = rail_ids[rng.integers(0, rails, size=rail_src.shape[0])]
    rows = np.concatenate([src, rail_src])
    cols = np.concatenate([dst, rail_dst])
    pattern = _symmetrize(n, rows, cols)
    return SparseMatrix(name=f"circuit_n{n}_s{seed}", group="circuit", pattern=pattern)


def road_like(n: int, seed: int = 0) -> SparseMatrix:
    """Road-network pattern: near-planar, degree ~2.5, huge diameter.

    A long path (the 'highway') with random local shortcuts and side
    streets, yielding the low-degree high-diameter structure of road
    matrices.
    """
    rng = seeded_rng(seed)
    idx = np.arange(n - 1, dtype=np.int64)
    rows = [idx]
    cols = [idx + 1]
    n_extra = n // 3
    a = rng.integers(0, n, size=n_extra)
    off = rng.integers(2, 40, size=n_extra)
    b = np.clip(a + off, 0, n - 1)
    rows.append(a.astype(np.int64))
    cols.append(b.astype(np.int64))
    pattern = _symmetrize(n, np.concatenate(rows), np.concatenate(cols))
    return SparseMatrix(name=f"road_like_n{n}_s{seed}", group="road", pattern=pattern)


def econ_like(n: int, seed: int = 0, *, blocks: int = 24) -> SparseMatrix:
    """Economics input-output pattern: sector blocks + dense coupling rows.

    Vertices belong to *blocks* sectors; dense intra-sector coupling, sparse
    inter-sector edges, plus a few rows coupling across all sectors.
    """
    rng = seeded_rng(seed)
    sector = rng.integers(0, blocks, size=n).astype(np.int64)
    order = np.argsort(sector, kind="stable")
    rank_in = np.empty(n, dtype=np.int64)
    rank_in[order] = np.arange(n)
    # Intra-sector ring + chords (dense-ish blocks).
    deg = rng.integers(3, 8, size=n)
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    offs = rng.integers(1, 16, size=src.shape[0])
    # Move within the sector-sorted ordering to stay inside the block.
    pos = rank_in[src]
    tgt_pos = np.clip(pos + offs * rng.choice([-1, 1], size=src.shape[0]), 0, n - 1)
    dst = order[tgt_pos]
    # Inter-sector couplings.
    n_x = n // 4
    xs = rng.integers(0, n, size=n_x).astype(np.int64)
    xd = rng.integers(0, n, size=n_x).astype(np.int64)
    rows = np.concatenate([src, xs])
    cols = np.concatenate([dst, xd])
    pattern = _symmetrize(n, rows, cols)
    return SparseMatrix(name=f"econ_like_n{n}_s{seed}", group="econ", pattern=pattern)


GENERATORS: Dict[str, Callable[..., SparseMatrix]] = {
    "cage": cage_like,
    "rgg": rgg_like,
    "stencil2d": stencil2d,
    "stencil3d": stencil3d,
    "powerlaw": powerlaw_like,
    "fem": fem_like,
    "circuit": circuit_like,
    "road": road_like,
    "econ": econ_like,
}


def generate_matrix(group: str, n: int, seed: int = 0, **kwargs) -> SparseMatrix:
    """Dispatch to the generator for *group* (see :data:`GENERATORS`)."""
    try:
        gen = GENERATORS[group]
    except KeyError:
        raise ValueError(
            f"unknown matrix group {group!r}; available: {sorted(GENERATORS)}"
        ) from None
    return gen(n, seed, **kwargs)
