"""Directed MPI task graphs (``Gt`` in the paper).

A :class:`TaskGraph` is a directed graph whose vertices are MPI tasks and
whose edge weights ``c(t1, t2)`` are the communication volumes sent from
``t1`` to ``t2`` (paper Sec. II).  Vertex weights carry computational
loads, used when partitioning tasks onto nodes with heterogeneous
processor counts.

Builders:

* :meth:`TaskGraph.from_edges` -- direct construction;
* :meth:`TaskGraph.from_comm_triplets` -- from (src, dst, volume) arrays
  (produced by :meth:`repro.hypergraph.model.Hypergraph.comm_triplets`);
* :func:`coarse_task_graph` -- quotient of a task graph under a partition
  (the node-level graph the mapping algorithms actually operate on).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["TaskGraph", "coarse_task_graph"]


class TaskGraph:
    """Directed task communication graph with volumes and loads.

    Parameters
    ----------
    graph:
        Directed :class:`CSRGraph`; ``weights`` are communication volumes,
        ``vertex_weights`` are computational loads.
    """

    __slots__ = ("graph", "_sym")

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        self._sym: Optional[CSRGraph] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_tasks: int,
        src,
        dst,
        volumes=None,
        loads: Optional[np.ndarray] = None,
    ) -> "TaskGraph":
        """Build from edge arrays; duplicate (src, dst) volumes accumulate."""
        g = CSRGraph.from_edges(num_tasks, src, dst, volumes, loads)
        return cls(g.without_self_loops() if _any_self_loop(g) else g)

    @classmethod
    def from_comm_triplets(
        cls,
        num_tasks: int,
        triplets: Tuple[np.ndarray, np.ndarray, np.ndarray],
        loads: Optional[np.ndarray] = None,
    ) -> "TaskGraph":
        """Build from ``(src, dst, volume)`` arrays."""
        src, dst, vol = triplets
        return cls.from_edges(num_tasks, src, dst, vol, loads)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return self.graph.num_vertices

    @property
    def num_messages(self) -> int:
        """Number of directed (sender, receiver) pairs = TM of the phase."""
        return self.graph.num_edges

    @property
    def loads(self) -> np.ndarray:
        return self.graph.vertex_weights

    def total_volume(self) -> float:
        """Total communication volume (TV over this graph's granularity)."""
        return self.graph.total_edge_weight()

    def send_volume(self) -> np.ndarray:
        """float64[n] outgoing volume per task."""
        return self.graph.out_volume()

    def recv_volume(self) -> np.ndarray:
        """float64[n] incoming volume per task."""
        return self.graph.in_volume()

    def send_messages(self) -> np.ndarray:
        """int64[n] number of distinct destinations per task."""
        return self.graph.out_degree()

    def msrv_task(self) -> int:
        """Task with the Maximum Send-Receive Volume.

        Algorithm 1 of the paper starts by mapping ``t_MSRV``, "the task
        with the maximum send-receive communication volume", to an
        arbitrary node.  Ties break toward the smaller task id.
        """
        total = self.send_volume() + self.recv_volume()
        return int(np.argmax(total))

    def symmetrized(self) -> CSRGraph:
        """Undirected volume graph, cached (WH is an undirected metric)."""
        if self._sym is None:
            self._sym = self.graph.symmetrized()
        return self._sym

    def unit_cost(self) -> "TaskGraph":
        """Copy with all communication volumes set to one.

        Mapping this graph minimizes TH instead of WH — the paper's
        "adaptation for TH ... is trivial" (Sec. III): the same algorithms
        run on a unit-cost view of the communication graph.
        """
        g = CSRGraph(
            self.graph.indptr.copy(),
            self.graph.indices.copy(),
            np.ones(self.graph.num_edges, dtype=np.float64),
            self.graph.vertex_weights.copy(),
            sorted_indices=True,
        )
        return TaskGraph(g)

    def is_connected(self) -> bool:
        return self.graph.is_connected()

    def components(self) -> np.ndarray:
        return self.graph.connected_components()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskGraph(tasks={self.num_tasks}, messages={self.num_messages}, "
            f"volume={self.total_volume():.0f})"
        )


def _any_self_loop(g: CSRGraph) -> bool:
    src = np.repeat(np.arange(g.num_vertices, dtype=np.int32), np.diff(g.indptr))
    return bool(np.any(src == g.indices))


def coarse_task_graph(task_graph: TaskGraph, part: np.ndarray, num_parts: int) -> TaskGraph:
    """Quotient task graph induced by *part*.

    This is the node-level communication graph the paper's mapping
    algorithms work on after METIS reduces the number of tasks to the
    number of allocated nodes: inter-part volumes accumulate, intra-part
    communication disappears, and part loads are the summed task loads.
    """
    q = task_graph.graph.quotient(part, num_parts)
    return TaskGraph(q)
