"""Sparse-matrix container used as the workload substrate.

The paper's evaluation starts from 25 matrices of the University of Florida
collection, converts each to a column-net hypergraph and partitions it
1-D row-wise.  :class:`SparseMatrix` is the library's minimal matrix
abstraction: a CSR *pattern* (values are irrelevant to communication
analysis -- only the nonzero structure matters) plus identification
metadata.  Numeric values are synthesized on demand for the SpMV simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.graph.csr import CSRGraph

__all__ = ["SparseMatrix"]


@dataclass
class SparseMatrix:
    """A square sparse matrix pattern with workload metadata.

    Attributes
    ----------
    name:
        Dataset name, e.g. ``"cage15_like"``.
    group:
        Matrix class (one of the 9 classes mimicking UFL groups).
    pattern:
        ``scipy.sparse.csr_array`` of dtype bool/int8 holding the nonzero
        structure.  The diagonal is always structurally present (every task
        owns its own x-vector entry in 1-D row-parallel SpMV).
    """

    name: str
    group: str
    pattern: sp.csr_array

    # Cached derived quantities (computed lazily).
    _row_nnz: Optional[np.ndarray] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not sp.issparse(self.pattern):
            raise TypeError("pattern must be a scipy sparse matrix")
        pat = sp.csr_array(self.pattern)
        n, m = pat.shape
        if n != m:
            raise ValueError(f"matrix must be square, got {pat.shape}")
        # Force a structurally-present diagonal: row i always references
        # x_i, so net i always pins vertex i in the column-net model.
        pat = sp.csr_array(pat + sp.eye_array(n, format="csr"))
        pat.data = np.ones_like(pat.data)
        pat.sum_duplicates()
        pat.sort_indices()
        self.pattern = pat

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self.pattern.shape[0]

    @property
    def nnz(self) -> int:
        return int(self.pattern.nnz)

    def row_nnz(self) -> np.ndarray:
        """Nonzeros per row = task computational loads (paper Sec. IV-A)."""
        if self._row_nnz is None:
            self._row_nnz = np.diff(self.pattern.indptr).astype(np.float64)
        return self._row_nnz

    # ------------------------------------------------------------------
    def structure_graph(self) -> CSRGraph:
        """Undirected graph of the symmetrized pattern (no self loops).

        This is the working graph handed to *graph* partitioners
        (SCOTCH/KaFFPa/METIS personalities); edge weight counts how many of
        ``a_ij`` / ``a_ji`` are present, vertex weights are row nonzeros.
        """
        pat = self.pattern
        coo = pat.tocoo()
        mask = coo.row != coo.col
        src = np.concatenate([coo.row[mask], coo.col[mask]])
        dst = np.concatenate([coo.col[mask], coo.row[mask]])
        g = CSRGraph.from_edges(
            self.num_rows,
            src,
            dst,
            np.ones(src.shape[0], dtype=np.float64),
            self.row_nnz(),
        )
        return g

    def values(self, seed: int = 0) -> sp.csr_array:
        """Synthesize numeric values on the pattern (for SpMV flop counts).

        Values do not influence any mapping metric; they exist so the SpMV
        simulator can model a numerically plausible kernel.
        """
        rng = np.random.default_rng(seed)
        vals = rng.uniform(0.5, 1.5, size=self.nnz)
        out = self.pattern.copy().astype(np.float64)
        out.data = vals
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseMatrix({self.name!r}, group={self.group!r}, "
            f"n={self.num_rows}, nnz={self.nnz})"
        )
