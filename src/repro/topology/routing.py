"""Static dimension-ordered routing on the 3-D torus.

Gemini routes packets with static dimension-ordered routing: a message
first resolves its X offset, then Y, then Z, always taking the shorter way
around the torus ring (ties broken toward the ``+`` direction, which pins
the routing function down deterministically — the paper's congestion
metrics assume "the messages are not split and sent through only a single
path via static routing").

The module exposes a scalar route enumerator (:func:`route`), the bulk,
fully vectorized :func:`routes_bulk` (for ``|Et|`` messages the output
has at most ``|Et| * D`` entries, D = torus diameter, matching the
paper's complexity accounting), and :class:`RouteTable` — the CSR
``pair -> directed link ids`` view of many routes that the congestion
subsystem (:class:`repro.kernels.congestion.CongestionModel`), the
mapping metrics and the flow simulator all share: routes are enumerated
once per (endpoints, torus) content key and then read (or delta-updated)
in place instead of re-enumerated per consumer.

Fault-avoiding rerouting
------------------------
On a torus carrying a failure mask (``Torus3D.with_failures``), routes
whose static dimension-ordered path would cross a dead link detour
around it: the affected messages are re-routed over the *healthy*
directed link graph by a deterministic BFS (FIFO frontier, links
explored in ``x+ x- y+ y- z+ z-`` order), which yields a shortest
healthy path with a pinned tie-break.  Unaffected messages keep their
byte-identical dimension-ordered routes, and a healthy torus never
enters the detour path at all — ``RouteTable.build`` and every
congestion consumer pick the mask up for free because they route
through this module.  Routing to or from a dead node raises
:class:`DeadEndpointError`; a mask that disconnects a live pair raises
:class:`UnroutableError`.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.topology.torus import Torus3D

__all__ = [
    "route",
    "routes_bulk",
    "route_lengths",
    "link_loads",
    "RouteTable",
    "route_table_key",
    "shared_route_table",
    "DeadEndpointError",
    "UnroutableError",
]


def _kernel_backend():
    """The active kernel backend (deferred import breaks the package cycle:
    ``repro.kernels.__init__`` transitively imports this module)."""
    from repro.kernels.backend import get_backend

    return get_backend()


class DeadEndpointError(ValueError):
    """A message endpoint is a dead node — no route can exist."""


class UnroutableError(RuntimeError):
    """The failure mask disconnects a live (src, dst) pair."""


def _dim_plan(
    torus: Torus3D, cu: np.ndarray, cv: np.ndarray, dim: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-message (steps, direction) along *dim*.

    direction 0 = increasing coordinate (with wrap), 1 = decreasing.
    Ties (both ways equal) go to direction 0.
    """
    size = torus.dims[dim]
    fwd = (cv[:, dim] - cu[:, dim]) % size
    bwd = size - fwd
    take_fwd = fwd <= bwd
    steps = np.where(take_fwd, fwd, bwd)
    # A zero-offset message takes no steps; direction is irrelevant then.
    steps = np.where(fwd == 0, 0, steps)
    direction = np.where(take_fwd, 0, 1)
    return steps.astype(np.int64), direction.astype(np.int64)


def route(torus: Torus3D, u: int, v: int) -> List[int]:
    """Directed link ids of the static route from node *u* to node *v*.

    The length of the returned list equals ``torus.hop_distance(u, v)``.
    """
    links, _ = routes_bulk(
        torus, np.asarray([u], dtype=np.int64), np.asarray([v], dtype=np.int64)
    )
    return [int(l) for l in links]


def route_lengths(torus: Torus3D, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Hop count of each route.

    On a healthy torus this equals ``torus.hop_distance``; with a
    failure mask, detoured routes may be longer than the geometric
    distance, so the actual enumerated routes are measured.
    """
    if not torus.has_faults:
        return torus.hop_distance(src, dst)
    src = np.asarray(src, dtype=np.int64).reshape(-1)
    dst = np.asarray(dst, dtype=np.int64).reshape(-1)
    _, msg = routes_bulk(torus, src, dst)
    return np.bincount(msg, minlength=src.shape[0])


def routes_bulk(
    torus: Torus3D, src: np.ndarray, dst: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Enumerate the static routes of many messages at once.

    Parameters
    ----------
    torus:
        The torus to route on.
    src, dst:
        int64[M] node ids of the message endpoints.

    Returns
    -------
    (links, msg):
        ``links`` is an int64 array of directed link ids; ``msg[i]`` tells
        which input message traverses ``links[i]``.  Entries appear in
        dimension order (X segments of all messages, then Y, then Z), with
        each message's segment ordered hop by hop.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError("src and dst must have equal length")
    m = src.shape[0]
    if m == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if torus.has_faults:
        return _routes_bulk_faulty(torus, src, dst)
    return _routes_bulk_default(torus, src, dst)


def _routes_bulk_default(
    torus: Torus3D, src: np.ndarray, dst: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """The vectorized dimension-ordered enumeration (fault-blind)."""
    m = src.shape[0]
    coords = torus.coords()
    cu = coords[src]
    cv = coords[dst]
    nx, ny, _ = torus.dims

    all_links = []
    all_msgs = []
    # Current coordinates resolve dimension by dimension: after the X
    # segment the x coordinate equals the destination's, etc.
    cur = cu.copy()
    for dim in range(3):
        size = torus.dims[dim]
        steps, direction = _dim_plan(torus, cur, cv, dim)
        total = int(steps.sum())
        if total:
            msg = np.repeat(np.arange(m, dtype=np.int64), steps)
            t = _ranges(steps)
            sign = np.where(direction == 0, 1, -1)[msg]
            coord_t = (cur[msg, dim] + sign * t) % size
            # Rebuild the id of the node the packet occupies at step t.
            # (``cur[msg]`` fancy-indexes a fresh copy, so the column
            # assignment cannot leak back into ``cur``.)
            c = cur[msg]
            c[:, dim] = coord_t
            node_t = c[:, 0] + nx * (c[:, 1] + ny * c[:, 2])
            link = node_t * 6 + dim * 2 + np.where(sign[...] == 1, 0, 1)
            all_links.append(link)
            all_msgs.append(msg)
        # The packet has now fully resolved this dimension.
        cur[:, dim] = cv[:, dim]

    if not all_links:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(all_links), np.concatenate(all_msgs)


# ---------------------------------------------------------------------------
# Fault-avoiding rerouting (degraded machines only).
# ---------------------------------------------------------------------------


def _routes_bulk_faulty(
    torus: Torus3D, src: np.ndarray, dst: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Dimension-ordered routes with BFS detours around dead links.

    Messages whose default route stays on healthy links keep it
    unchanged (bit-identical to the healthy enumeration); only the
    affected messages are re-routed.  Output stays per-message
    traversal-ordered, which is the only order contract
    :meth:`RouteTable.from_bulk` and the congestion delta machinery
    rely on (they stable-sort by message).
    """
    node_ok = torus.node_alive()
    bad_src = ~node_ok[src]
    bad_dst = ~node_ok[dst]
    if bad_src.any() or bad_dst.any():
        which = int(src[bad_src][0]) if bad_src.any() else int(dst[bad_dst][0])
        raise DeadEndpointError(
            f"message endpoint {which} is a dead node; allocate around the "
            "failure mask (Machine.degrade drops dead nodes)"
        )
    links, msg = _routes_bulk_default(torus, src, dst)
    alive = torus.link_alive()
    dead_entries = ~alive[links] if links.size else np.zeros(0, dtype=bool)
    if not dead_entries.any():
        return links, msg
    affected = np.unique(msg[dead_entries])
    keep = ~np.isin(msg, affected)
    out_links = [links[keep]]
    out_msgs = [msg[keep]]

    nbr, nbr_alive = _healthy_adjacency(torus)
    by_source: dict = {}
    for i in affected.tolist():
        by_source.setdefault(int(src[i]), []).append(i)
    for source, messages in sorted(by_source.items()):
        parent_link = _bfs_parents(
            torus, source, nbr, nbr_alive, {int(dst[i]) for i in messages}
        )
        for i in messages:
            target = int(dst[i])
            if parent_link[target] < 0:
                raise UnroutableError(
                    f"no healthy route from node {source} to node {target}: "
                    "the failure mask disconnects them"
                )
            path: List[int] = []
            node = target
            while node != source:
                lid = int(parent_link[node])
                path.append(lid)
                node = int(lid // 6)
            path.reverse()
            out_links.append(np.asarray(path, dtype=np.int64))
            out_msgs.append(np.full(len(path), i, dtype=np.int64))
    return np.concatenate(out_links), np.concatenate(out_msgs)


def _healthy_adjacency(torus: Torus3D) -> Tuple[np.ndarray, np.ndarray]:
    """``(neighbor, alive)`` int64/bool ``[num_nodes, 6]`` tables.

    Column order is the deterministic exploration order of the detour
    BFS: ``x+ x- y+ y- z+ z-`` (slot = dim * 2 + direction), matching
    the directed link id layout.
    """
    n = torus.num_nodes
    nodes = np.arange(n, dtype=np.int64)
    nbr = np.empty((n, 6), dtype=np.int64)
    for dim in range(3):
        for direction, step in ((0, 1), (1, -1)):
            nbr[:, dim * 2 + direction] = torus._neighbor(
                nodes,
                np.full(n, dim, dtype=np.int64),
                np.full(n, step, dtype=np.int64),
            )
    alive = torus.link_alive().reshape(n, 6)
    return nbr, alive


def _bfs_parents(
    torus: Torus3D,
    source: int,
    nbr: np.ndarray,
    nbr_alive: np.ndarray,
    targets: set,
) -> np.ndarray:
    """Parent directed-link ids of a BFS over the healthy link graph.

    ``parent_link[v]`` is the link whose traversal first reached *v*
    (-1 = unreached); walking parents back from a target yields a
    shortest healthy path.  FIFO frontier + fixed slot order make the
    tie-break deterministic.  Stops early once every target is reached.
    """
    parent_link = np.full(torus.num_nodes, -1, dtype=np.int64)
    seen = np.zeros(torus.num_nodes, dtype=bool)
    seen[source] = True
    remaining = set(targets) - {source}
    queue = [source]
    head = 0
    while head < len(queue) and remaining:
        node = queue[head]
        head += 1
        for slot in range(6):
            if not nbr_alive[node, slot]:
                continue
            nxt = int(nbr[node, slot])
            if seen[nxt]:
                continue
            seen[nxt] = True
            parent_link[nxt] = node * 6 + slot
            remaining.discard(nxt)
            queue.append(nxt)
    return parent_link


def link_loads(
    torus: Torus3D,
    src: np.ndarray,
    dst: np.ndarray,
    volumes: np.ndarray,
) -> np.ndarray:
    """Accumulate per-link traffic for many messages (float64[num_links]).

    This realizes Eq. (1) of the paper, summed in one vectorized pass:
    ``Congestion(e) = Σ inSP(e, Γ(t1), Γ(t2)) · c(t1, t2)`` (pass unit
    volumes for the message-count variant).
    """
    volumes = np.asarray(volumes, dtype=np.float64)
    links, msg = routes_bulk(torus, src, dst)
    loads = np.zeros(torus.num_links, dtype=np.float64)
    if links.size:
        np.add.at(loads, links, volumes[msg])
    return loads


def _ranges(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(c)`` per count (see repro.graph.csr)."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    block_starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(block_starts, counts)


# ---------------------------------------------------------------------------
# RouteTable — the shared CSR view of many static routes.
# ---------------------------------------------------------------------------


class RouteTable:
    """CSR routes of ``M`` (src, dst) pairs: ``ptr`` int64[M+1], ``links``.

    ``links[ptr[i]:ptr[i+1]]`` are the directed link ids of pair *i*'s
    static route in traversal order (X hops, then Y, then Z, hop by hop);
    intra-node pairs own an empty segment, so a table can index a full
    edge list without filtering.  The table is the single route store
    shared by the congestion model (which delta-updates it in place via
    :meth:`replace_routes`), the congestion metrics and the flow
    simulator — and, through the API's artifact cache, across algorithms
    of one ``map_batch``.
    """

    __slots__ = ("num_links", "ptr", "links")

    def __init__(self, ptr: np.ndarray, links: np.ndarray, num_links: int) -> None:
        self.ptr = np.asarray(ptr, dtype=np.int64)
        self.links = np.asarray(links, dtype=np.int64)
        self.num_links = int(num_links)

    # -- construction --------------------------------------------------
    @classmethod
    def build(cls, torus: Torus3D, src: np.ndarray, dst: np.ndarray) -> "RouteTable":
        """Enumerate and index the routes of many pairs (one bulk pass)."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        links, msg = routes_bulk(torus, src, dst)
        return cls.from_bulk(src.shape[0], links, msg, torus.num_links)

    @classmethod
    def from_bulk(
        cls, num_pairs: int, links: np.ndarray, msg: np.ndarray, num_links: int
    ) -> "RouteTable":
        """Reorder a ``routes_bulk`` result (dimension-major) into CSR.

        The stable sort by pair preserves each route's traversal order.
        """
        order = np.argsort(msg, kind="stable")
        counts = np.bincount(msg, minlength=num_pairs)
        ptr = np.zeros(num_pairs + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        return cls(ptr, links[order], num_links)

    # -- views ---------------------------------------------------------
    @property
    def num_pairs(self) -> int:
        return self.ptr.shape[0] - 1

    @property
    def num_entries(self) -> int:
        return self.links.shape[0]

    def counts(self) -> np.ndarray:
        """int64[M]: hop count of each pair's route."""
        return np.diff(self.ptr)

    def links_of(self, pair: int) -> np.ndarray:
        """Directed link ids of pair *pair*'s route (view, do not write)."""
        return self.links[self.ptr[pair] : self.ptr[pair + 1]]

    def pair_of_entry(self) -> np.ndarray:
        """int64[num_entries]: owning pair of each CSR entry."""
        return np.repeat(np.arange(self.num_pairs, dtype=np.int64), self.counts())

    def gather(self, pairs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(links, counts)`` of the requested pairs' segments, concatenated."""
        pairs = np.asarray(pairs, dtype=np.int64)
        lo = self.ptr[pairs]
        counts = self.ptr[pairs + 1] - lo
        idx = np.repeat(lo, counts) + _ranges(counts)
        return self.links[idx], counts

    def accumulate(self, volumes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-link ``(message_count, volume)`` over all routed pairs.

        Realizes Eq. (1) of the paper for every directed link at once —
        the congestion metrics' and the congestion model's load arrays.
        """
        volumes = np.asarray(volumes, dtype=np.float64)
        fn = _kernel_backend().accumulate_loads
        if fn is not None:
            return fn(self.ptr, self.links, volumes, self.num_links)
        msgs = np.bincount(self.links, minlength=self.num_links).astype(np.float64)
        vols = np.zeros(self.num_links, dtype=np.float64)
        if self.links.size:
            np.add.at(vols, self.links, np.repeat(volumes, self.counts()))
        return msgs, vols

    def copy(self) -> "RouteTable":
        """Independent copy (mutation via :meth:`replace_routes` is in place)."""
        return RouteTable(self.ptr.copy(), self.links.copy(), self.num_links)

    # -- delta updates -------------------------------------------------
    def replace_routes(
        self, pairs: np.ndarray, new_links: np.ndarray, new_counts: np.ndarray
    ) -> None:
        """Splice new route segments for *pairs* into the CSR arrays.

        ``new_links`` holds the replacement segments concatenated in
        *pairs* order (traversal order within each pair); ``new_counts``
        aligns with *pairs*.  Cost is O(num_entries) array copies — no
        route enumeration — which is what keeps congestion-model commits
        at O(deg·D) routing work.
        """
        pairs = np.asarray(pairs, dtype=np.int64)
        new_counts = np.asarray(new_counts, dtype=np.int64)
        fn = _kernel_backend().splice_routes
        if fn is not None:
            self.ptr, self.links = fn(
                self.ptr,
                self.links,
                pairs,
                np.asarray(new_links, dtype=np.int64),
                new_counts,
            )
            return
        counts = np.diff(self.ptr)
        moved = np.zeros(self.num_pairs, dtype=bool)
        moved[pairs] = True
        keep_entries = ~np.repeat(moved, counts)

        next_counts = counts.copy()
        next_counts[pairs] = new_counts
        next_ptr = np.zeros(self.num_pairs + 1, dtype=np.int64)
        np.cumsum(next_counts, out=next_ptr[1:])
        out = np.empty(int(next_ptr[-1]), dtype=np.int64)

        kept_pairs_of_entry = np.repeat(
            np.arange(self.num_pairs, dtype=np.int64), counts
        )[keep_entries]
        offsets = _ranges(counts)[keep_entries]
        out[next_ptr[kept_pairs_of_entry] + offsets] = self.links[keep_entries]

        dest_pairs = np.repeat(pairs, new_counts)
        out[next_ptr[dest_pairs] + _ranges(new_counts)] = np.asarray(
            new_links, dtype=np.int64
        )
        self.ptr = next_ptr
        self.links = out


def shared_route_table(
    torus: Torus3D, src: np.ndarray, dst: np.ndarray, cache=None
) -> RouteTable:
    """Build the endpoints' route table, through a cache when given.

    *cache* is an :class:`~repro.api.cache.ArtifactCache` (duck-typed:
    anything with ``get_or_compute``); the single ``route_table``
    namespace and :func:`route_table_key` keying live here so every
    consumer — the MC/MMC refiners, the congestion metrics, the flow
    simulator — shares one entry per (torus, endpoints).  Callers that
    mutate the table (the congestion model) must copy it first.
    """
    if cache is None:
        return RouteTable.build(torus, src, dst)
    return cache.get_or_compute(
        "route_table",
        route_table_key(torus, src, dst),
        lambda: RouteTable.build(torus, src, dst),
    )


def route_table_key(torus: Torus3D, src: np.ndarray, dst: np.ndarray) -> int:
    """Content cache key of a :class:`RouteTable` build.

    Static dimension-ordered routes depend only on the torus dimensions
    and the endpoint pairs, so the key fingerprints exactly those — two
    algorithms routing the same endpoints on the same torus share one
    table regardless of which graph or mapping produced the pairs.  A
    failure mask changes the routes, so a degraded torus additionally
    fingerprints its dead links/nodes (healthy keys are unchanged).
    """
    from repro.util.fingerprint import fingerprint_arrays

    dims = np.asarray(torus.dims, dtype=np.int64)
    arrays = [dims, np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)]
    if torus.has_faults:
        arrays.extend(torus.fault_arrays())
    return fingerprint_arrays(*arrays)

