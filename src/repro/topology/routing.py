"""Static dimension-ordered routing on the 3-D torus.

Gemini routes packets with static dimension-ordered routing: a message
first resolves its X offset, then Y, then Z, always taking the shorter way
around the torus ring (ties broken toward the ``+`` direction, which pins
the routing function down deterministically — the paper's congestion
metrics assume "the messages are not split and sent through only a single
path via static routing").

The module exposes both a scalar route enumerator (:func:`route`) and the
bulk, fully vectorized :func:`routes_bulk` used by the congestion metrics
and Algorithm 3's ``commTasks`` construction: for ``|Et|`` messages the
output has at most ``|Et| * D`` entries (D = torus diameter), matching the
paper's complexity accounting.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.topology.torus import Torus3D

__all__ = ["route", "routes_bulk", "route_lengths", "link_loads"]


def _dim_plan(
    torus: Torus3D, cu: np.ndarray, cv: np.ndarray, dim: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-message (steps, direction) along *dim*.

    direction 0 = increasing coordinate (with wrap), 1 = decreasing.
    Ties (both ways equal) go to direction 0.
    """
    size = torus.dims[dim]
    fwd = (cv[:, dim] - cu[:, dim]) % size
    bwd = size - fwd
    take_fwd = fwd <= bwd
    steps = np.where(take_fwd, fwd, bwd)
    # A zero-offset message takes no steps; direction is irrelevant then.
    steps = np.where(fwd == 0, 0, steps)
    direction = np.where(take_fwd, 0, 1)
    return steps.astype(np.int64), direction.astype(np.int64)


def route(torus: Torus3D, u: int, v: int) -> List[int]:
    """Directed link ids of the static route from node *u* to node *v*.

    The length of the returned list equals ``torus.hop_distance(u, v)``.
    """
    links, _ = routes_bulk(
        torus, np.asarray([u], dtype=np.int64), np.asarray([v], dtype=np.int64)
    )
    return [int(l) for l in links]


def route_lengths(torus: Torus3D, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Hop count of each route — identical to ``torus.hop_distance``."""
    return torus.hop_distance(src, dst)


def routes_bulk(
    torus: Torus3D, src: np.ndarray, dst: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Enumerate the static routes of many messages at once.

    Parameters
    ----------
    torus:
        The torus to route on.
    src, dst:
        int64[M] node ids of the message endpoints.

    Returns
    -------
    (links, msg):
        ``links`` is an int64 array of directed link ids; ``msg[i]`` tells
        which input message traverses ``links[i]``.  Entries appear in
        dimension order (X segments of all messages, then Y, then Z), with
        each message's segment ordered hop by hop.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError("src and dst must have equal length")
    m = src.shape[0]
    if m == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    coords = torus.coords()
    cu = coords[src]
    cv = coords[dst]
    nx, ny, _ = torus.dims

    all_links = []
    all_msgs = []
    # Current coordinates resolve dimension by dimension: after the X
    # segment the x coordinate equals the destination's, etc.
    cur = cu.copy()
    for dim in range(3):
        size = torus.dims[dim]
        steps, direction = _dim_plan(torus, cur, cv, dim)
        total = int(steps.sum())
        if total:
            msg = np.repeat(np.arange(m, dtype=np.int64), steps)
            t = _ranges(steps)
            sign = np.where(direction == 0, 1, -1)[msg]
            coord_t = (cur[msg, dim] + sign * t) % size
            # Rebuild the id of the node the packet occupies at step t.
            x = np.where(dim == 0, coord_t, cur[msg, 0])
            y = np.where(dim == 1, coord_t, cur[msg, 1])
            z = np.where(dim == 2, coord_t, cur[msg, 2])
            node_t = x + nx * (y + ny * z)
            link = node_t * 6 + dim * 2 + np.where(sign[...] == 1, 0, 1)
            all_links.append(link)
            all_msgs.append(msg)
        # The packet has now fully resolved this dimension.
        cur[:, dim] = cv[:, dim]

    if not all_links:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(all_links), np.concatenate(all_msgs)


def link_loads(
    torus: Torus3D,
    src: np.ndarray,
    dst: np.ndarray,
    volumes: np.ndarray,
) -> np.ndarray:
    """Accumulate per-link traffic for many messages (float64[num_links]).

    This realizes Eq. (1) of the paper, summed in one vectorized pass:
    ``Congestion(e) = Σ inSP(e, Γ(t1), Γ(t2)) · c(t1, t2)`` (pass unit
    volumes for the message-count variant).
    """
    volumes = np.asarray(volumes, dtype=np.float64)
    links, msg = routes_bulk(torus, src, dst)
    loads = np.zeros(torus.num_links, dtype=np.float64)
    if links.size:
        np.add.at(loads, links, volumes[msg])
    return loads


def _ranges(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(c)`` per count (see repro.graph.csr)."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    block_starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(block_starts, counts)
