"""Machine abstraction: topology graph plus a processor allocation.

``Machine`` bundles what the paper calls ``Gm`` together with the job's
allocated node set ``Va ⊆ Vm`` and per-node computation capacities
``w(m)`` (the number of allocated processors on each node; zero for nodes
outside the allocation).  Mapping algorithms receive a ``Machine`` and
never look at raw torus internals beyond distances, routes and BFS.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.topology.torus import Torus3D

__all__ = ["Machine"]


class Machine:
    """A torus with an allocation.

    Parameters
    ----------
    torus:
        The underlying :class:`Torus3D`.
    alloc_nodes:
        Node ids reserved for the application (``Va``), in allocation
        order — the order the scheduler hands them out, which the DEF
        mapping follows rank by rank.
    procs_per_node:
        Either a scalar (uniform capacity) or an array aligned with
        *alloc_nodes*.
    """

    __slots__ = (
        "torus",
        "alloc_nodes",
        "capacities",
        "_alloc_mask",
        "_alloc_index",
    )

    def __init__(
        self,
        torus: Torus3D,
        alloc_nodes: Sequence[int],
        procs_per_node=16,
    ) -> None:
        self.torus = torus
        nodes = np.asarray(list(alloc_nodes), dtype=np.int64)
        if nodes.size == 0:
            raise ValueError("allocation must contain at least one node")
        if nodes.min() < 0 or nodes.max() >= torus.num_nodes:
            raise ValueError("allocated node id outside the torus")
        if np.unique(nodes).shape[0] != nodes.shape[0]:
            raise ValueError("allocation contains duplicate nodes")
        if torus.has_faults and not torus.node_alive()[nodes].all():
            raise ValueError(
                "allocation contains dead nodes; use Machine.degrade() to "
                "drop failed nodes from an existing allocation"
            )
        self.alloc_nodes = nodes
        caps = np.asarray(procs_per_node, dtype=np.int64)
        if caps.ndim == 0:
            caps = np.full(nodes.shape[0], int(caps), dtype=np.int64)
        if caps.shape[0] != nodes.shape[0]:
            raise ValueError("procs_per_node must align with alloc_nodes")
        if np.any(caps <= 0):
            raise ValueError("per-node capacities must be positive")
        self.capacities = caps
        self._alloc_mask: Optional[np.ndarray] = None
        self._alloc_index: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def num_alloc_nodes(self) -> int:
        return self.alloc_nodes.shape[0]

    @property
    def total_procs(self) -> int:
        return int(self.capacities.sum())

    def alloc_mask(self) -> np.ndarray:
        """bool[num_nodes]: membership in ``Va`` (cached)."""
        if self._alloc_mask is None:
            mask = np.zeros(self.torus.num_nodes, dtype=bool)
            mask[self.alloc_nodes] = True
            self._alloc_mask = mask
        return self._alloc_mask

    def alloc_index(self) -> np.ndarray:
        """int64[num_nodes]: index into *alloc_nodes* (-1 if unallocated)."""
        if self._alloc_index is None:
            idx = np.full(self.torus.num_nodes, -1, dtype=np.int64)
            idx[self.alloc_nodes] = np.arange(self.num_alloc_nodes)
            self._alloc_index = idx
        return self._alloc_index

    def node_capacities(self) -> np.ndarray:
        """int64[num_nodes]: ``w(m)`` — zero for nodes outside ``Va``."""
        caps = np.zeros(self.torus.num_nodes, dtype=np.int64)
        caps[self.alloc_nodes] = self.capacities
        return caps

    # ------------------------------------------------------------------
    def graph(self) -> CSRGraph:
        """The topology graph ``Gm`` (all torus nodes, not just ``Va``).

        Mapping BFS traversals must cross unallocated nodes — two allocated
        nodes can be topologically close *through* someone else's job.
        """
        return self.torus.graph()

    def hop_distance(self, u, v) -> np.ndarray:
        return self.torus.hop_distance(u, v)

    def uniform_capacity(self) -> bool:
        """True if every allocated node offers the same processor count."""
        return bool(np.all(self.capacities == self.capacities[0]))

    # ------------------------------------------------------------------
    # degraded machines
    # ------------------------------------------------------------------
    @property
    def has_faults(self) -> bool:
        """True when the underlying torus carries a failure mask."""
        return self.torus.has_faults

    def degrade(self, *, dead_links=(), dead_nodes=()) -> "Machine":
        """This machine with additional failures masked in.

        Dead nodes are dropped from the allocation (the job lost those
        processors); routes and mapping BFS on the returned machine
        detour around every masked link and node.  The original machine
        is untouched — degraded and healthy machines fingerprint to
        different content keys, so cached artifacts never cross over.
        """
        torus = self.torus.with_failures(
            dead_links=dead_links, dead_nodes=dead_nodes
        )
        keep = torus.node_alive()[self.alloc_nodes]
        if not keep.any():
            raise ValueError("failure mask removes every allocated node")
        return Machine(
            torus, self.alloc_nodes[keep], self.capacities[keep]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Machine(torus={self.torus.dims}, nodes={self.num_alloc_nodes}, "
            f"procs={self.total_procs})"
        )
