"""3-D torus geometry (Cray Gemini-like).

Node ids are linearized as ``id = x + nx * (y + ny * z)``.  Every node has
up to six outgoing *directed* links, identified as::

    link_id = node * 6 + dim * 2 + direction      # direction: 0 = +, 1 = -

so congestion can be tracked per directed link with plain array indexing
(the paper counts "the number of messages sent across a link"; with full-
duplex torus links the two directions are independent channels).

Dimensions of size 1 have no links in that dimension; dimensions of size 2
keep both the ``+`` and ``-`` links, modelling them as the two independent
cables Gemini actually wires between adjacent router pairs.

Link bandwidths are per-dimension, defaulting to the Gemini-like values
``(9.38, 4.68, 9.38)`` GB/s — the paper reports Hopper's links span
4.68–9.38 GB/s with different values per dimension.

Degraded machines carry **failure masks**: :meth:`Torus3D.with_failures`
derives a torus with dead links and/or dead nodes (a dead node takes all
its incident links down with it).  Every consumer that holds the torus
sees the degradation without code changes — :meth:`graph` omits dead
links (so mapping BFS avoids dead regions), :meth:`link_bandwidths`
zeroes them, and :func:`repro.topology.routing.routes_bulk` detours
routes around them.  A healthy torus takes none of those code paths, so
healthy-machine results stay byte-identical.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["Torus3D", "GEMINI_BANDWIDTHS"]

#: Per-dimension link bandwidths in GB/s mirroring Hopper's Gemini torus.
GEMINI_BANDWIDTHS: Tuple[float, float, float] = (9.38, 4.68, 9.38)

#: Per-hop latency (seconds); calibrated so nearest/farthest Hopper pairs
#: land in the paper's measured 1.27–3.88 µs window.
HOP_LATENCY_S: float = 0.13e-6
BASE_LATENCY_S: float = 1.14e-6


class Torus3D:
    """A 3-D torus with wrap-around links and per-dimension bandwidths.

    Parameters
    ----------
    dims:
        ``(nx, ny, nz)`` router counts per dimension (each >= 1).
    bandwidths:
        Per-dimension link bandwidth in GB/s.
    dead_links:
        Directed link ids that have failed (both directions of a cable
        fail independently; pass both ids to take the cable down).
    dead_nodes:
        Node ids that have failed; all links into and out of a dead
        node are dead too.
    """

    __slots__ = (
        "dims",
        "bandwidths",
        "num_nodes",
        "dead_links",
        "dead_nodes",
        "_coords",
        "_graph",
        "_link_bw",
        "_link_valid",
        "_link_alive",
        "_hop_table",
    )

    def __init__(
        self,
        dims: Tuple[int, int, int],
        bandwidths: Tuple[float, float, float] = GEMINI_BANDWIDTHS,
        *,
        dead_links=(),
        dead_nodes=(),
    ) -> None:
        dims = tuple(int(d) for d in dims)
        if len(dims) != 3 or any(d < 1 for d in dims):
            raise ValueError(f"dims must be three integers >= 1, got {dims}")
        if any(b <= 0 for b in bandwidths):
            raise ValueError(f"bandwidths must be positive, got {bandwidths}")
        self.dims = dims
        self.bandwidths = tuple(float(b) for b in bandwidths)
        self.num_nodes = dims[0] * dims[1] * dims[2]
        self.dead_links = np.unique(np.asarray(list(dead_links), dtype=np.int64))
        self.dead_nodes = np.unique(np.asarray(list(dead_nodes), dtype=np.int64))
        if self.dead_links.size and (
            self.dead_links.min() < 0 or self.dead_links.max() >= self.num_nodes * 6
        ):
            raise ValueError("dead link id outside the torus link id space")
        if self.dead_nodes.size and (
            self.dead_nodes.min() < 0 or self.dead_nodes.max() >= self.num_nodes
        ):
            raise ValueError("dead node id outside the torus")
        self._coords: Optional[np.ndarray] = None
        self._graph: Optional[CSRGraph] = None
        self._link_bw: Optional[np.ndarray] = None
        self._link_valid: Optional[np.ndarray] = None
        self._link_alive: Optional[np.ndarray] = None
        self._hop_table = None

    # ------------------------------------------------------------------
    # failure masks
    # ------------------------------------------------------------------
    @property
    def has_faults(self) -> bool:
        """True when any link or node failure is masked in."""
        return bool(self.dead_links.size or self.dead_nodes.size)

    def with_failures(self, *, dead_links=(), dead_nodes=()) -> "Torus3D":
        """A torus with the given failures merged into the existing mask.

        Returns a fresh instance (existing per-instance caches — graph,
        hop tables, route tables — key on identity or content and stay
        valid for the healthy original).
        """
        links = np.concatenate(
            [self.dead_links, np.asarray(list(dead_links), dtype=np.int64)]
        )
        nodes = np.concatenate(
            [self.dead_nodes, np.asarray(list(dead_nodes), dtype=np.int64)]
        )
        return Torus3D(
            self.dims, self.bandwidths, dead_links=links, dead_nodes=nodes
        )

    def node_alive(self) -> np.ndarray:
        """bool[num_nodes]: which nodes have not failed."""
        alive = np.ones(self.num_nodes, dtype=bool)
        alive[self.dead_nodes] = False
        return alive

    def link_alive(self) -> np.ndarray:
        """bool[num_links]: valid links that have not failed (cached).

        A link is dead when explicitly masked, or when either of its
        endpoints is a dead node.  On a healthy torus this is exactly
        :meth:`link_valid`.
        """
        if self._link_alive is None:
            alive = self.link_valid().copy()
            if self.dead_links.size:
                alive[self.dead_links] = False
            if self.dead_nodes.size:
                lids = np.flatnonzero(alive)
                src, dst = self.link_endpoints(lids)
                node_ok = self.node_alive()
                alive[lids[~(node_ok[src] & node_ok[dst])]] = False
            self._link_alive = alive
        return self._link_alive

    def fault_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(dead_links, dead_nodes)`` — the content of the failure mask.

        Content-key helpers (``machine_key``, ``route_table_key``)
        fingerprint these so degraded and healthy machines never share
        cached artifacts.
        """
        return self.dead_links, self.dead_nodes

    # ------------------------------------------------------------------
    # coordinates
    # ------------------------------------------------------------------
    def coords(self) -> np.ndarray:
        """int64[num_nodes, 3] coordinates of every node (cached)."""
        if self._coords is None:
            nx, ny, _ = self.dims
            ids = np.arange(self.num_nodes, dtype=np.int64)
            self._coords = np.stack(
                [ids % nx, (ids // nx) % ny, ids // (nx * ny)], axis=1
            )
        return self._coords

    def node_id(self, x: int, y: int, z: int) -> int:
        nx, ny, nz = self.dims
        if not (0 <= x < nx and 0 <= y < ny and 0 <= z < nz):
            raise ValueError(f"coordinate ({x},{y},{z}) outside dims {self.dims}")
        return x + nx * (y + ny * z)

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def hop_distance(self, u, v) -> np.ndarray:
        """Shortest-path hops between node ids *u* and *v* (vectorized).

        Torus distance: per-dimension ``min(|d|, size - |d|)`` summed.
        O(1) per pair — this is what lets the mapping algorithms evaluate
        WH deltas cheaply ("the hop count between two arbitrary nodes can
        be found in O(1), since Gm's are regular graphs").
        """
        cu = self.coords()[np.asarray(u, dtype=np.int64)]
        cv = self.coords()[np.asarray(v, dtype=np.int64)]
        sizes = np.asarray(self.dims, dtype=np.int64)
        diff = np.abs(cu - cv)
        per_dim = np.minimum(diff, sizes - diff)
        return per_dim.sum(axis=-1)

    def hop_table(self):
        """Cached :class:`repro.kernels.HopTable` for batched hop lookups.

        The mapping and metric hot paths go through this table; the
        coordinate formula above stays as the scalar reference the
        equivalence tests compare against.
        """
        from repro.kernels.hoptable import hop_table_for

        return hop_table_for(self)

    @property
    def diameter(self) -> int:
        """Maximum hop distance between any node pair."""
        return sum(d // 2 for d in self.dims)

    def latency(self, u, v) -> np.ndarray:
        """Node-pair latency in seconds: base + per-hop cost."""
        return BASE_LATENCY_S + HOP_LATENCY_S * self.hop_distance(u, v)

    # ------------------------------------------------------------------
    # links
    # ------------------------------------------------------------------
    @property
    def num_links(self) -> int:
        """Size of the directed-link id namespace (includes invalid slots)."""
        return self.num_nodes * 6

    def link_id(self, node, dim, direction) -> np.ndarray:
        """Directed link id for (*node*, *dim*, *direction*) (vectorized)."""
        return (
            np.asarray(node, dtype=np.int64) * 6
            + np.asarray(dim, dtype=np.int64) * 2
            + np.asarray(direction, dtype=np.int64)
        )

    def link_endpoints(self, link_id) -> Tuple[np.ndarray, np.ndarray]:
        """``(src_node, dst_node)`` of directed link ids (vectorized)."""
        lid = np.asarray(link_id, dtype=np.int64)
        node = lid // 6
        dim = (lid % 6) // 2
        direction = lid % 2
        step = np.where(direction == 0, 1, -1)
        return node, self._neighbor(node, dim, step)

    def _neighbor(self, node: np.ndarray, dim: np.ndarray, step: np.ndarray) -> np.ndarray:
        """Neighbour of *node* moving *step* (+1/-1) along *dim* with wrap."""
        nx, ny, nz = self.dims
        c = self.coords()[node].copy()
        sizes = np.asarray(self.dims, dtype=np.int64)
        sel = np.asarray(dim, dtype=np.int64)
        rows = np.arange(c.shape[0]) if c.ndim == 2 else None
        if c.ndim == 1:
            c[sel] = (c[sel] + step) % sizes[sel]
            return c[0] + nx * (c[1] + ny * c[2])
        c[rows, sel] = (c[rows, sel] + step) % sizes[sel]
        return c[:, 0] + nx * (c[:, 1] + ny * c[:, 2])

    def link_valid(self) -> np.ndarray:
        """bool[num_links]: which directed link ids physically exist.

        A ``+``/``-`` pair exists in a dimension of size >= 2 (size-1
        dimensions have no links).
        """
        if self._link_valid is None:
            lids = np.arange(self.num_links, dtype=np.int64)
            dim = (lids % 6) // 2
            sizes = np.asarray(self.dims, dtype=np.int64)
            self._link_valid = sizes[dim] >= 2
        return self._link_valid

    def link_bandwidths(self) -> np.ndarray:
        """float64[num_links] GB/s per directed link (0 for invalid or dead)."""
        if self._link_bw is None:
            lids = np.arange(self.num_links, dtype=np.int64)
            dim = (lids % 6) // 2
            bw = np.asarray(self.bandwidths, dtype=np.float64)[dim]
            bw[~self.link_alive()] = 0.0
            self._link_bw = bw
        return self._link_bw

    # ------------------------------------------------------------------
    # graph view
    # ------------------------------------------------------------------
    def graph(self) -> CSRGraph:
        """Topology graph ``Gm`` as an undirected CSR graph (cached).

        Edge weights are link bandwidths (useful for weighted BFS-style
        heuristics); the mapping algorithms primarily need adjacency for
        their BFS traversals.  Dead links and dead nodes are omitted,
        so BFS-driven placement naturally avoids failed regions.
        """
        if self._graph is None:
            srcs = []
            dsts = []
            wts = []
            nodes = np.arange(self.num_nodes, dtype=np.int64)
            alive = self.link_alive() if self.has_faults else None
            for dim in range(3):
                size = self.dims[dim]
                if size < 2:
                    continue
                for step, direction in ((1, 0), (-1, 1)):
                    nbr = self._neighbor(
                        nodes,
                        np.full(self.num_nodes, dim, dtype=np.int64),
                        np.full(self.num_nodes, step, dtype=np.int64),
                    )
                    use_src, use_nbr = nodes, nbr
                    if alive is not None:
                        keep = alive[nodes * 6 + dim * 2 + direction]
                        use_src, use_nbr = nodes[keep], nbr[keep]
                    srcs.append(use_src)
                    dsts.append(use_nbr)
                    wts.append(
                        np.full(
                            use_src.shape[0], self.bandwidths[dim], dtype=np.float64
                        )
                    )
            if srcs:
                src = np.concatenate(srcs)
                dst = np.concatenate(dsts)
                wt = np.concatenate(wts)
                # accumulate=False would keep parallel edges; from_edges
                # accumulates, which merges the two directions of size-2
                # dimensions into a single adjacency entry -- correct for
                # BFS purposes.
                self._graph = CSRGraph.from_edges(self.num_nodes, src, dst, wt)
            else:
                self._graph = CSRGraph.empty(self.num_nodes)
        return self._graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        faults = (
            f", dead_links={self.dead_links.size}, dead_nodes={self.dead_nodes.size}"
            if self.has_faults
            else ""
        )
        return f"Torus3D(dims={self.dims}, bw={self.bandwidths}{faults})"
