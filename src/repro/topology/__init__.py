"""Machine topology substrate: 3-D torus, static routing, allocations.

The paper targets NERSC's Hopper (Cray XE6): a 3-D torus of Gemini routers
with wrap-around links, static shortest-path routing, per-dimension link
bandwidths between 4.68 and 9.38 GB/s and node-to-node latencies between
1.27 and 3.88 µs.  The Cray scheduler hands each job a *sparse*,
non-contiguous set of nodes ordered along a space-filling curve.

All of that is rebuilt here:

* :class:`repro.topology.torus.Torus3D` -- the torus geometry, O(1) hop
  distances and the directed-link namespace;
* :mod:`repro.topology.routing` -- dimension-ordered static routing with
  deterministic tie-breaking (bulk, vectorized route enumeration);
* :class:`repro.topology.machine.Machine` -- topology graph ``Gm`` plus an
  allocation ``Va`` with per-node processor capacities;
* :class:`repro.topology.allocation.SparseAllocator` -- ALPS-like
  fragmented allocation generator.
"""

from repro.topology.torus import Torus3D
from repro.topology.machine import Machine
from repro.topology.allocation import SparseAllocator, AllocationSpec, torus_for_job

__all__ = ["Torus3D", "Machine", "SparseAllocator", "AllocationSpec", "torus_for_job"]
