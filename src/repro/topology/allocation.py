"""Cray-ALPS-like sparse allocation generator.

On Hopper "the scheduler allocates a non-contiguous set of nodes for each
job.  Although it attempts to assign nearby nodes, no locality guarantee is
provided" (paper Sec. II-B, citing Albing et al., CUG 2011).  ALPS orders
nodes along a linear, locality-preserving curve and hands each job the
free nodes it encounters while walking that order — fragmentation comes
from the other jobs already resident in the machine.

:class:`SparseAllocator` reproduces that process: it fills a fraction of
the torus with synthetic background jobs (sizes drawn from a lognormal,
placed along the space-filling order), then walks the order from a random
offset collecting free nodes for the requested job.  ``fragmentation = 0``
yields a contiguous SFC segment; larger values scatter the job across the
machine the way a busy production system does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.topology.machine import Machine
from repro.topology.torus import Torus3D
from repro.util.rng import seeded_rng
from repro.util.sfc import sfc_node_order

__all__ = ["SparseAllocator", "AllocationSpec"]


@dataclass(frozen=True)
class AllocationSpec:
    """Everything needed to reproduce one allocation.

    Attributes
    ----------
    num_nodes:
        Number of nodes the job requests.
    procs_per_node:
        Processors used per node (the paper uses 16 of Hopper's 24 to keep
        allocations uniform).
    fragmentation:
        Fraction of the machine occupied by background jobs (0 — 0.9).
    seed:
        RNG seed; two different seeds model the paper's "two different
        allocations".
    """

    num_nodes: int
    procs_per_node: int = 16
    fragmentation: float = 0.35
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.procs_per_node <= 0:
            raise ValueError("procs_per_node must be positive")
        if not (0.0 <= self.fragmentation <= 0.9):
            raise ValueError("fragmentation must be in [0, 0.9]")


class SparseAllocator:
    """Generates :class:`Machine` allocations on a torus."""

    def __init__(self, torus: Torus3D) -> None:
        self.torus = torus
        self._order = sfc_node_order(torus.dims)

    def allocate(self, spec: AllocationSpec) -> Machine:
        """Produce a sparse allocation according to *spec*.

        Raises ValueError if the torus cannot host the job alongside the
        requested background occupancy.
        """
        n = self.torus.num_nodes
        want = spec.num_nodes
        if want > n:
            raise ValueError(
                f"job wants {want} nodes but the torus has only {n}"
            )
        rng = seeded_rng(spec.seed)
        busy = np.zeros(n, dtype=bool)
        target_busy = int(spec.fragmentation * n)
        if target_busy > n - want:
            target_busy = n - want

        order = self._order
        pos_of = np.empty(n, dtype=np.int64)
        pos_of[order] = np.arange(n)

        # Background jobs: lognormal sizes placed at random SFC offsets,
        # skipping already-busy slots (like real schedulers backfilling).
        placed = 0
        guard = 0
        while placed < target_busy and guard < 10_000:
            guard += 1
            size = max(1, int(rng.lognormal(mean=2.2, sigma=1.0)))
            size = min(size, target_busy - placed)
            start = int(rng.integers(0, n))
            pos = start
            taken = 0
            scanned = 0
            while taken < size and scanned < n:
                node = order[pos % n]
                if not busy[node]:
                    busy[node] = True
                    taken += 1
                    placed += 1
                pos += 1
                scanned += 1

        # Walk the SFC from a random offset, collecting free nodes.
        start = int(rng.integers(0, n))
        alloc = []
        pos = start
        scanned = 0
        while len(alloc) < want and scanned < n:
            node = order[pos % n]
            if not busy[node]:
                alloc.append(int(node))
            pos += 1
            scanned += 1
        if len(alloc) < want:
            raise ValueError(
                f"could not find {want} free nodes "
                f"(background occupancy too high)"
            )
        return Machine(self.torus, alloc, spec.procs_per_node)

    def allocate_nodes(
        self,
        num_nodes: int,
        procs_per_node: int = 16,
        fragmentation: float = 0.35,
        seed: int = 0,
    ) -> Machine:
        """Convenience wrapper building the spec inline."""
        return self.allocate(
            AllocationSpec(
                num_nodes=num_nodes,
                procs_per_node=procs_per_node,
                fragmentation=fragmentation,
                seed=seed,
            )
        )


def torus_for_job(
    num_nodes: int,
    *,
    headroom: float = 2.0,
    aspect: Optional[tuple] = None,
) -> Torus3D:
    """Pick torus dimensions able to host *num_nodes* with *headroom*.

    Chooses near-cubic dimensions (x and y equal powers of two when
    possible so the Hilbert ordering applies, z free) with total node
    count >= headroom * num_nodes, loosely mirroring how jobs occupy a
    fraction of Hopper's 6384-node torus.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if aspect is not None:
        return Torus3D(aspect)
    total = max(8, int(np.ceil(num_nodes * headroom)))
    # Near-cubic: x = y = 2^k close to total^(1/3), z fills the remainder.
    k = max(1, int(round(np.log2(max(2.0, total ** (1.0 / 3.0))))))
    side = 2**k
    nz = max(2, int(np.ceil(total / (side * side))))
    return Torus3D((side, side, nz))
