"""Latency histograms and rolling windows for the serving layer.

A mapping *service* is judged by its tail: the ROADMAP's
network-latency references (and the serving literature generally) show
that geo-mean throughput hides exactly the behaviour users feel, so the
server, the load generator and the CI gate all need the same cheap,
mergeable latency summary.  Two primitives live here:

:class:`LatencyHistogram`
    Log-bucketed counts over a fixed range.  ``observe`` is O(1)
    (a ``bisect`` into precomputed bounds), percentiles are estimated
    by linear interpolation inside the covering bucket, and two
    histograms with the same layout :meth:`merge` exactly — which is
    how per-thread client histograms in ``benchmarks/serve_load.py``
    combine into one phase summary.

:class:`RollingWindow`
    Timestamped event deque bounded by age, for "recent rate" gauges
    (requests/sec over the last N seconds) where a lifetime counter
    would flatten bursts.

Both are thread-safe: the server observes from the event loop while
``GET stats`` snapshots from driver threads, and the load generator
observes from many client threads at once.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_right
from typing import Callable, Dict, List, Optional, Sequence

__all__ = ["LatencyHistogram", "RollingWindow", "summarize_latencies"]


class LatencyHistogram:
    """Log-bucketed latency histogram with percentile estimates.

    Parameters
    ----------
    min_s / max_s:
        Range covered by the log-spaced buckets.  Observations below
        ``min_s`` land in the first bucket, observations above
        ``max_s`` in the overflow bucket (whose upper edge is clamped
        to the true observed maximum for interpolation).
    buckets_per_decade:
        Resolution: 20 gives ~12% relative bucket width, ample for
        p50/p95/p99 reporting.
    """

    def __init__(
        self,
        min_s: float = 1e-4,
        max_s: float = 600.0,
        buckets_per_decade: int = 20,
    ) -> None:
        if not (0 < min_s < max_s):
            raise ValueError("need 0 < min_s < max_s")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        decades = math.log10(max_s / min_s)
        n = max(1, math.ceil(decades * buckets_per_decade))
        ratio = (max_s / min_s) ** (1.0 / n)
        #: Upper bounds of the finite buckets; one overflow bucket past.
        self.bounds: List[float] = [min_s * ratio ** (i + 1) for i in range(n)]
        self.bounds[-1] = max_s  # kill float drift on the last edge
        self.counts: List[int] = [0] * (n + 1)
        self.count = 0
        self.total_s = 0.0
        self.min_seen: Optional[float] = None
        self.max_seen: Optional[float] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def observe(self, seconds: float) -> None:
        """Record one latency sample (negative values clamp to 0)."""
        s = max(0.0, float(seconds))
        with self._lock:
            index = bisect_right(self.bounds, s)
            self.counts[index] += 1
            self.count += 1
            self.total_s += s
            self.min_seen = s if self.min_seen is None else min(self.min_seen, s)
            self.max_seen = s if self.max_seen is None else max(self.max_seen, s)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold *other*'s samples into this histogram (same layout only)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bucket layouts")
        with other._lock:
            counts = list(other.counts)
            count, total = other.count, other.total_s
            mn, mx = other.min_seen, other.max_seen
        with self._lock:
            for i, c in enumerate(counts):
                self.counts[i] += c
            self.count += count
            self.total_s += total
            if mn is not None:
                self.min_seen = mn if self.min_seen is None else min(self.min_seen, mn)
            if mx is not None:
                self.max_seen = mx if self.max_seen is None else max(self.max_seen, mx)

    # ------------------------------------------------------------------
    def percentile(self, q: float) -> float:
        """Estimated latency (seconds) at quantile ``q`` in (0, 1]."""
        if not (0.0 < q <= 1.0):
            raise ValueError("q must be in (0, 1]")
        with self._lock:
            if self.count == 0:
                return 0.0
            target = q * self.count
            cumulative = 0
            for i, c in enumerate(self.counts):
                if c == 0:
                    continue
                lo = 0.0 if i == 0 else self.bounds[i - 1]
                hi = (
                    self.bounds[i]
                    if i < len(self.bounds)
                    else max(self.max_seen or lo, lo)
                )
                if cumulative + c >= target:
                    frac = (target - cumulative) / c
                    est = lo + (hi - lo) * frac
                    # Never report past the true extremes.
                    if self.max_seen is not None:
                        est = min(est, self.max_seen)
                    if self.min_seen is not None:
                        est = max(est, self.min_seen)
                    return est
                cumulative += c
            return self.max_seen or 0.0

    def summary(self) -> Dict[str, float]:
        """JSON-ready ``{count, mean_ms, p50_ms, p95_ms, p99_ms, max_ms}``."""
        with self._lock:
            count, total = self.count, self.total_s
            max_seen = self.max_seen
        if count == 0:
            return {"count": 0}
        return {
            "count": count,
            "mean_ms": 1e3 * total / count,
            "p50_ms": 1e3 * self.percentile(0.50),
            "p95_ms": 1e3 * self.percentile(0.95),
            "p99_ms": 1e3 * self.percentile(0.99),
            "max_ms": 1e3 * (max_seen or 0.0),
        }


def summarize_latencies(samples: Sequence[float]) -> Dict[str, float]:
    """Exact percentile summary of a finite sample list (benchmarks).

    Same keys as :meth:`LatencyHistogram.summary`, but computed from
    the sorted samples directly — the load generator keeps every
    latency anyway, so its committed snapshot numbers are exact rather
    than bucket-interpolated.
    """
    if not samples:
        return {"count": 0}
    ordered = sorted(float(s) for s in samples)
    n = len(ordered)

    def pct(q: float) -> float:
        return ordered[min(n - 1, max(0, math.ceil(q * n) - 1))]

    return {
        "count": n,
        "mean_ms": 1e3 * sum(ordered) / n,
        "p50_ms": 1e3 * pct(0.50),
        "p95_ms": 1e3 * pct(0.95),
        "p99_ms": 1e3 * pct(0.99),
        "max_ms": 1e3 * ordered[-1],
    }


class RollingWindow:
    """Event timestamps bounded by age; reports recent rates.

    ``observe()`` appends now (or an explicit value), ``rate()``
    returns events/sec over the window.  The deque is pruned on every
    call, so an idle server's "recent requests/sec" decays to zero
    instead of reporting the last burst forever.
    """

    def __init__(
        self,
        window_s: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s
        self._clock = clock
        self._events: List[float] = []
        self._lock = threading.Lock()

    def observe(self) -> None:
        now = self._clock()
        with self._lock:
            self._events.append(now)
            self._prune(now)

    def count(self) -> int:
        now = self._clock()
        with self._lock:
            self._prune(now)
            return len(self._events)

    def rate(self) -> float:
        """Events per second over the trailing window."""
        return self.count() / self.window_s

    def _prune(self, now: float) -> None:
        cutoff = now - self.window_s
        # Events arrive in time order; find the first survivor.
        keep = bisect_right(self._events, cutoff)
        if keep:
            del self._events[:keep]
