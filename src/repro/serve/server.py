"""MappingServer — the asyncio network front end of the serving stack.

PRs 5–6 built the machinery (long-lived :class:`ExecutorPool`, awaitable
:class:`AsyncMappingService`, fault-tolerant ``execute_plan``) but the
outermost interface stayed a stdin JSONL loop.  This module is the
missing layer: a TCP server speaking the length-prefixed-JSON protocol
of :mod:`repro.serve.protocol`, designed around the observation that a
mapping *service* is judged by its tail latency, not its geo-mean
throughput.  Four mechanisms shape it:

**Admission control.**  ``max_pending`` bounds requests admitted but
not yet answered.  Past the bound, new ``map`` requests are *shed*
immediately with a structured ``overloaded`` error (same shape as the
engine's :class:`~repro.api.fault.PlanError`) — a loaded server answers
"no" in microseconds instead of building an unbounded queue whose tail
latency grows without limit.

**Tenant fairness.**  Admitted requests enter per-tenant FIFO queues
drained by stride scheduling (weighted fair queuing): each tenant
carries a virtual time advanced by ``cost / weight`` per dispatched
request, and the dispatcher always serves the lowest virtual time.  A
tenant flooding requests only burns its own virtual time — a
one-request tenant arriving behind a 50-request flood is dispatched
second, not fifty-first.

**Request coalescing.**  The dispatcher collects admitted requests for
a short ``coalesce_window`` and folds up to ``max_batch`` of them into
*one* ``map_batch`` call.  Identical concurrent workloads then dedupe
through the planner for free — N clients asking for the same mapping
cost one grouping computation — and distinct workloads still share the
batch's pool session.  Per-request deadlines propagate into the
engine's ``node_timeout`` machinery; a deadline that expires while
queued is answered with a ``timeout`` error without touching the pool.

**Observability.**  Every op records into
:class:`~repro.serve.metrics.LatencyHistogram`\\ s (end-to-end, queue
wait, execute) and a counter set; the ``stats`` op (also served to the
``repro-map stats`` CLI) exports p50/p95/p99 per endpoint, queue
depths per tenant, shed/coalesce counters, cache statistics and
:meth:`ExecutorPool.stats` pool health in one JSON object —
the payload the tail-latency CI gate and the load generator read.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict, deque
from typing import Dict, List, Optional, Tuple

from repro.api.aio import AsyncMappingService
from repro.kernels.backend import backend_info
from repro.serve.metrics import LatencyHistogram, RollingWindow
from repro.serve.protocol import (
    ProtocolError,
    error_payload,
    read_frame,
    requests_from_entries,
    response_payload,
    write_frame,
)

__all__ = ["MappingServer", "FairQueue", "ThreadedServer", "DEFAULT_TENANT"]

#: Tenant bucket of requests that name none.
DEFAULT_TENANT = "default"

#: Built (task graph, machine) workloads the server keeps warm (LRU).
WORKLOAD_LIMIT = 32

_COUNTER_NAMES = (
    "accepted",
    "completed",
    "shed",
    "deadline_expired",
    "bad_request",
    "protocol_errors",
    "dispatches",
    "dispatched_requests",
    "coalesced_requests",
    "result_errors",
)


class _Ticket:
    """One admitted ``map`` request travelling queue → dispatch → response."""

    __slots__ = (
        "id",
        "tenant",
        "entries",
        "defaults",
        "deadline_s",
        "arrival",
        "writer",
        "write_lock",
        "requests",
        "cost",
        "dispatch_seq",
    )

    def __init__(self, id, tenant, entries, defaults, deadline_s, writer, write_lock):
        self.id = id
        self.tenant = tenant
        self.entries = entries
        self.defaults = defaults
        self.deadline_s = deadline_s
        self.arrival = time.monotonic()
        self.writer = writer
        self.write_lock = write_lock
        self.requests = None
        self.cost = max(1, len(entries))
        self.dispatch_seq = None

    def remaining(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds left on this ticket's deadline (None = unbounded)."""
        if self.deadline_s is None:
            return None
        return self.deadline_s - ((now or time.monotonic()) - self.arrival)


class FairQueue:
    """Weighted fair queue over per-tenant FIFOs (stride scheduling).

    ``push`` appends to the tenant's FIFO; ``pop`` serves the non-empty
    tenant with the smallest virtual time and advances it by
    ``cost / weight``.  A tenant going idle and returning resumes at
    the queue's current virtual time (``max(own, global)``), so sitting
    out earns no retroactive credit.  Ties break by tenant name, which
    keeps dispatch order deterministic for the fairness tests.
    """

    def __init__(
        self,
        weights: Optional[Dict[str, float]] = None,
        default_weight: float = 1.0,
    ) -> None:
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        for tenant, w in (weights or {}).items():
            if w <= 0:
                raise ValueError(f"tenant {tenant!r} weight must be positive")
        self.weights = dict(weights or {})
        self.default_weight = default_weight
        self._queues: Dict[str, deque] = {}
        self._vtimes: Dict[str, float] = {}
        self._vnow = 0.0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def depths(self) -> Dict[str, int]:
        return {t: len(q) for t, q in self._queues.items() if q}

    def push(self, ticket: _Ticket) -> None:
        tenant = ticket.tenant
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        if not queue:
            # Re-entering tenants start from the current virtual time.
            self._vtimes[tenant] = max(self._vtimes.get(tenant, 0.0), self._vnow)
        queue.append(ticket)
        self._size += 1

    def pop(self) -> _Ticket:
        if not self._size:
            raise IndexError("pop from an empty FairQueue")
        tenant = min(
            (t for t, q in self._queues.items() if q),
            key=lambda t: (self._vtimes[t], t),
        )
        ticket = self._queues[tenant].popleft()
        self._size -= 1
        weight = self.weights.get(tenant, self.default_weight)
        self._vtimes[tenant] += ticket.cost / weight
        self._vnow = (
            min(self._vtimes[t] for t, q in self._queues.items() if q)
            if self._size
            else self._vtimes[tenant]
        )
        return ticket


class MappingServer:
    """TCP front end over an :class:`AsyncMappingService`.

    Parameters
    ----------
    aio:
        A prebuilt :class:`AsyncMappingService` (tests inject one);
        built from *pool* / *service_kwargs* when absent.  Owned either
        way — :meth:`stop` closes it (an attached pool is shared, per
        the aio contract).
    pool:
        Optional :class:`~repro.api.pool.ExecutorPool` backing the
        service — the production configuration.
    host / port:
        Listen address; port 0 picks an ephemeral port (read
        :attr:`address` after :meth:`start`).
    max_pending:
        Admission bound: ``map`` requests admitted but unanswered.
    coalesce_window:
        Seconds the dispatcher collects requests before folding them
        into one engine batch.  0 dispatches eagerly.
    max_batch:
        Most tickets folded into one ``map_batch`` call.
    tenant_weights / default_tenant_weight:
        Weighted-fair-queuing weights (higher = more service).
    retry / node_timeout:
        Engine fault knobs applied to every dispatched batch; a
        ticket's own deadline tightens *node_timeout* further.
    max_in_flight:
        Concurrent plans (forwarded to the built aio service).
    **service_kwargs:
        Forwarded to the built :class:`~repro.api.service.
        MappingService` — including ``config=`` (an
        :class:`~repro.api.config.EngineConfig`), so one config object
        can shape a whole serve deployment's cache, store and engine
        defaults.
    """

    def __init__(
        self,
        aio: Optional[AsyncMappingService] = None,
        *,
        pool=None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = 64,
        coalesce_window: float = 0.005,
        max_batch: int = 16,
        tenant_weights: Optional[Dict[str, float]] = None,
        default_tenant_weight: float = 1.0,
        retry=None,
        node_timeout: Optional[float] = None,
        max_in_flight: int = 2,
        workload_limit: int = WORKLOAD_LIMIT,
        **service_kwargs,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if coalesce_window < 0:
            raise ValueError("coalesce_window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if aio is not None and (pool is not None or service_kwargs):
            raise ValueError(
                "pass either a prebuilt aio service or constructor "
                "arguments, not both"
            )
        self.aio = (
            aio
            if aio is not None
            else AsyncMappingService(
                pool=pool, max_in_flight=max_in_flight, **service_kwargs
            )
        )
        self.pool = pool if pool is not None else self.aio.service.pool
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self.coalesce_window = coalesce_window
        self.max_batch = max_batch
        self.retry = retry
        self.node_timeout = node_timeout
        self.workload_limit = workload_limit

        self._fair = FairQueue(tenant_weights, default_tenant_weight)
        self._pending = 0
        self._workloads: "OrderedDict" = OrderedDict()
        self._server: Optional[asyncio.base_events.Server] = None
        self._dispatcher_task: Optional[asyncio.Task] = None
        self._execute_tasks: set = set()
        self._work_available: Optional[asyncio.Event] = None
        self._drained: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        self._stopping = False
        self._started_at = time.monotonic()
        self.address: Optional[Tuple[str, int]] = None

        self.counters: Dict[str, int] = {name: 0 for name in _COUNTER_NAMES}
        self.latency: Dict[str, LatencyHistogram] = {
            "map": LatencyHistogram(),
            "queue_wait": LatencyHistogram(),
            "execute": LatencyHistogram(),
            "stats": LatencyHistogram(),
        }
        self.recent = RollingWindow(window_s=60.0)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind, start the dispatcher, return the (host, port) bound."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._work_available = asyncio.Event()
        self._drained = asyncio.Event()
        self._drained.set()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        self._started_at = time.monotonic()
        self._dispatcher_task = asyncio.create_task(self._dispatcher())
        return self.address

    async def stop(self, *, drain: bool = True, drain_timeout: float = 30.0) -> None:
        """Stop accepting, optionally drain in-flight work, close the aio.

        With ``drain`` (the default) every already-admitted ticket is
        answered before the service closes; without it, queued tickets
        are abandoned after the timeout.  Idempotent — the ``shutdown``
        op and an outer supervisor may both call it.
        """
        if self._server is None or self._stopping:
            if self._stopped is not None:
                await self._stopped.wait()
            return
        self._stopping = True
        # close() stops accepting immediately.  wait_closed() is NOT
        # awaited: since 3.12 it waits for every open client connection
        # to finish, so one lingering client would wedge the shutdown.
        self._server.close()
        if drain:
            try:
                await asyncio.wait_for(self._drained.wait(), drain_timeout)
            except asyncio.TimeoutError:
                pass
        self._work_available.set()  # unblock the dispatcher for exit
        if self._dispatcher_task is not None:
            # The dispatcher flushes (or rejects) whatever is left.
            await self._dispatcher_task
            self._dispatcher_task = None
        if self._execute_tasks:
            await asyncio.gather(*self._execute_tasks, return_exceptions=True)
        await self.aio.close()
        self._server = None
        self._stopped.set()

    async def serve_until(self, stop_event: asyncio.Event) -> None:
        """Run until *stop_event* is set (or a ``shutdown`` op lands)."""
        if self._server is None:
            await self.start()
        stop_request = asyncio.create_task(stop_event.wait())
        stopped = asyncio.create_task(self._stopped.wait())
        done, pending = await asyncio.wait(
            {stop_request, stopped}, return_when=asyncio.FIRST_COMPLETED
        )
        for task in pending:
            task.cancel()
        await self.stop(drain=True)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except ProtocolError as exc:
                    self.counters["protocol_errors"] += 1
                    await self._safe_reply(
                        writer, write_lock, {"id": None, "ok": False, "error": exc.as_dict()}
                    )
                    break  # framing is gone; the connection is unusable
                if frame is None:
                    break
                await self._handle_frame(frame, writer, write_lock)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_frame(self, frame, writer, write_lock) -> None:
        t0 = time.monotonic()
        if not isinstance(frame, dict):
            self.counters["bad_request"] += 1
            await self._safe_reply(
                writer,
                write_lock,
                {
                    "id": None,
                    "ok": False,
                    "error": error_payload("bad_request", "frame must be an object"),
                },
            )
            return
        op = frame.get("op")
        request_id = frame.get("id")
        if op == "ping":
            await self._safe_reply(
                writer, write_lock, {"id": request_id, "ok": True, "pong": True}
            )
        elif op == "stats":
            payload = {"id": request_id, "ok": True, "stats": self.stats_payload()}
            await self._safe_reply(writer, write_lock, payload)
            self.latency["stats"].observe(time.monotonic() - t0)
        elif op == "shutdown":
            await self._safe_reply(
                writer, write_lock, {"id": request_id, "ok": True, "stopping": True}
            )
            # Stop from a fresh task: stop() awaits this connection's
            # handler siblings, so it must not run inside one.
            asyncio.get_running_loop().create_task(self.stop(drain=True))
        elif op == "map":
            await self._admit(frame, writer, write_lock)
        else:
            self.counters["bad_request"] += 1
            await self._safe_reply(
                writer,
                write_lock,
                {
                    "id": request_id,
                    "ok": False,
                    "error": error_payload(
                        "bad_request", f"unknown op {op!r}; expected map/stats/ping/shutdown"
                    ),
                },
            )

    async def _admit(self, frame, writer, write_lock) -> None:
        request_id = frame.get("id")
        entries = frame.get("entries")
        if entries is None and isinstance(frame.get("entry"), dict):
            entries = [frame["entry"]]
        if not isinstance(entries, list) or not entries:
            self.counters["bad_request"] += 1
            await self._safe_reply(
                writer,
                write_lock,
                {
                    "id": request_id,
                    "ok": False,
                    "error": error_payload(
                        "bad_request", "'entries' must be a non-empty list"
                    ),
                },
            )
            return
        deadline = frame.get("deadline_s")
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError):
                self.counters["bad_request"] += 1
                await self._safe_reply(
                    writer,
                    write_lock,
                    {
                        "id": request_id,
                        "ok": False,
                        "error": error_payload(
                            "bad_request", "'deadline_s' must be a number"
                        ),
                    },
                )
                return
        if self._stopping:
            await self._safe_reply(
                writer,
                write_lock,
                {
                    "id": request_id,
                    "ok": False,
                    "error": error_payload("shutdown", "server is draining"),
                },
            )
            return
        if self._pending >= self.max_pending:
            # Load shed: answer "no" now instead of growing the tail.
            self.counters["shed"] += 1
            await self._safe_reply(
                writer,
                write_lock,
                {
                    "id": request_id,
                    "ok": False,
                    "error": error_payload(
                        "overloaded",
                        f"request queue is full ({self._pending} pending, "
                        f"bound {self.max_pending}); retry with backoff",
                    ),
                    "queue_depth": len(self._fair),
                },
            )
            return
        tenant = frame.get("tenant") or DEFAULT_TENANT
        ticket = _Ticket(
            id=request_id,
            tenant=str(tenant),
            entries=entries,
            defaults=frame.get("defaults") or {},
            deadline_s=deadline,
            writer=writer,
            write_lock=write_lock,
        )
        self._pending += 1
        self._drained.clear()
        self.counters["accepted"] += 1
        self.recent.observe()
        self._fair.push(ticket)
        self._work_available.set()

    # ------------------------------------------------------------------
    # dispatcher: coalescing + fairness + deadline propagation
    # ------------------------------------------------------------------
    async def _dispatcher(self) -> None:
        while True:
            if not len(self._fair):
                if self._stopping:
                    return
                await self._work_available.wait()
                self._work_available.clear()
                continue
            if self.coalesce_window > 0 and not self._stopping:
                # The batching window: let concurrent compatible
                # requests pile up so the planner can dedupe them.
                await asyncio.sleep(self.coalesce_window)
            group: List[_Ticket] = []
            while len(self._fair) and len(group) < self.max_batch:
                group.append(self._fair.pop())
            if group:
                await self._dispatch(group)

    async def _dispatch(self, group: List[_Ticket]) -> None:
        loop = asyncio.get_running_loop()
        now = time.monotonic()
        seq = self.counters["dispatches"] + 1
        ready: List[_Ticket] = []
        for ticket in group:
            ticket.dispatch_seq = seq
            self.latency["queue_wait"].observe(now - ticket.arrival)
            remaining = ticket.remaining(now)
            if remaining is not None and remaining <= 0:
                self.counters["deadline_expired"] += 1
                await self._finish(
                    ticket,
                    {
                        "id": ticket.id,
                        "ok": False,
                        "error": error_payload(
                            "timeout",
                            f"deadline of {ticket.deadline_s:g}s expired "
                            "while queued",
                        ),
                    },
                )
                continue
            # Build MapRequests off the event loop: workload
            # construction (partitioning) can take tens of ms.
            try:
                ticket.requests = await loop.run_in_executor(
                    None,
                    requests_from_entries,
                    ticket.entries,
                    ticket.defaults,
                    self._workloads,
                )
            except ProtocolError as exc:
                self.counters["bad_request"] += 1
                await self._finish(
                    ticket, {"id": ticket.id, "ok": False, "error": exc.as_dict()}
                )
                continue
            ready.append(ticket)
        while len(self._workloads) > self.workload_limit:
            self._workloads.popitem(last=False)
        if not ready:
            return
        self.counters["dispatches"] += 1
        self.counters["dispatched_requests"] += len(ready)
        if len(ready) > 1:
            self.counters["coalesced_requests"] += len(ready)
        # The merged batch runs under the tightest member deadline; the
        # window is short, so co-batched slack rarely differs by much —
        # PERFORMANCE.md documents the trade-off.
        timeouts = [self.node_timeout] + [t.remaining(now) for t in ready]
        effective = min((t for t in timeouts if t is not None), default=None)
        # Execute as a task so the dispatcher keeps draining the queue;
        # the aio service's max_in_flight semaphore bounds concurrency.
        task = asyncio.get_running_loop().create_task(
            self._execute(ready, effective, len(ready))
        )
        self._execute_tasks.add(task)
        task.add_done_callback(self._execute_tasks.discard)

    async def _execute(
        self, group: List[_Ticket], node_timeout: Optional[float], coalesced: int
    ) -> None:
        merged = [req for ticket in group for req in ticket.requests]
        t0 = time.monotonic()
        try:
            responses = await self.aio.map_batch(
                merged,
                retry=self.retry,
                node_timeout=node_timeout,
                on_error="partial",
            )
        except RuntimeError as exc:  # service closed under us
            err = error_payload("shutdown", str(exc), exception=type(exc).__name__)
            for ticket in group:
                await self._finish(ticket, {"id": ticket.id, "ok": False, "error": err})
            return
        elapsed = time.monotonic() - t0
        self.latency["execute"].observe(elapsed)
        # Responses return in request order, algorithms in declared
        # order — split them back per ticket positionally.
        cursor = 0
        for ticket in group:
            count = sum(len(req.algorithms) for req in ticket.requests)
            slice_ = responses[cursor : cursor + count]
            cursor += count
            results = [response_payload(r) for r in slice_]
            self.counters["result_errors"] += sum(1 for r in slice_ if not r.ok)
            await self._finish(
                ticket,
                {
                    "id": ticket.id,
                    "ok": True,
                    "results": results,
                    "elapsed_s": elapsed,
                    "coalesced": coalesced,
                    "dispatch": ticket.dispatch_seq,
                },
            )

    async def _finish(self, ticket: _Ticket, payload: dict) -> None:
        await self._safe_reply(ticket.writer, ticket.write_lock, payload)
        self.latency["map"].observe(time.monotonic() - ticket.arrival)
        self.counters["completed"] += 1
        self._pending -= 1
        if self._pending == 0:
            self._drained.set()

    @staticmethod
    async def _safe_reply(writer, write_lock, payload) -> None:
        """Write one frame; a vanished client must not kill the server."""
        try:
            async with write_lock:
                await write_frame(writer, payload)
        except (ConnectionError, OSError, RuntimeError):
            pass

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats_payload(self) -> dict:
        """The ``stats`` op's JSON object (also the CLI's payload).

        One self-describing snapshot: server config, queue state,
        lifetime counters, per-endpoint latency percentiles, pool
        health and artifact-cache statistics.
        """
        service = self.aio.service
        cache_stats = {
            ns: {
                "hits": s.hits,
                "misses": s.misses,
                "size": s.size,
                "evictions": s.evictions,
                "bytes": s.bytes,
                "store_hits": s.store_hits,
            }
            for ns, s in service.cache.stats().items()
        }
        dispatches = self.counters["dispatches"]
        return {
            "server": {
                "listening": list(self.address) if self.address else None,
                "uptime_s": time.monotonic() - self._started_at,
                "max_pending": self.max_pending,
                "coalesce_window_s": self.coalesce_window,
                "max_batch": self.max_batch,
                "stopping": self._stopping,
            },
            "queue": {
                "pending": self._pending,
                "depth": len(self._fair),
                "tenants": self._fair.depths(),
                "recent_rps": self.recent.rate(),
            },
            "counters": dict(self.counters),
            "coalesce": {
                "dispatches": dispatches,
                "dispatched_requests": self.counters["dispatched_requests"],
                "coalesced_requests": self.counters["coalesced_requests"],
                "mean_batch": (
                    self.counters["dispatched_requests"] / dispatches
                    if dispatches
                    else 0.0
                ),
            },
            "latency": {name: h.summary() for name, h in self.latency.items()},
            "aio": self.aio.stats(),
            "pool": self.pool.stats() if self.pool is not None else None,
            # Poolless (serial) deployments still report which kernel tier
            # serves their requests; with a pool the richer per-worker
            # record rides along under pool.kernel_backend.
            "kernel_backend": (
                self.pool.kernel_stats()
                if self.pool is not None
                else backend_info()
            ),
            "cache": cache_stats,
        }


class ThreadedServer:
    """A :class:`MappingServer` on a private loop thread (tests, tools).

    The asyncio server needs a running loop; blocking callers (pytest,
    the load generator's client threads) get one here::

        with ThreadedServer(max_pending=8) as ts:
            client = ServeClient(*ts.address)

    ``__exit__`` drains and stops the server and joins the thread.
    """

    def __init__(self, **server_kwargs) -> None:
        self._kwargs = server_kwargs
        self.server: Optional[MappingServer] = None
        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surface startup failures to main
            self._failure = exc
            self._ready.set()

    async def _amain(self) -> None:
        self.server = MappingServer(**self._kwargs)
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.address = await self.server.start()
        self._ready.set()
        await self.server.serve_until(self._stop)

    def start(self) -> "ThreadedServer":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._failure is not None:
            raise RuntimeError("server failed to start") from self._failure
        if self.address is None:
            raise RuntimeError("server did not report an address in time")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed (e.g. shutdown op)
        self._thread.join(timeout=60)

    def __enter__(self) -> "ThreadedServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
