"""Wire protocol + the single request parse/validate layer.

Two front ends accept mapping requests — the JSONL ``map-batch
--follow`` stream and the network server in :mod:`repro.serve.server` —
and before this module existed each grew its own manifest decoding and
its own malformed-input error shape.  Everything they share now lives
here:

* **Framing** — length-prefixed JSON: a 4-byte big-endian payload
  length followed by UTF-8 JSON.  Symmetric async (``read_frame`` /
  ``write_frame`` over asyncio streams) and sync (``send_frame`` /
  ``recv_frame`` over plain sockets) halves, so the asyncio server and
  the blocking client library speak bit-identical bytes.
* **Manifest decoding** — ``requests_from_entries`` turns manifest-style
  request entries (``{"matrix": ..., "algos": ..., "procs": ...}``,
  with layered defaults) into :class:`~repro.api.request.MapRequest`
  objects, building and LRU-caching the (task graph, machine)
  workloads.  Both front ends call it, so "what is a valid request"
  has exactly one answer.
* **Error shape** — :class:`ProtocolError` carries the same
  ``{kind, message, exception, attempts, node}`` dict a
  :class:`~repro.api.fault.PlanError` serializes to, with
  protocol-level kinds (``bad_request``, ``overloaded``, ``timeout``,
  ``shutdown``) extending the engine's.  A client cannot tell from the
  shape whether a rejection happened at the socket, in the queue, or
  deep inside a plan — which is the point.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = [
    "MANIFEST_DEFAULTS",
    "MAX_FRAME_BYTES",
    "MAX_BLOB_BYTES",
    "send_blob",
    "recv_blob",
    "ProtocolError",
    "error_payload",
    "encode_frame",
    "read_frame",
    "write_frame",
    "send_frame",
    "recv_frame",
    "build_workload",
    "requests_from_entries",
    "parse_stream_line",
    "response_payload",
]

#: Hard bound on one frame's JSON payload; a peer announcing more is
#: malformed (or hostile) and the connection is dropped.
MAX_FRAME_BYTES = 32 << 20

#: Hard bound on one *binary blob* (an encoded artifact riding behind a
#: JSON control frame in the remote-store / shard-host protocols).
#: Artifacts are array payloads, so the budget is larger than the JSON
#: frame limit.
MAX_BLOB_BYTES = 512 << 20

_LENGTH = struct.Struct(">I")
_BLOB_LENGTH = struct.Struct(">Q")

#: Per-request fallbacks of the manifest entry schema (overridden by a
#: stream/manifest ``defaults`` object, then by each request entry).
MANIFEST_DEFAULTS: Dict[str, Any] = {
    "algos": "UG,UWH",
    "procs": 64,
    "ppn": 4,
    "rows_per_unit": 120,
    "partitioner": "PATOH",
    "seed": 0,
    "delta": 8,
    "fragmentation": 0.3,
}


class ProtocolError(ValueError):
    """A malformed or rejected request, in :class:`PlanError` shape.

    ``kind`` extends the engine's error kinds with protocol-level ones:
    ``bad_request`` (unparseable/invalid input), ``overloaded`` (load
    shed at admission), ``timeout`` (deadline expired before execution)
    and ``shutdown`` (server draining).  :meth:`as_dict` matches
    ``PlanError.as_dict()`` key for key so every front end emits one
    error JSON shape.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "bad_request",
        exception: str = "",
        node: str = "",
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.exception = exception
        self.node = node

    def as_dict(self) -> dict:
        return error_payload(
            self.kind, str(self), exception=self.exception, node=self.node
        )


def error_payload(
    kind: str,
    message: str,
    *,
    exception: str = "",
    node: str = "",
    attempts: int = 1,
) -> dict:
    """The one error-object shape (mirrors ``PlanError.as_dict()``)."""
    return {
        "kind": kind,
        "message": message,
        "exception": exception,
        "attempts": attempts,
        "node": node,
    }


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(payload: Any) -> bytes:
    """Length-prefixed UTF-8 JSON bytes of *payload*."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(body)) + body


def _decode_body(body: bytes) -> Any:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            f"frame payload is not valid JSON: {exc}",
            exception=type(exc).__name__,
        ) from exc


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame "
            f"(limit {MAX_FRAME_BYTES}); dropping connection"
        )


async def read_frame(reader) -> Optional[Any]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError("connection closed mid-frame") from exc
    (length,) = _LENGTH.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return _decode_body(body)


async def write_frame(writer, payload: Any) -> None:
    """Write one frame to an asyncio stream and drain."""
    writer.write(encode_frame(payload))
    await writer.drain()


def send_frame(sock: socket.socket, payload: Any) -> None:
    """Blocking counterpart of :func:`write_frame`."""
    sock.sendall(encode_frame(payload))


def recv_frame(sock: socket.socket) -> Optional[Any]:
    """Blocking counterpart of :func:`read_frame`; ``None`` on clean EOF."""
    header = _recv_exact(sock, _LENGTH.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    _check_length(length)
    body = _recv_exact(sock, length, allow_eof=False)
    return _decode_body(body)


def _recv_exact(
    sock: socket.socket, n: int, *, allow_eof: bool
) -> Optional[bytes]:
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == n:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_blob(sock: socket.socket, data: bytes) -> None:
    """Send one length-prefixed binary blob (8-byte big-endian length).

    Blobs always follow a JSON control frame that announced them (the
    remote store's ``save``/``load`` ops, a shard host's encoded
    :class:`~repro.api.request.MapResponse`), so the two framings never
    need to be distinguished on the wire.
    """
    if len(data) > MAX_BLOB_BYTES:
        raise ProtocolError(
            f"blob of {len(data)} bytes exceeds the {MAX_BLOB_BYTES}-byte limit"
        )
    sock.sendall(_BLOB_LENGTH.pack(len(data)) + data)


def recv_blob(sock: socket.socket) -> bytes:
    """Blocking counterpart of :func:`send_blob`."""
    header = _recv_exact(sock, _BLOB_LENGTH.size, allow_eof=False)
    (length,) = _BLOB_LENGTH.unpack(header)
    if length > MAX_BLOB_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte blob "
            f"(limit {MAX_BLOB_BYTES}); dropping connection"
        )
    return _recv_exact(sock, length, allow_eof=False)


# ---------------------------------------------------------------------------
# Manifest entries -> MapRequests (the shared validate layer)
# ---------------------------------------------------------------------------


def build_workload(
    matrix_name: str,
    procs: int,
    ppn: int,
    rows_per_unit: int,
    partitioner: str,
    seed: int,
    fragmentation: float,
):
    """Corpus matrix → partitioned task graph + allocated machine."""
    from repro.data.corpus import CORPUS, load_matrix
    from repro.graph.task_graph import TaskGraph
    from repro.hypergraph.model import Hypergraph
    from repro.partition.toolbox import get_partitioner
    from repro.topology.allocation import (
        AllocationSpec,
        SparseAllocator,
        torus_for_job,
    )

    entry = next((e for e in CORPUS if e.name == matrix_name), None)
    if entry is None:
        raise ProtocolError(
            f"unknown matrix {matrix_name!r}; corpus: {[e.name for e in CORPUS]}"
        )
    if procs % ppn:
        raise ProtocolError(f"procs {procs} not divisible by ppn {ppn}")
    matrix = load_matrix(entry, rows_per_unit, seed)
    h = Hypergraph.from_matrix(matrix)
    tool = get_partitioner(partitioner)
    part = tool.partition(matrix, procs, seed=seed, hypergraph=h).part
    loads = np.bincount(part, weights=h.loads, minlength=procs)
    tg = TaskGraph.from_comm_triplets(procs, h.comm_triplets(part, procs), loads=loads)
    nodes = procs // ppn
    machine = SparseAllocator(torus_for_job(nodes)).allocate(
        AllocationSpec(
            num_nodes=nodes,
            procs_per_node=ppn,
            fragmentation=fragmentation,
            seed=seed,
        )
    )
    return tg, machine


def requests_from_entries(
    entries: List[dict], defaults: dict, workloads
) -> List:
    """Manifest entries → MapRequests; *workloads* caches built inputs.

    Shared by the one-shot manifest path, the ``--follow`` stream and
    the network server — the long-running front ends pass one
    *workloads* mapping (an ``OrderedDict``; recency order is
    maintained for their LRU bound) across all served batches, so a
    stream hammering the same matrices builds each workload once.

    Every validation failure raises :class:`ProtocolError`, so all
    front ends reject malformed input with the same error object.
    """
    from repro.api.registry import UnknownMapperError, get_spec
    from repro.api.request import MapRequest

    if not isinstance(entries, list) or not entries:
        raise ProtocolError("request batch must be a non-empty list of objects")
    requests: List = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ProtocolError(f"request #{i} must be an object, got {entry!r}")
        spec = {**MANIFEST_DEFAULTS, **defaults, **entry}
        if "matrix" not in spec:
            raise ProtocolError(f"request #{i} names no 'matrix'")
        algos = spec["algos"]
        if isinstance(algos, str):
            algos = tuple(a.strip() for a in algos.split(",") if a.strip())
        elif isinstance(algos, (list, tuple)):
            algos = tuple(algos)
        else:
            raise ProtocolError(
                f"request #{i} 'algos' must be a string or list, got {algos!r}"
            )
        if not algos:
            raise ProtocolError(f"request #{i} names no algorithms")
        for a in algos:  # fail fast, before any workload build
            try:
                get_spec(a)
            except UnknownMapperError as exc:
                raise ProtocolError(
                    f"request #{i}: {exc}", exception=type(exc).__name__
                ) from exc
        try:
            key = (
                spec["matrix"],
                int(spec["procs"]),
                int(spec["ppn"]),
                int(spec["rows_per_unit"]),
                spec["partitioner"],
                int(spec["seed"]),
                float(spec["fragmentation"]),
            )
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                f"request #{i} has a malformed field: {exc}",
                exception=type(exc).__name__,
            ) from exc
        if key not in workloads:
            try:
                workloads[key] = build_workload(*key)
            except ProtocolError:
                raise
            except (KeyError, TypeError, ValueError) as exc:
                raise ProtocolError(
                    f"request #{i}: workload build failed: {exc}",
                    exception=type(exc).__name__,
                ) from exc
        elif hasattr(workloads, "move_to_end"):
            workloads.move_to_end(key)  # serve modes bound by recency
        tg, machine = workloads[key]
        try:
            delta = int(spec["delta"])
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"request #{i} has a malformed 'delta': {exc}") from exc
        requests.append(
            MapRequest(
                task_graph=tg,
                machine=machine,
                algorithms=algos,
                seed=int(spec["seed"]),
                delta=delta,
                evaluate=True,
                tag=spec.get("tag", i),
            )
        )
    return requests


def parse_stream_line(line: str) -> Tuple[str, Any]:
    """Classify one JSONL stream line: ``("defaults", dict)`` or ``("batch", entries)``.

    A line is a request object, a list of request objects (one batch),
    or ``{"defaults": {...}}`` updating the stream's defaults.  Raises
    :class:`ProtocolError` on anything else, so the ``--follow`` loop's
    malformed-line handling matches the server's frame handling.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(
            f"line is not valid JSON: {exc}", exception=type(exc).__name__
        ) from exc
    if isinstance(payload, dict) and set(payload) == {"defaults"}:
        if not isinstance(payload["defaults"], dict):
            raise ProtocolError("'defaults' must be an object")
        return "defaults", payload["defaults"]
    entries = payload if isinstance(payload, list) else [payload]
    return "batch", entries


# ---------------------------------------------------------------------------
# Responses -> JSON
# ---------------------------------------------------------------------------


def response_payload(r) -> dict:
    """One :class:`MapResponse` as the JSON object every front end emits.

    A failed response (``on_error="partial"``) keeps the ``tag`` /
    ``algorithm`` identity fields and carries the structured error in
    place of the mapping payload.  ``mapping_fp`` is the content
    fingerprint of the fine mapping — what "byte-identical responses"
    means over a wire that does not ship the gamma arrays themselves.
    """
    if not r.ok:
        return {
            "tag": r.tag,
            "algorithm": r.algorithm,
            "ok": False,
            "error": r.error.as_dict(),
        }
    return {
        "tag": r.tag,
        "algorithm": r.algorithm,
        "ok": True,
        "metrics": (
            {k: float(v) for k, v in r.metrics.as_dict().items()}
            if r.metrics is not None
            else None
        ),
        "map_time_s": r.map_time,
        "prep_time_s": r.prep_time,
        "grouping_cached": r.grouping_cached,
        "mapping_fp": r.fingerprint(),
    }


def canonical_result(payload: dict) -> dict:
    """A response payload minus its timing fields.

    Two runs of the same deterministic request differ only in wall
    times; this is the equality the byte-identity tests (and clients
    deduping retried responses) compare on.
    """
    drop = {"map_time_s", "prep_time_s", "grouping_cached"}
    return {k: v for k, v in payload.items() if k not in drop}


def entries_signature(entries: Iterable[dict], defaults: dict) -> Tuple:
    """Hashable identity of a request batch after defaults are applied.

    Coalescing uses it to recognize identical concurrent workloads
    without building them; requests with equal signatures are the ones
    the planner will dedupe into shared artifacts.
    """
    out = []
    for entry in entries:
        spec = {**MANIFEST_DEFAULTS, **defaults, **entry}
        out.append(tuple(sorted((k, json.dumps(v, sort_keys=True)) for k, v in spec.items())))
    return tuple(out)
