"""Network serving front end over the mapping service.

The layers underneath (:mod:`repro.api`) already provide long-lived
worker pools, an awaitable service and fault-tolerant plan execution;
this package turns them into something remote clients can actually
talk to:

:mod:`repro.serve.protocol`
    Length-prefixed-JSON framing + the single request parse/validate
    layer shared by the network server and the ``map-batch --follow``
    JSONL front end.
:mod:`repro.serve.server`
    The asyncio :class:`MappingServer`: admission control with load
    shedding, weighted-fair-queuing tenant isolation, request
    coalescing into planner-deduped batches, deadline propagation, and
    a ``stats`` op exporting p50/p95/p99 per endpoint.
:mod:`repro.serve.client`
    Blocking :class:`ServeClient` library (one socket per thread).
:mod:`repro.serve.metrics`
    Reusable :class:`LatencyHistogram` / :class:`RollingWindow`
    primitives behind the observability surface.

CLI: ``repro-map serve --listen 127.0.0.1:8765 --backend process`` runs
a server; ``repro-map stats --connect 127.0.0.1:8765`` queries one.
"""

from repro.serve.client import ServeClient, ServerClosedError, parse_address
from repro.serve.metrics import LatencyHistogram, RollingWindow, summarize_latencies
from repro.serve.protocol import (
    MANIFEST_DEFAULTS,
    ProtocolError,
    canonical_result,
    error_payload,
    requests_from_entries,
    response_payload,
)
from repro.serve.server import (
    DEFAULT_TENANT,
    FairQueue,
    MappingServer,
    ThreadedServer,
)

__all__ = [
    "DEFAULT_TENANT",
    "FairQueue",
    "LatencyHistogram",
    "MANIFEST_DEFAULTS",
    "MappingServer",
    "ProtocolError",
    "RollingWindow",
    "ServeClient",
    "ServerClosedError",
    "ThreadedServer",
    "canonical_result",
    "error_payload",
    "parse_address",
    "requests_from_entries",
    "response_payload",
    "summarize_latencies",
]
