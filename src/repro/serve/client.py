"""Blocking client for the mapping server's length-prefixed protocol.

The server side is asyncio; most callers (tests, the load generator,
shell tooling) are plain threads, so the client is deliberately
synchronous — one socket, one outstanding request per call, responses
matched by id.  Concurrency is achieved the obvious way: one
:class:`ServeClient` per thread.

Quickstart::

    with ServeClient("127.0.0.1", 8765, tenant="ci") as client:
        reply = client.map([{"matrix": "cage12_like", "algos": "UG,UWH"}])
        if reply["ok"]:
            for result in reply["results"]:
                print(result["algorithm"], result["metrics"]["wh"])
        stats = client.stats()
        print(stats["latency"]["map"])
"""

from __future__ import annotations

import socket
from itertools import count
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.protocol import ProtocolError, recv_frame, send_frame

__all__ = ["ServeClient", "ServerClosedError"]


class ServerClosedError(ConnectionError):
    """The server closed the connection before answering."""


class ServeClient:
    """One blocking connection to a :class:`~repro.serve.server.MappingServer`.

    Parameters
    ----------
    host / port:
        Server address (``address`` of a started server).
    tenant:
        Default tenant label stamped on ``map`` requests (individual
        calls may override).  ``None`` lets the server bucket the
        connection under its default tenant.
    timeout:
        Socket timeout in seconds for connect and replies (``None`` =
        block forever).  Mapping runs can be slow; size it generously
        or per call via :meth:`map`'s ``reply_timeout``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: Optional[str] = None,
        timeout: Optional[float] = 60.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.tenant = tenant
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._ids = count(1)

    # ------------------------------------------------------------------
    def connect(self) -> "ServeClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request(
        self, frame: Dict[str, Any], *, reply_timeout: Optional[float] = -1
    ) -> dict:
        """Send one op frame and block for its matching reply.

        ``reply_timeout`` overrides the connection timeout for this
        wait (``-1`` keeps the default, ``None`` blocks forever).
        """
        self.connect()
        request_id = frame.get("id")
        if request_id is None:
            request_id = frame["id"] = next(self._ids)
        send_frame(self._sock, frame)
        if reply_timeout != -1:
            self._sock.settimeout(reply_timeout)
        try:
            while True:
                reply = recv_frame(self._sock)
                if reply is None:
                    raise ServerClosedError(
                        "server closed the connection before replying"
                    )
                # Protocol-level rejections for unparseable frames come
                # back with id None; everything else echoes our id.
                if reply.get("id") in (request_id, None):
                    return reply
        finally:
            if reply_timeout != -1:
                self._sock.settimeout(self.timeout)

    # ------------------------------------------------------------------
    def map(
        self,
        entries: List[dict],
        *,
        tenant: Optional[str] = None,
        deadline_s: Optional[float] = None,
        defaults: Optional[dict] = None,
        reply_timeout: Optional[float] = -1,
    ) -> dict:
        """Submit manifest-style *entries*; returns the reply payload.

        The reply is ``{"id", "ok": True, "results": [...], "elapsed_s",
        "coalesced", "dispatch"}`` on success, or ``{"ok": False,
        "error": {kind, message, ...}}`` when the request was shed
        (``overloaded``), expired (``timeout``), malformed
        (``bad_request``) or refused during drain (``shutdown``).
        Per-result errors (a failed algorithm run) appear inside
        ``results`` with their own ``ok``/``error`` fields.
        """
        frame: Dict[str, Any] = {"op": "map", "entries": list(entries)}
        effective_tenant = tenant if tenant is not None else self.tenant
        if effective_tenant is not None:
            frame["tenant"] = effective_tenant
        if deadline_s is not None:
            frame["deadline_s"] = float(deadline_s)
        if defaults:
            frame["defaults"] = dict(defaults)
        return self.request(frame, reply_timeout=reply_timeout)

    def stats(self) -> dict:
        """The server's observability snapshot (``stats`` op)."""
        reply = self.request({"op": "stats"})
        if not reply.get("ok"):
            raise ProtocolError(
                f"stats op rejected: {reply.get('error')}", kind="bad_request"
            )
        return reply["stats"]

    def ping(self) -> bool:
        try:
            return bool(self.request({"op": "ping"}).get("pong"))
        except (ConnectionError, OSError):
            return False

    def shutdown(self) -> dict:
        """Ask the server to drain and exit (``shutdown`` op)."""
        return self.request({"op": "shutdown"})


def parse_address(text: str) -> Tuple[str, int]:
    """``host:port`` → ``(host, port)`` (CLI --listen/--connect syntax)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address {text!r} is not host:port")
    try:
        return host, int(port)
    except ValueError as exc:
        raise ValueError(f"address {text!r} has a non-integer port") from exc
