"""Fine-level WH refinement (the paper's Sec. III-B discussion).

Algorithm 2 normally runs on the coarse (node-level) graph.  The paper
notes: "With slight modifications, it can perform the refinement on the
finer level task vertices or in a multilevel fashion from coarser to
finer levels" — but warns that fine-level WH-improving swaps "can also
increase the total internode communication volume".  The authors chose
coarse-only; we implement the fine variant as an extension so the trade
can be measured (see ``benchmarks/test_ablation.py``).

The fine refiner swaps individual *ranks* between nodes (unit weights, so
capacity stays exact) using the same machinery: a whHeap of per-rank WH
contributions, BFS-ordered candidate nodes from the ranks' neighbour
nodes, and a Δ early exit.  Because every rank on a candidate node is a
potential partner, each BFS-visited node contributes up to
``procs_per_node`` candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.graph.task_graph import TaskGraph
from repro.kernels import (
    all_task_whops,
    hop_table_for,
    refresh_whops_around,
    total_weighted_hops,
)
from repro.mapping.bfs import bfs_node_levels
from repro.topology.machine import Machine
from repro.util.heap import IntKeyMaxHeap

__all__ = ["FineWHRefiner", "fine_wh_of", "internode_volume"]


def fine_wh_of(task_graph: TaskGraph, machine: Machine, fine_gamma: np.ndarray) -> float:
    """WH of a rank-level mapping (counts each directed edge once)."""
    g = np.asarray(fine_gamma, dtype=np.int64)
    return total_weighted_hops(task_graph.graph, hop_table_for(machine.torus), g)


def internode_volume(task_graph: TaskGraph, fine_gamma: np.ndarray) -> float:
    """Total volume crossing node boundaries under *fine_gamma* (ICV)."""
    src, dst, vol = task_graph.graph.edge_list()
    g = np.asarray(fine_gamma, dtype=np.int64)
    return float(vol[g[src] != g[dst]].sum())


@dataclass
class FineWHRefiner:
    """Rank-granularity WH swap refinement.

    Parameters mirror :class:`repro.mapping.refine_wh.WHRefiner`; *delta*
    counts swap *evaluations* per popped rank.
    """

    delta: int = 8
    min_gain: float = 0.005
    max_passes: int = 20

    def refine(
        self,
        task_graph: TaskGraph,
        machine: Machine,
        fine_gamma: np.ndarray,
    ) -> np.ndarray:
        """Return an improved copy of the rank→node mapping."""
        gamma = np.asarray(fine_gamma, dtype=np.int64).copy()
        sym = task_graph.symmetrized()
        table = hop_table_for(machine.torus)
        gm = machine.graph()
        alloc_mask = machine.alloc_mask()
        n = task_graph.num_tasks

        # node -> list of hosted ranks.
        hosted: Dict[int, List[int]] = {}
        for t in range(n):
            hosted.setdefault(int(gamma[t]), []).append(t)

        wh = fine_wh_of(task_graph, machine, gamma)
        if wh <= 0:
            return gamma

        for _ in range(self.max_passes):
            pass_start = wh
            heap = IntKeyMaxHeap.from_priorities(all_task_whops(sym, table, gamma))
            while heap:
                twh, contrib = heap.pop()
                if contrib <= 0:
                    continue  # nothing to gain from a zero-WH rank
                gain = self._try_swap(
                    twh, sym, table, gm, alloc_mask, gamma, hosted, heap
                )
                wh -= gain
            if pass_start <= 0 or (pass_start - wh) / pass_start <= self.min_gain:
                break
        return gamma

    # ------------------------------------------------------------------
    def _try_swap(self, twh, sym, table, gm, alloc_mask, gamma, hosted, heap) -> float:
        nbrs = sym.neighbors(twh)
        if nbrs.size == 0:
            return 0.0
        na = int(gamma[twh])
        seeds = np.unique(gamma[nbrs])
        checked = 0
        for level in bfs_node_levels(gm, seeds.tolist()):
            eligible = level[alloc_mask[level] & (level != na)]
            for node in eligible.tolist():
                for t in list(hosted.get(node, ())):
                    if checked >= self.delta:
                        return 0.0
                    checked += 1
                    gain = _fine_swap_gain(twh, t, sym, table, gamma)
                    if gain > 1e-12:
                        nb = int(gamma[t])
                        gamma[twh] = nb
                        gamma[t] = na
                        hosted[na].remove(twh)
                        hosted[nb].remove(t)
                        hosted[na].append(t)
                        hosted[nb].append(twh)
                        refresh_whops_around(heap, sym, table, gamma, (twh, t))
                        return gain
        return 0.0


def _rank_whops(t: int, sym, table, gamma: np.ndarray) -> float:
    nbrs = sym.neighbors(t)
    if nbrs.size == 0:
        return 0.0
    hops = table.hops_to_many(int(gamma[t]), gamma[nbrs])
    return float((hops * sym.neighbor_weights(t)).sum())


def _fine_swap_gain(t1: int, t2: int, sym, table, gamma: np.ndarray) -> float:
    """Exact symmetric-WH change of swapping the two ranks' nodes."""
    n1, n2 = int(gamma[t1]), int(gamma[t2])
    if n1 == n2:
        return 0.0

    def cost(task: int, node: int, exclude: int) -> float:
        nbrs = sym.neighbors(task)
        w = sym.neighbor_weights(task)
        keep = nbrs != exclude
        kept = nbrs[keep]
        if kept.size == 0:
            return 0.0
        hops = table.hops_to_many(node, gamma[kept])
        return float((hops * w[keep]).sum())

    before = cost(t1, n1, t2) + cost(t2, n2, t1)
    after = cost(t1, n2, t2) + cost(t2, n1, t1)
    return before - after
