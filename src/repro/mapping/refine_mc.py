"""Algorithm 3 — MC Refinement (``UMC``; with ``metric='message'``, ``UMMC``).

Congestion-driven swap refinement for static-routing networks:

1. compute every link's congestion from the static routes of all messages
   and index the tasks whose messages cross each link (``commTasks``);
2. take the most congested link ``e_mc``;
3. for each task routed through ``e_mc``, search swap partners in BFS
   order from ``Γ[nghbor(t_mc)]`` (the order keeps WH damage minimal) and
   commit the first swap that improves MC — or, at equal MC, improves the
   average congestion AC;
4. go back to 2; stop when the most congested link admits no improvement.

The paper tracks link congestion in a ``congHeap`` and bounds the search
with ``Δ = 8`` candidates per task.  All route/congestion state lives in
the shared :class:`~repro.kernels.congestion.CongestionModel` (per-edge
route table, per-link loads, ``commTasks`` CSR — everything incremental);
this module keeps only the search policy of Algorithm 3: pop order,
candidate ordering, acceptance rule and early exits follow the paper
exactly.  The ≤Δ candidates of one search are scored in a single batched
kernel call (:meth:`CongestionModel.evaluate_swaps`) rather than one
route enumeration pair per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.graph.task_graph import TaskGraph
from repro.kernels.congestion import CongestionModel
from repro.mapping.base import Mapping, validate_mapping
from repro.mapping.bfs import bfs_node_levels
from repro.topology.machine import Machine
from repro.topology.routing import RouteTable, shared_route_table

__all__ = ["MCRefiner"]

_EPS = 1e-9


@dataclass
class MCRefiner:
    """Algorithm 3 with Δ=8 early exit.

    Parameters
    ----------
    metric:
        ``'volume'`` refines MC (volume congestion / bandwidth, ``UMC``);
        ``'message'`` refines MMC (``UMMC``) — "adapting this algorithm
        to refine MMC is trivial".  In message mode the input graph's
        edge weights are interpreted as *message multiplicities* (pass
        ``task_graph.unit_cost()`` for one message per edge, or a coarse
        graph weighted by fine rank-pair counts as the pipeline does);
        bandwidths are ignored.
    batch_candidates:
        Score the ≤Δ candidates of one search in a single batched kernel
        call (default).  ``False`` probes them one by one through the
        scalar ``swap_improves`` — same verdicts, kept as the reference
        path for the batched-vs-scalar property tests.
    """

    delta: int = 8
    metric: str = "volume"
    max_swaps: int = 2_000
    #: how deep into the congestion order a sweep may fall through before
    #: declaring the pass improvement-free (bounds worst-case sweeps; the
    #: paper's congHeap pops successive links until one improves).
    sweep_limit: int = 4
    batch_candidates: bool = True

    def __post_init__(self) -> None:
        if self.metric not in ("volume", "message"):
            raise ValueError("metric must be 'volume' or 'message'")

    @property
    def name(self) -> str:
        return "UMC" if self.metric == "volume" else "UMMC"

    # ------------------------------------------------------------------
    def refine(
        self,
        task_graph: TaskGraph,
        mapping: Mapping,
        *,
        cache=None,
    ) -> Mapping:
        """Refine *mapping* (copy) to lower MC (or MMC) with minimal WH harm.

        Links are visited in ``congHeap`` pop order — most congested
        first, falling through to the next link when the current one
        admits no improving swap.  A committed swap restarts from the
        (recomputed) top; the algorithm stops when a full sweep over the
        loaded links improves nothing, realizing Algorithm 3's "while MC
        or AC is improved" outer loop.

        When an :class:`~repro.api.cache.ArtifactCache` is passed, the
        initial route table is fetched from (or seeded into) its
        ``route_table`` namespace, so algorithms routing the same
        endpoints — UMC and UMMC of one ``map_batch`` — enumerate them
        once.
        """
        machine = mapping.machine
        state = _CongestionState(
            task_graph,
            machine,
            mapping.gamma.copy(),
            self.metric,
            route_table=self._shared_route_table(task_graph, mapping, cache),
        )
        gm = machine.graph()
        sym = task_graph.symmetrized()
        weights = task_graph.loads
        alloc_mask = machine.alloc_mask()

        swaps = 0
        while swaps < self.max_swaps:
            load = state._load()
            order = np.argsort(-load, kind="stable")[: self.sweep_limit]
            order = order[load[order] > _EPS]
            if order.size == 0:
                break
            improved = False
            for emc in order.tolist():
                for tmc in state.tasks_through(emc):
                    partner = self._find_swap(
                        tmc, state, sym, weights, gm, alloc_mask
                    )
                    if partner is not None:
                        state.commit_swap(tmc, partner)
                        swaps += 1
                        improved = True
                        break  # restart from the (new) most congested link
                if improved:
                    break
            if not improved:
                break  # no loaded link can be improved -> stop
        validate_mapping(state.gamma, machine, weights)
        return Mapping(state.gamma, machine)

    @staticmethod
    def _shared_route_table(
        task_graph: TaskGraph, mapping: Mapping, cache
    ) -> Optional[RouteTable]:
        """Initial-route sharing through the artifact cache (optional)."""
        if cache is None:
            return None  # the model builds its own private table
        src_t, dst_t, _ = task_graph.graph.edge_list()
        return shared_route_table(
            mapping.machine.torus,
            mapping.gamma[src_t.astype(np.int64)],
            mapping.gamma[dst_t.astype(np.int64)],
            cache,
        )

    def _find_swap(
        self,
        tmc: int,
        state: "_CongestionState",
        sym,
        weights: np.ndarray,
        gm,
        alloc_mask: np.ndarray,
    ) -> Optional[int]:
        """First MC/AC-improving partner among ≤Δ BFS-ordered candidates.

        Eligibility is filtered per BFS level in one vectorized shot; the
        first Δ surviving candidates are scored in a single batched
        kernel call and the first improving partner (in BFS order) wins —
        exactly the partner the scalar probe-one-by-one loop commits.
        """
        nbrs = sym.neighbors(tmc)
        if nbrs.size == 0:
            return None
        seeds = np.unique(state.gamma[nbrs])
        w_tmc = weights[tmc]
        collected: List[np.ndarray] = []
        total = 0
        for level in bfs_node_levels(gm, seeds.tolist()):
            hosts = state.host[level]
            # host[Γ[tmc]] == tmc subsumes the scalar "skip our own node".
            ok = alloc_mask[level] & (hosts >= 0) & (hosts != tmc)
            cand = hosts[ok]
            cand = cand[weights[cand] == w_tmc]
            if cand.size:
                collected.append(cand)
                total += int(cand.size)
                if total >= self.delta:
                    break
        if total == 0:
            return None
        cands = np.concatenate(collected)[: self.delta]
        if not self.batch_candidates:
            for t in cands.tolist():
                if state.swap_improves(tmc, int(t)):
                    return int(t)
            return None
        verdicts = state.evaluate_swaps(tmc, cands)
        hits = np.flatnonzero(verdicts)
        return int(cands[hits[0]]) if hits.size else None


class _CongestionState(CongestionModel):
    """Thin façade: the legacy constructor over the shared model.

    Everything Algorithm 3 touches — link loads, ``commTasks``, swap
    deltas, commits — lives in :class:`CongestionModel`; this subclass
    only adapts the ``(task_graph, machine, gamma, metric)`` signature
    the refiner (and the existing tests) use.
    """

    def __init__(
        self,
        task_graph: TaskGraph,
        machine: Machine,
        gamma: np.ndarray,
        metric: str,
        *,
        route_table: Optional[RouteTable] = None,
    ) -> None:
        self.tg = task_graph
        self.machine = machine
        src_t, dst_t, vol = task_graph.graph.edge_list()
        super().__init__(
            machine.torus,
            src_t,
            dst_t,
            vol,
            gamma,
            metric=metric,
            route_table=route_table,
        )
