"""Algorithm 3 — MC Refinement (``UMC``; with ``metric='message'``, ``UMMC``).

Congestion-driven swap refinement for static-routing networks:

1. compute every link's congestion from the static routes of all messages
   and index the tasks whose messages cross each link (``commTasks``);
2. take the most congested link ``e_mc``;
3. for each task routed through ``e_mc``, search swap partners in BFS
   order from ``Γ[nghbor(t_mc)]`` (the order keeps WH damage minimal) and
   commit the first swap that improves MC — or, at equal MC, improves the
   average congestion AC;
4. go back to 2; stop when the most congested link admits no improvement.

The paper tracks link congestion in a ``congHeap`` and bounds the search
with ``Δ = 8`` candidates per task.  Our link state lives in NumPy arrays
(the most congested link is an ``argmax``); the behaviour — pop order,
acceptance rule, early exits — follows Algorithm 3 exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.graph.task_graph import TaskGraph
from repro.mapping.base import Mapping, validate_mapping
from repro.mapping.bfs import bfs_node_levels
from repro.topology.machine import Machine
from repro.topology.routing import routes_bulk

__all__ = ["MCRefiner"]

_EPS = 1e-9


@dataclass
class MCRefiner:
    """Algorithm 3 with Δ=8 early exit.

    Parameters
    ----------
    metric:
        ``'volume'`` refines MC (volume congestion / bandwidth, ``UMC``);
        ``'message'`` refines MMC (``UMMC``) — "adapting this algorithm
        to refine MMC is trivial".  In message mode the input graph's
        edge weights are interpreted as *message multiplicities* (pass
        ``task_graph.unit_cost()`` for one message per edge, or a coarse
        graph weighted by fine rank-pair counts as the pipeline does);
        bandwidths are ignored.
    """

    delta: int = 8
    metric: str = "volume"
    max_swaps: int = 2_000
    #: how deep into the congestion order a sweep may fall through before
    #: declaring the pass improvement-free (bounds worst-case sweeps; the
    #: paper's congHeap pops successive links until one improves).
    sweep_limit: int = 4

    def __post_init__(self) -> None:
        if self.metric not in ("volume", "message"):
            raise ValueError("metric must be 'volume' or 'message'")

    @property
    def name(self) -> str:
        return "UMC" if self.metric == "volume" else "UMMC"

    # ------------------------------------------------------------------
    def refine(self, task_graph: TaskGraph, mapping: Mapping) -> Mapping:
        """Refine *mapping* (copy) to lower MC (or MMC) with minimal WH harm.

        Links are visited in ``congHeap`` pop order — most congested
        first, falling through to the next link when the current one
        admits no improving swap.  A committed swap restarts from the
        (recomputed) top; the algorithm stops when a full sweep over the
        loaded links improves nothing, realizing Algorithm 3's "while MC
        or AC is improved" outer loop.
        """
        machine = mapping.machine
        state = _CongestionState(task_graph, machine, mapping.gamma.copy(), self.metric)
        gm = machine.graph()
        sym = task_graph.symmetrized()
        weights = task_graph.loads
        alloc_mask = machine.alloc_mask()

        swaps = 0
        while swaps < self.max_swaps:
            load = state._load()
            order = np.argsort(-load, kind="stable")[: self.sweep_limit]
            order = order[load[order] > _EPS]
            if order.size == 0:
                break
            improved = False
            for emc in order.tolist():
                for tmc in state.tasks_through(emc):
                    partner = self._find_swap(
                        tmc, state, sym, weights, gm, alloc_mask
                    )
                    if partner is not None:
                        state.commit_swap(tmc, partner)
                        swaps += 1
                        improved = True
                        break  # restart from the (new) most congested link
                if improved:
                    break
            if not improved:
                break  # no loaded link can be improved -> stop
        validate_mapping(state.gamma, machine, weights)
        return Mapping(state.gamma, machine)

    def _find_swap(
        self,
        tmc: int,
        state: "_CongestionState",
        sym,
        weights: np.ndarray,
        gm,
        alloc_mask: np.ndarray,
    ) -> Optional[int]:
        """First MC/AC-improving partner among ≤Δ BFS-ordered candidates.

        Eligibility is filtered per BFS level in one vectorized shot; the
        surviving candidates are probed one by one (``swap_improves`` is
        the expensive part, and the first improving partner wins) until
        the Δ budget is spent.
        """
        nbrs = sym.neighbors(tmc)
        if nbrs.size == 0:
            return None
        seeds = np.unique(state.gamma[nbrs])
        w_tmc = weights[tmc]
        checked = 0
        for level in bfs_node_levels(gm, seeds.tolist()):
            hosts = state.host[level]
            # host[Γ[tmc]] == tmc subsumes the scalar "skip our own node".
            ok = alloc_mask[level] & (hosts >= 0) & (hosts != tmc)
            cand = hosts[ok]
            cand = cand[weights[cand] == w_tmc]
            for t in cand.tolist():
                if checked >= self.delta:
                    return None
                checked += 1
                if state.swap_improves(tmc, int(t)):
                    return int(t)
        return None


class _CongestionState:
    """Link loads, commTasks and swap evaluation for Algorithm 3."""

    def __init__(
        self,
        task_graph: TaskGraph,
        machine: Machine,
        gamma: np.ndarray,
        metric: str,
    ) -> None:
        self.tg = task_graph
        self.machine = machine
        self.torus = machine.torus
        self.gamma = gamma
        self.metric = metric
        self.src_t, self.dst_t, self.vol = task_graph.graph.edge_list()
        self.src_t = self.src_t.astype(np.int64)
        self.dst_t = self.dst_t.astype(np.int64)
        bw = self.torus.link_bandwidths()
        self._inv_bw = np.zeros_like(bw)
        np.divide(1.0, bw, out=self._inv_bw, where=bw > 0)
        self.host = np.full(self.torus.num_nodes, -1, dtype=np.int64)
        self.host[gamma] = np.arange(task_graph.num_tasks)
        # Per-task incident edge ids (both directions), precomputed once:
        # swap evaluation is then O(deg·D) instead of scanning all edges.
        n = task_graph.num_tasks
        ends = np.concatenate([self.src_t, self.dst_t])
        eids = np.concatenate([np.arange(self.src_t.shape[0], dtype=np.int64)] * 2)
        order = np.argsort(ends, kind="stable")
        counts = np.bincount(ends, minlength=n)
        self._inc_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self._inc_ptr[1:])
        self._inc_ids = eids[order]
        self._rebuild()

    def _incident_edges(self, t1: int, t2: int) -> np.ndarray:
        """Distinct edge ids touching either task."""
        a = self._inc_ids[self._inc_ptr[t1] : self._inc_ptr[t1 + 1]]
        b = self._inc_ids[self._inc_ptr[t2] : self._inc_ptr[t2 + 1]]
        return np.unique(np.concatenate([a, b]))

    # -- full (cheap) recomputation ------------------------------------
    def _rebuild(self) -> None:
        self._commits_since_rebuild = 0
        nl = self.torus.num_links
        self.msgs = np.zeros(nl, dtype=np.float64)
        self.vols = np.zeros(nl, dtype=np.float64)
        src_n = self.gamma[self.src_t]
        dst_n = self.gamma[self.dst_t]
        keep = src_n != dst_n
        links, msg = routes_bulk(self.torus, src_n[keep], dst_n[keep])
        vols = self.vol[keep]
        if links.size:
            np.add.at(self.msgs, links, 1.0)
            np.add.at(self.vols, links, vols[msg])
        # commTasks: link -> tasks with a message through it (both
        # endpoints of the message can move the route).
        self.comm_tasks: Dict[int, List[int]] = {}
        if links.size:
            edge_ids = np.flatnonzero(keep)[msg]
            for l, e in zip(links.tolist(), edge_ids.tolist()):
                bucket = self.comm_tasks.setdefault(l, [])
                bucket.append(int(self.src_t[e]))
                bucket.append(int(self.dst_t[e]))

    # -- metric views -----------------------------------------------------
    def _load(self) -> np.ndarray:
        """The per-link congestion the refiner optimizes (VC or messages).

        ``message`` mode reads ``self.vols`` too: the pipeline hands the
        message variant a coarse graph whose edge *weights* are fine
        message multiplicities, so the tracked maximum is exactly the
        rank-level MMC (a coarse edge aggregates many rank pairs).
        """
        if self.metric == "volume":
            return self.vols * self._inv_bw
        return self.vols

    def most_congested_link(self) -> int:
        load = self._load()
        top = int(np.argmax(load))
        return top if load[top] > _EPS else -1

    def tasks_through(self, link: int) -> List[int]:
        """Distinct tasks routed through *link*, heaviest sender first."""
        tasks = self.comm_tasks.get(int(link), [])
        seen: Set[int] = set()
        ordered: List[int] = []
        for t in tasks:
            if t not in seen:
                seen.add(t)
                ordered.append(t)
        return ordered

    def current_mc_ac(self) -> Tuple[float, float]:
        load = self._load()
        used = self.msgs > 0
        n_used = int(np.count_nonzero(used))
        mc = float(load.max()) if n_used else 0.0
        ac = float(load.sum() / n_used) if n_used else 0.0
        return mc, ac

    # -- swap machinery ----------------------------------------------------
    def _swap_deltas(
        self, t1: int, t2: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sparse per-link (links, d_msgs, d_vols) of swapping Γ[t1]↔Γ[t2]."""
        edges = self._incident_edges(t1, t2)
        n1, n2 = int(self.gamma[t1]), int(self.gamma[t2])
        old_src = self.gamma[self.src_t[edges]]
        old_dst = self.gamma[self.dst_t[edges]]

        def translate(nodes: np.ndarray, task_ids: np.ndarray) -> np.ndarray:
            moved = (task_ids == t1) | (task_ids == t2)
            out = nodes.copy()
            out[moved] = np.where(task_ids[moved] == t1, n2, n1)
            return out

        new_src = translate(old_src, self.src_t[edges])
        new_dst = translate(old_dst, self.dst_t[edges])
        vols = self.vol[edges]

        keep_old = old_src != old_dst
        keep_new = new_src != new_dst
        links_o, msg_o = routes_bulk(self.torus, old_src[keep_old], old_dst[keep_old])
        links_n, msg_n = routes_bulk(self.torus, new_src[keep_new], new_dst[keep_new])
        all_links = np.concatenate([links_o, links_n])
        d_msg = np.concatenate([-np.ones_like(links_o, dtype=np.float64),
                                np.ones_like(links_n, dtype=np.float64)])
        d_vol = np.concatenate([-vols[keep_old][msg_o], vols[keep_new][msg_n]])
        if all_links.size == 0:
            return (np.empty(0, dtype=np.int64),) * 3  # type: ignore[return-value]
        uniq, inv = np.unique(all_links, return_inverse=True)
        dm = np.bincount(inv, weights=d_msg, minlength=uniq.shape[0])
        dv = np.bincount(inv, weights=d_vol, minlength=uniq.shape[0])
        return uniq, dm, dv

    def swap_improves(self, t1: int, t2: int) -> bool:
        """Virtual swap: does MC improve — or AC at equal MC?"""
        links, dm, dv = self._swap_deltas(t1, t2)
        if links.size == 0:
            return False
        load = self._load()
        mc, ac = self.current_mc_ac()
        new_changed = (
            (self.vols[links] + dv) * self._inv_bw[links]
            if self.metric == "volume"
            else self.vols[links] + dv
        )
        # Max over unchanged links: cheap when the argmax is untouched.
        top = int(np.argmax(load))
        if top in set(links.tolist()):
            mask = np.ones(load.shape[0], dtype=bool)
            mask[links] = False
            max_unchanged = float(load[mask].max()) if mask.any() else 0.0
        else:
            max_unchanged = float(load[top])
        new_mc = max(max_unchanged, float(new_changed.max()) if new_changed.size else 0.0)
        if new_mc < mc - _EPS:
            return True
        if new_mc > mc + _EPS:
            return False
        # Equal MC: accept on AC improvement.
        new_msgs = self.msgs.copy()
        new_msgs[links] += dm
        used_new = int(np.count_nonzero(new_msgs > _EPS))
        if self.metric == "volume":
            total_new = float((self.vols * self._inv_bw).sum() + (dv * self._inv_bw[links]).sum())
        else:
            total_new = float(self.vols.sum() + dv.sum())
        new_ac = total_new / used_new if used_new else 0.0
        return new_ac < ac - _EPS

    def commit_swap(self, t1: int, t2: int) -> None:
        """Apply the swap: exact sparse load deltas + lazy commTasks refresh.

        The per-link deltas are exact (see the delta-vs-rebuild property
        test), so the load arrays update in O(deg·D).  ``commTasks`` is a
        search index, not a correctness structure; it is refreshed in full
        only every few commits — matching the paper's cost accounting,
        where heap updates rather than route recomputation dominate.
        """
        links, dm, dv = self._swap_deltas(t1, t2)
        self.msgs[links] += dm
        self.vols[links] += dv
        np.maximum(self.msgs, 0.0, out=self.msgs)
        np.maximum(self.vols, 0.0, out=self.vols)
        n1, n2 = int(self.gamma[t1]), int(self.gamma[t2])
        self.gamma[t1] = n2
        self.gamma[t2] = n1
        self.host[n1] = t2
        self.host[n2] = t1
        self._commits_since_rebuild += 1
        if self._commits_since_rebuild >= 8:
            self._rebuild()
