"""``DEF`` — Hopper's default SMP-style MPI mapping.

The paper's baseline: "Hopper places the consecutive MPI ranks within a
single node, then it moves to the closer nodes using space filling
curves" (Sec. IV-B).  Ranks fill the allocated nodes *in allocation
order* (the ALPS order, which already follows an SFC through the torus),
``procs_per_node`` consecutive ranks per node.

DEF therefore ignores the task graph entirely; it is nevertheless decent
because recursive-bisection partitioners place highly-communicating tasks
in consecutively numbered parts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.machine import Machine

__all__ = ["DefaultMapper"]


@dataclass
class DefaultMapper:
    """SMP-style rank placement along the allocation order."""

    name: str = "DEF"

    def map_ranks(self, num_ranks: int, machine: Machine) -> np.ndarray:
        """Fine mapping: rank → node id (consecutive blocks per node).

        Nodes are filled to capacity in allocation order; raises if the
        allocation offers fewer processors than *num_ranks*.
        """
        caps = machine.capacities
        if num_ranks > machine.total_procs:
            raise ValueError(
                f"{num_ranks} ranks exceed the allocation's "
                f"{machine.total_procs} processors"
            )
        owner = np.repeat(machine.alloc_nodes, caps)
        return owner[:num_ranks].astype(np.int64)

    def rank_groups(self, num_ranks: int, machine: Machine) -> np.ndarray:
        """Grouping vector: rank → index of its hosting node.

        This is DEF's implicit "partition": the consecutive-rank blocking.
        """
        idx = np.repeat(np.arange(machine.num_alloc_nodes), machine.capacities)
        return idx[:num_ranks].astype(np.int64)
