"""Shared mapping plumbing: the Mapping container and helpers.

A *coarse* mapping assigns one task-group per allocated node
(``Γ : groups -> node ids``); the *fine* mapping sends every MPI rank to a
node.  All quality metrics are evaluated on the fine level so that DEF
(whose grouping is the consecutive-rank blocking, not the partitioner's)
is compared fairly against the two-phase algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.task_graph import TaskGraph
from repro.topology.machine import Machine

__all__ = ["Mapping", "expand_mapping", "validate_mapping", "group_targets", "wh_of"]


@dataclass
class Mapping:
    """A task-group → node assignment.

    Attributes
    ----------
    gamma:
        int64[num_groups] node id per group (``Γ`` in the paper).
    machine:
        The machine the mapping targets.
    """

    gamma: np.ndarray
    machine: Machine

    def __post_init__(self) -> None:
        self.gamma = np.asarray(self.gamma, dtype=np.int64)

    def copy(self) -> "Mapping":
        return Mapping(self.gamma.copy(), self.machine)

    @property
    def num_groups(self) -> int:
        return self.gamma.shape[0]


def validate_mapping(
    gamma: np.ndarray,
    machine: Machine,
    group_weights: Optional[np.ndarray] = None,
) -> None:
    """Raise ValueError unless *gamma* respects allocation and capacities.

    With *group_weights* given (processors demanded per group), the sum of
    weights landing on each node must not exceed its capacity.
    """
    gamma = np.asarray(gamma, dtype=np.int64)
    mask = machine.alloc_mask()
    if np.any(gamma < 0) or np.any(gamma >= machine.torus.num_nodes):
        raise ValueError("gamma contains node ids outside the torus")
    if not mask[gamma].all():
        bad = int(np.flatnonzero(~mask[gamma])[0])
        raise ValueError(f"group {bad} mapped to unallocated node {int(gamma[bad])}")
    if group_weights is not None:
        weights = np.asarray(group_weights, dtype=np.float64)
        used = np.zeros(machine.torus.num_nodes, dtype=np.float64)
        np.add.at(used, gamma, weights)
        caps = machine.node_capacities().astype(np.float64)
        over = used > caps + 1e-9
        if np.any(over):
            node = int(np.flatnonzero(over)[0])
            raise ValueError(
                f"node {node} overcommitted: {used[node]:.0f} > {caps[node]:.0f}"
            )


def expand_mapping(group_of_task: np.ndarray, gamma: np.ndarray) -> np.ndarray:
    """Fine mapping: task → node via its group's assignment."""
    group_of_task = np.asarray(group_of_task, dtype=np.int64)
    return np.asarray(gamma, dtype=np.int64)[group_of_task]


def group_targets(machine: Machine) -> np.ndarray:
    """Target group weights = per-node processor capacities.

    The paper partitions the task graph "into |Va| nodes, where the target
    part weights are the number of available processors on each node".
    """
    return machine.capacities.astype(np.float64)


def wh_of(task_graph: TaskGraph, machine: Machine, gamma: np.ndarray) -> float:
    """Weighted hops of a coarse mapping (no routing pass needed)."""
    from repro.kernels import hop_table_for, total_weighted_hops

    g = np.asarray(gamma, dtype=np.int64)
    return total_weighted_hops(task_graph.graph, hop_table_for(machine.torus), g)
