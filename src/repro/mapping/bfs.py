"""BFS-ordered node enumeration shared by the refinement algorithms.

Both Algorithm 2 and Algorithm 3 search swap partners "for the first Δ
nodes m ∈ Va visited in the order of the BFS from Γ[nghbor(t)]".  The
helper below yields torus nodes level by level (sources first), sorting
within a level by node id so runs are deterministic; callers apply their
own filters (allocation membership, hosting a task, Δ budget).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["bfs_nodes"]


def bfs_nodes(gm: CSRGraph, seeds: Sequence[int]) -> Iterator[int]:
    """Yield node ids of ``Gm`` in BFS order from *seeds* (level 0 first).

    The traversal is lazy: consumers that stop after Δ candidates never
    pay for the full sweep — the early-exit mechanism both algorithms
    rely on for their practical running time.
    """
    n = gm.num_vertices
    seen = np.zeros(n, dtype=bool)
    frontier = np.unique(np.asarray(list(seeds), dtype=np.int64))
    if frontier.size == 0:
        return
    seen[frontier] = True
    while frontier.size:
        for m in frontier.tolist():
            yield int(m)
        nxt = []
        for v in frontier.tolist():
            for u in gm.neighbors(v).tolist():
                if not seen[u]:
                    seen[u] = True
                    nxt.append(u)
        frontier = np.asarray(sorted(set(nxt)), dtype=np.int64)
