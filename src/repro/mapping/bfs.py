"""BFS-ordered node enumeration shared by the refinement algorithms.

Both Algorithm 2 and Algorithm 3 search swap partners "for the first Δ
nodes m ∈ Va visited in the order of the BFS from Γ[nghbor(t)]".  The
helpers below surface torus nodes level by level (sources first), sorted
within a level by node id so runs are deterministic; callers apply their
own filters (allocation membership, hosting a task, Δ budget).

The frontier sweep is the shared vectorized
:func:`repro.graph.csr.expand_frontier` kernel — consumers that stop
after Δ candidates never pay for a full traversal because the generators
are lazy per level.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.graph.csr import CSRGraph, expand_frontier

__all__ = ["bfs_nodes", "bfs_node_levels"]


def bfs_node_levels(gm: CSRGraph, seeds: Sequence[int]) -> Iterator[np.ndarray]:
    """Yield the BFS levels of ``Gm`` from *seeds* as sorted id arrays.

    Level 0 is the (deduplicated) seed set itself.  Vectorized callers
    filter whole levels at once instead of testing nodes one by one.
    """
    n = gm.num_vertices
    seen = np.zeros(n, dtype=bool)
    frontier = np.unique(np.asarray(list(seeds), dtype=np.int64))
    if frontier.size == 0:
        return
    seen[frontier] = True
    while frontier.size:
        yield frontier
        frontier = expand_frontier(gm, frontier, seen)


def bfs_nodes(gm: CSRGraph, seeds: Sequence[int]) -> Iterator[int]:
    """Yield node ids of ``Gm`` in BFS order from *seeds* (level 0 first)."""
    for level in bfs_node_levels(gm, seeds):
        for m in level.tolist():
            yield int(m)
