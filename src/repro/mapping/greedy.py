"""Algorithm 1 — Greedy Mapping (the paper's ``UG`` without refinement).

The algorithm grows a mapped region greedily:

1. map ``t_MSRV`` (maximum send+receive volume task) to an arbitrary node;
2. while unmapped tasks remain, pick the unmapped task with the maximum
   total connectivity to mapped tasks (max-heap ``conn``); during the
   seeding phase (``NBFS`` seeds) pick instead the *farthest* unmapped
   task found by BFS on ``Gt`` from all mapped tasks (ties favour the
   higher-communication-volume task; disconnected components fall back to
   their maximum-volume task);
3. place the picked task with ``GETBESTNODE``: BFS on ``Gm`` from the
   nodes of its mapped neighbours, stopping at the first level that
   contains allocated nodes with free capacity and choosing among them
   the one with the minimum WH overhead (early exit).  A task with no
   mapped neighbour goes to one of the farthest free allocated nodes.

``NBFS ∈ {0, 1}`` produces two mappings; the driver keeps the lower-WH
one, exactly as the paper's implementation does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.task_graph import TaskGraph
from repro.kernels import HopTable, hop_table_for
from repro.mapping.base import Mapping, validate_mapping, wh_of
from repro.mapping.bfs import bfs_node_levels
from repro.topology.machine import Machine
from repro.util.heap import IntKeyMaxHeap

__all__ = ["GreedyMapper"]


@dataclass
class GreedyMapper:
    """Algorithm 1 with best-of-``nbfs_candidates`` seeding.

    Parameters
    ----------
    nbfs_candidates:
        The NBFS values to try (paper: ``(0, 1)``); the mapping with the
        lowest WH wins.
    """

    nbfs_candidates: Sequence[int] = (0, 1)

    name: str = "UG"

    def map(self, task_graph: TaskGraph, machine: Machine) -> Mapping:
        """Map *task_graph* groups onto *machine* nodes minimizing WH."""
        best: Optional[np.ndarray] = None
        best_wh = np.inf
        for nbfs in self.nbfs_candidates:
            gamma = greedy_map(task_graph, machine, nbfs=int(nbfs))
            wh = wh_of(task_graph, machine, gamma)
            if wh < best_wh:
                best_wh = wh
                best = gamma
        assert best is not None, "nbfs_candidates must not be empty"
        return Mapping(best, machine)


def greedy_map(task_graph: TaskGraph, machine: Machine, *, nbfs: int = 0) -> np.ndarray:
    """One run of Algorithm 1 for a fixed *nbfs*; returns Γ (int64)."""
    sym = task_graph.symmetrized()
    n_tasks = task_graph.num_tasks
    weights = task_graph.loads
    caps = machine.node_capacities().astype(np.float64)
    free = caps.copy()
    gm = machine.graph()
    # Hoisted out of the per-task placement loop: allocation membership
    # and the hop table are placement-invariant.
    alloc_mask = machine.alloc_mask()
    table = hop_table_for(machine.torus)

    gamma = np.full(n_tasks, -1, dtype=np.int64)
    mapped_mask = np.zeros(n_tasks, dtype=bool)
    total_vol = task_graph.send_volume() + task_graph.recv_volume()
    conn = IntKeyMaxHeap(n_tasks)

    # With uniform group weights the "has room" mask is task-independent
    # and only the placed node can change — maintain it incrementally.
    uniform_w = n_tasks > 0 and bool(np.all(weights == weights[0]))
    room = alloc_mask & (free >= weights[0] - 1e-9) if uniform_w else None

    def place(task: int, node: int) -> None:
        gamma[task] = node
        mapped_mask[task] = True
        free[node] -= weights[task]
        if room is not None:
            room[node] = alloc_mask[node] and free[node] >= weights[0] - 1e-9
        if task in conn:
            conn.remove(task)
        nbrs = sym.neighbors(task)
        keep = ~mapped_mask[nbrs]
        for u, c in zip(
            nbrs[keep].tolist(), sym.neighbor_weights(task)[keep].tolist()
        ):
            conn.increase(u, c)

    # ------------------------------------------------------------------
    # Non-uniform capacities: groups whose weight differs from the common
    # one are placed first "since their nodes are almost decided due to
    # their uniqueness" (paper Sec. III-A).
    # ------------------------------------------------------------------
    order_first: List[int] = []
    if not machine.uniform_capacity() or np.unique(weights).shape[0] > 1:
        vals, counts = np.unique(weights, return_counts=True)
        modal = vals[np.argmax(counts)]
        rare = np.flatnonzero(weights != modal)
        order_first = sorted(
            rare.tolist(), key=lambda t: (-weights[t], -total_vol[t], t)
        )

    # Map t_MSRV to an arbitrary node (first allocated node able to host it).
    t0 = int(np.argmax(total_vol))
    if order_first:
        t0 = order_first.pop(0)
    m0 = _first_fitting_node(machine, free, weights[t0])
    place(t0, m0)

    for t in order_first:
        node = _get_best_node(
            t, task_graph, sym, gm, gamma, mapped_mask, free, alloc_mask, table, room
        )
        place(t, node)

    seeds_placed = 0
    while not mapped_mask.all():
        if seeds_placed < nbfs:
            tbest = _farthest_task(sym, mapped_mask, total_vol)
            seeds_placed += 1
        else:
            tbest = -1
            while conn:
                cand, _ = conn.pop()
                if not mapped_mask[cand]:
                    tbest = cand
                    break
            if tbest < 0:
                # Disconnected component: maximum-volume unmapped task.
                rest = np.flatnonzero(~mapped_mask)
                tbest = int(rest[np.argmax(total_vol[rest])])
        node = _get_best_node(
            tbest, task_graph, sym, gm, gamma, mapped_mask, free, alloc_mask, table, room
        )
        place(tbest, node)

    validate_mapping(gamma, machine, weights)
    return gamma


def _first_fitting_node(machine: Machine, free: np.ndarray, weight: float) -> int:
    """First allocated node (allocation order) with room for *weight*."""
    nodes = machine.alloc_nodes
    fits = np.flatnonzero(free[nodes] >= weight - 1e-9)
    if fits.size == 0:
        raise ValueError("no allocated node can host the first task group")
    return int(nodes[fits[0]])


def _farthest_task(sym: CSRGraph, mapped_mask: np.ndarray, total_vol: np.ndarray) -> int:
    """Farthest unmapped task by BFS on Gt from all mapped tasks.

    All mapped tasks sit at BFS level 0; ties break toward the larger
    communication volume, then the smaller id.  Unreached tasks (other
    components) are preferred last via their maximum-volume member, per
    the paper's disconnected-graph rule.
    """
    sources = np.flatnonzero(mapped_mask)
    level = sym.bfs_levels(sources)
    unmapped = ~mapped_mask
    reached = (level >= 0) & unmapped
    if np.any(reached):
        lv = np.where(reached, level, -1)
        far = lv.max()
        cands = np.flatnonzero(lv == far)
        return int(cands[np.argmax(total_vol[cands])])
    rest = np.flatnonzero(unmapped)
    return int(rest[np.argmax(total_vol[rest])])


def _get_best_node(
    task: int,
    task_graph: TaskGraph,
    sym: CSRGraph,
    gm: CSRGraph,
    gamma: np.ndarray,
    mapped_mask: np.ndarray,
    free: np.ndarray,
    alloc_mask: np.ndarray,
    table: HopTable,
    room: Optional[np.ndarray] = None,
) -> int:
    """GETBESTNODE of Algorithm 1 (with the early-exit BFS).

    * If *task* has mapped neighbours: BFS on ``Gm`` from their nodes;
      stop at the first BFS level holding allocated nodes with enough free
      capacity and return the one with the minimum WH increase.
    * Otherwise: BFS from all non-empty nodes and return one of the
      *farthest* allocated nodes with room (spreading unrelated tasks).
    """
    weight = task_graph.loads[task]
    nbrs = sym.neighbors(task)
    nbr_w = sym.neighbor_weights(task)
    mapped_nbrs = nbrs[mapped_mask[nbrs]]

    alloc_ok = room if room is not None else alloc_mask & (free >= weight - 1e-9)

    if mapped_nbrs.size == 0:
        occupied = np.unique(gamma[gamma >= 0])
        level = gm.bfs_levels(occupied.tolist())
        cand = np.flatnonzero(alloc_ok & (level >= 0))
        if cand.size == 0:
            # Allocation unreachable through the torus graph cannot happen
            # (the torus is connected); room must exist by construction.
            raise ValueError("no free allocated node found")
        far = level[cand].max()
        at_far = cand[level[cand] == far]
        return int(at_far.min())

    # BFS from the neighbours' nodes, level by level, with early exit.
    seeds = np.unique(gamma[mapped_nbrs])
    mapped_nbr_nodes = gamma[mapped_nbrs]
    costs = nbr_w[mapped_mask[nbrs]]

    for level in bfs_node_levels(gm, seeds):
        cands = level[alloc_ok[level]]
        if cands.size:
            # Minimum WH overhead among this level's candidates.
            overhead = table.cross_hops(cands, mapped_nbr_nodes) @ costs
            best = np.flatnonzero(overhead == overhead.min())
            return int(cands[best].min())
    raise ValueError("BFS exhausted the machine without finding a free node")
