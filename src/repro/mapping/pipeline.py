"""Two-phase mapping pipeline — legacy facade over the mapper registry.

This is the UMPA driver of Sec. III: the fine MPI task graph (one vertex
per rank) is partitioned into ``|Va|`` groups whose target weights are the
per-node processor counts (METIS-like engine), the balance is fixed
exactly with an FM iteration, the coarse (node-level) graph is mapped by
the chosen algorithm, and the node assignment is expanded back to ranks.

Since the API redesign the algorithms themselves live in the
:mod:`repro.api` registry as declarative stage compositions
(``grouping → placement → refine*``); :class:`TwoPhaseMapper` and
:func:`get_mapper` remain as thin back-compat shims that build a
:class:`~repro.api.request.MapRequest` and run it through a
:class:`~repro.api.service.MappingService`.  Mappings are bit-identical
to the pre-registry pipeline (pinned by ``tests/test_kernels_golden.py``).

Timing follows Figure 3's accounting: ``prep_time`` covers the shared
partition/coarsen preprocessing, ``map_time`` the mapping algorithm
itself — with UWH/UMC/UMMC including UG's time, "as they run on top of
it".  TMAP and SMAP run their own dual recursive bipartitioning, which is
why TMAP lands as the slowest method in the reproduction too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.task_graph import TaskGraph, coarse_task_graph
from repro.partition.driver import EngineConfig, partition_graph
from repro.partition.fm import balance_fixup
from repro.topology.machine import Machine

__all__ = [
    "TwoPhaseMapper",
    "MapperResult",
    "MAPPER_NAMES",
    "EXTENDED_MAPPER_NAMES",
    "FAMILY_MAPPER_NAMES",
    "get_mapper",
    "prepare_groups",
]

#: All mapping algorithms of the paper's figures, in figure order.
MAPPER_NAMES: Tuple[str, ...] = ("DEF", "TMAP", "SMAP", "UG", "UWH", "UMC", "UMMC")

#: Extensions the paper discusses but does not report: UTH (the trivial
#: unit-cost / TH adaptation of UG+UWH) and UWHF (UWH followed by the
#: fine-level rank-swap refinement of Sec. III-B's discussion).
EXTENDED_MAPPER_NAMES: Tuple[str, ...] = MAPPER_NAMES + ("UTH", "UWHF")

#: Algorithm families beyond the paper, registered as first-class specs:
#: hierarchical per-dimension partitioning (Schulz & Woydt) and geometric
#: space-filling-curve placement (Deveci et al.), each bare and with the
#: Algorithm 2 WH swap refinement on top.
FAMILY_MAPPER_NAMES: Tuple[str, ...] = ("HIER", "HIERWH", "SFC", "SFCWH")


@dataclass
class MapperResult:
    """Outcome of one two-phase mapping run."""

    name: str
    fine_gamma: np.ndarray  # rank -> node id
    group_of_task: np.ndarray  # rank -> group index
    coarse: TaskGraph  # node-level communication graph
    coarse_gamma: np.ndarray  # group -> node id
    map_time: float  # seconds spent in the mapping algorithm
    prep_time: float  # seconds spent partitioning/coarsening


def prepare_groups(
    task_graph: TaskGraph,
    machine: Machine,
    *,
    seed: int = 0,
    config: Optional[EngineConfig] = None,
) -> Tuple[np.ndarray, TaskGraph]:
    """Partition ranks into node-sized groups; returns (group_of_task, coarse).

    Unit task weights (each rank occupies one processor), target part
    weights = per-node capacities, exact balance via
    :func:`balance_fixup` — the paper's METIS + single-FM-iteration step.
    The coarse graph's vertex weights are set to the groups' *processor*
    counts so capacity checks in the mapping algorithms line up.
    """
    if config is None:
        config = EngineConfig(fm_passes=3, initial_attempts=4)
    n_nodes = machine.num_alloc_nodes
    if task_graph.num_tasks > machine.total_procs:
        raise ValueError(
            f"{task_graph.num_tasks} tasks exceed {machine.total_procs} processors"
        )
    sym = task_graph.symmetrized()
    work = CSRGraph(
        sym.indptr,
        sym.indices,
        sym.weights,
        np.ones(sym.num_vertices, dtype=np.float64),
        sorted_indices=True,
    )
    targets = machine.capacities.astype(np.float64)
    result = partition_graph(
        work, n_nodes, target_weights=targets, seed=seed, config=config, tool="grouping"
    )
    part = balance_fixup(work, result.part, n_nodes, targets)
    coarse = coarse_task_graph(task_graph, part, n_nodes)
    group_procs = np.bincount(part, minlength=n_nodes).astype(np.float64)
    coarse.graph.vertex_weights = group_procs
    return part, coarse


def _message_count_coarse(
    task_graph: TaskGraph, group_of_task: np.ndarray, machine: Machine
) -> TaskGraph:
    """Coarse graph whose edge weights count fine (rank-pair) messages."""
    unit = task_graph.unit_cost()
    coarse = coarse_task_graph(unit, group_of_task, machine.num_alloc_nodes)
    coarse.graph.vertex_weights = np.bincount(
        group_of_task, minlength=machine.num_alloc_nodes
    ).astype(np.float64)
    return coarse


@dataclass
class TwoPhaseMapper:
    """Facade running any registered mapping algorithm.

    Back-compat shim over :class:`~repro.api.service.MappingService`:
    each ``map()`` call builds a single-algorithm
    :class:`~repro.api.request.MapRequest` and executes it with a
    private artifact cache, reproducing the legacy pipeline's behaviour
    (and mappings) exactly.

    Parameters
    ----------
    algorithm:
        Any name in the mapper registry — the paper's seven
        (:data:`MAPPER_NAMES`), the UTH/UWHF extensions, or a custom
        mapper registered via
        :func:`repro.api.register_mapper`.
    seed:
        Seed for the grouping partitioner and baseline engines.
    delta:
        Early-exit budget Δ of the refinement algorithms.
    """

    algorithm: str = "UG"
    seed: int = 0
    delta: int = 8
    group_config: Optional[EngineConfig] = None

    def __post_init__(self) -> None:
        from repro.api.registry import get_spec

        self.algorithm = get_spec(self.algorithm).name

    @property
    def name(self) -> str:
        return self.algorithm

    # ------------------------------------------------------------------
    def map(
        self,
        task_graph: TaskGraph,
        machine: Machine,
        *,
        groups: Optional[Tuple[np.ndarray, TaskGraph]] = None,
    ) -> MapperResult:
        """Run the two-phase pipeline.

        ``groups`` may carry a precomputed ``(group_of_task, coarse)`` pair
        so the expensive grouping step is shared across the seven
        algorithms when the harness compares them on one task graph.
        """
        from repro.api.request import MapRequest
        from repro.api.service import MappingService

        response = MappingService().map(
            MapRequest(
                task_graph=task_graph,
                machine=machine,
                algorithms=(self.algorithm,),
                seed=self.seed,
                delta=self.delta,
                group_config=self.group_config,
                groups=groups,
            )
        )
        return response.result


def get_mapper(name: str, *, seed: int = 0, delta: int = 8) -> TwoPhaseMapper:
    """Look up a mapper by its registry name (case-insensitive).

    Accepts the paper's seven algorithms, the UTH / UWHF extensions, and
    any custom mapper registered through
    :func:`repro.api.register_mapper`.
    """
    return TwoPhaseMapper(algorithm=name, seed=seed, delta=delta)
