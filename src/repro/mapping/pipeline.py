"""Two-phase mapping pipeline: partition → coarsen → map → refine → expand.

This is the UMPA driver of Sec. III: the fine MPI task graph (one vertex
per rank) is partitioned into ``|Va|`` groups whose target weights are the
per-node processor counts (METIS-like engine), the balance is fixed
exactly with an FM iteration, the coarse (node-level) graph is mapped by
the chosen algorithm, and the node assignment is expanded back to ranks.

Timing follows Figure 3's accounting: ``prep_time`` covers the shared
partition/coarsen preprocessing, ``map_time`` the mapping algorithm
itself — with UWH/UMC/UMMC including UG's time, "as they run on top of
it".  TMAP and SMAP run their own dual recursive bipartitioning, which is
why TMAP lands as the slowest method in the reproduction too.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.task_graph import TaskGraph, coarse_task_graph
from repro.mapping.base import Mapping, expand_mapping
from repro.metrics.mapping import evaluate_mapping
from repro.mapping.default import DefaultMapper
from repro.mapping.greedy import GreedyMapper
from repro.mapping.refine_mc import MCRefiner
from repro.mapping.refine_wh import WHRefiner
from repro.mapping.scotchmap import ScotchMapper
from repro.mapping.topomap import TopoMapper
from repro.partition.driver import EngineConfig, partition_graph
from repro.partition.fm import balance_fixup
from repro.topology.machine import Machine

__all__ = [
    "TwoPhaseMapper",
    "MapperResult",
    "MAPPER_NAMES",
    "EXTENDED_MAPPER_NAMES",
    "get_mapper",
    "prepare_groups",
]

#: All mapping algorithms of the paper's figures, in figure order.
MAPPER_NAMES: Tuple[str, ...] = ("DEF", "TMAP", "SMAP", "UG", "UWH", "UMC", "UMMC")

#: Extensions the paper discusses but does not report: UTH (the trivial
#: unit-cost / TH adaptation of UG+UWH) and UWHF (UWH followed by the
#: fine-level rank-swap refinement of Sec. III-B's discussion).
EXTENDED_MAPPER_NAMES: Tuple[str, ...] = MAPPER_NAMES + ("UTH", "UWHF")


@dataclass
class MapperResult:
    """Outcome of one two-phase mapping run."""

    name: str
    fine_gamma: np.ndarray  # rank -> node id
    group_of_task: np.ndarray  # rank -> group index
    coarse: TaskGraph  # node-level communication graph
    coarse_gamma: np.ndarray  # group -> node id
    map_time: float  # seconds spent in the mapping algorithm
    prep_time: float  # seconds spent partitioning/coarsening


def prepare_groups(
    task_graph: TaskGraph,
    machine: Machine,
    *,
    seed: int = 0,
    config: Optional[EngineConfig] = None,
) -> Tuple[np.ndarray, TaskGraph]:
    """Partition ranks into node-sized groups; returns (group_of_task, coarse).

    Unit task weights (each rank occupies one processor), target part
    weights = per-node capacities, exact balance via
    :func:`balance_fixup` — the paper's METIS + single-FM-iteration step.
    The coarse graph's vertex weights are set to the groups' *processor*
    counts so capacity checks in the mapping algorithms line up.
    """
    if config is None:
        config = EngineConfig(fm_passes=3, initial_attempts=4)
    n_nodes = machine.num_alloc_nodes
    if task_graph.num_tasks > machine.total_procs:
        raise ValueError(
            f"{task_graph.num_tasks} tasks exceed {machine.total_procs} processors"
        )
    sym = task_graph.symmetrized()
    work = CSRGraph(
        sym.indptr,
        sym.indices,
        sym.weights,
        np.ones(sym.num_vertices, dtype=np.float64),
        sorted_indices=True,
    )
    targets = machine.capacities.astype(np.float64)
    result = partition_graph(
        work, n_nodes, target_weights=targets, seed=seed, config=config, tool="grouping"
    )
    part = balance_fixup(work, result.part, n_nodes, targets)
    coarse = coarse_task_graph(task_graph, part, n_nodes)
    group_procs = np.bincount(part, minlength=n_nodes).astype(np.float64)
    coarse.graph.vertex_weights = group_procs
    return part, coarse


@dataclass
class TwoPhaseMapper:
    """Facade running any of the paper's seven mapping algorithms.

    Parameters
    ----------
    algorithm:
        One of :data:`MAPPER_NAMES`.
    seed:
        Seed for the grouping partitioner and baseline engines.
    delta:
        Early-exit budget Δ of the refinement algorithms.
    """

    algorithm: str = "UG"
    seed: int = 0
    delta: int = 8
    group_config: Optional[EngineConfig] = None

    def __post_init__(self) -> None:
        if self.algorithm not in EXTENDED_MAPPER_NAMES:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"use one of {EXTENDED_MAPPER_NAMES}"
            )

    @property
    def name(self) -> str:
        return self.algorithm

    # ------------------------------------------------------------------
    def map(
        self,
        task_graph: TaskGraph,
        machine: Machine,
        *,
        groups: Optional[Tuple[np.ndarray, TaskGraph]] = None,
    ) -> MapperResult:
        """Run the two-phase pipeline.

        ``groups`` may carry a precomputed ``(group_of_task, coarse)`` pair
        so the expensive grouping step is shared across the seven
        algorithms when the harness compares them on one task graph.
        """
        if self.algorithm == "DEF":
            return self._map_def(task_graph, machine)

        t_prep = time.perf_counter()
        if groups is None:
            group_of_task, coarse = prepare_groups(
                task_graph, machine, seed=self.seed, config=self.group_config
            )
        else:
            group_of_task, coarse = groups
        prep_time = time.perf_counter() - t_prep if groups is None else 0.0

        t_map = time.perf_counter()
        if self.algorithm == "TMAP":
            # LibTopoMap partitions the task graph itself — its reported
            # time includes that phase, which is why it is the slowest
            # mapper in Figure 3.
            tmap_groups, tmap_coarse = prepare_groups(
                task_graph, machine, seed=self.seed, config=self.group_config
            )
            mapping = TopoMapper(seed=self.seed, fallback_on_mc=False).map(
                tmap_coarse, machine
            )
            map_time = time.perf_counter() - t_map
            fine = expand_mapping(tmap_groups, mapping.gamma)
            # "If TMAP's MC value is not smaller than the DEF mapping, it
            # returns the DEF mapping" — compared at rank granularity.
            def_result = self._map_def(task_graph, machine)
            ours = evaluate_mapping(task_graph, machine, fine)
            ref = evaluate_mapping(task_graph, machine, def_result.fine_gamma)
            if ours.mc >= ref.mc:
                return MapperResult(
                    name="TMAP",
                    fine_gamma=def_result.fine_gamma,
                    group_of_task=def_result.group_of_task,
                    coarse=def_result.coarse,
                    coarse_gamma=def_result.coarse_gamma,
                    map_time=map_time,
                    prep_time=prep_time,
                )
            return MapperResult(
                name="TMAP",
                fine_gamma=fine,
                group_of_task=tmap_groups,
                coarse=tmap_coarse,
                coarse_gamma=mapping.gamma,
                map_time=map_time,
                prep_time=prep_time,
            )
        if self.algorithm == "SMAP":
            mapping = ScotchMapper(seed=self.seed).map(coarse, machine)
        elif self.algorithm == "UTH":
            # Unit-cost view: same algorithms, TH objective.
            unit = coarse.unit_cost()
            mapping = GreedyMapper().map(unit, machine)
            mapping = WHRefiner(delta=self.delta).refine(unit, mapping)
        else:  # UG family
            mapping = GreedyMapper().map(coarse, machine)
            if self.algorithm in ("UWH", "UWHF"):
                mapping = WHRefiner(delta=self.delta).refine(coarse, mapping)
            elif self.algorithm == "UMC":
                mapping = MCRefiner(delta=self.delta, metric="volume").refine(
                    coarse, mapping
                )
            elif self.algorithm == "UMMC":
                # Refine on a coarse graph weighted by fine *message
                # multiplicities*, so the tracked maximum is the rank-level
                # MMC rather than the (deduplicated) coarse edge count.
                msg_coarse = _message_count_coarse(task_graph, group_of_task, machine)
                mapping = MCRefiner(delta=self.delta, metric="message").refine(
                    msg_coarse, mapping
                )

        fine = expand_mapping(group_of_task, mapping.gamma)
        if self.algorithm == "UWHF":
            from repro.mapping.refine_fine import FineWHRefiner

            fine = FineWHRefiner(delta=self.delta).refine(task_graph, machine, fine)
        map_time = time.perf_counter() - t_map
        return MapperResult(
            name=self.algorithm,
            fine_gamma=fine,
            group_of_task=group_of_task,
            coarse=coarse,
            coarse_gamma=mapping.gamma,
            map_time=map_time,
            prep_time=prep_time,
        )

    # ------------------------------------------------------------------
    def _map_def(self, task_graph: TaskGraph, machine: Machine) -> MapperResult:
        """DEF ignores the task graph: consecutive ranks along allocation."""
        t0 = time.perf_counter()
        mapper = DefaultMapper()
        fine = mapper.map_ranks(task_graph.num_tasks, machine)
        group_of_task = mapper.rank_groups(task_graph.num_tasks, machine)
        coarse = coarse_task_graph(task_graph, group_of_task, machine.num_alloc_nodes)
        coarse.graph.vertex_weights = np.bincount(
            group_of_task, minlength=machine.num_alloc_nodes
        ).astype(np.float64)
        map_time = time.perf_counter() - t0
        return MapperResult(
            name="DEF",
            fine_gamma=fine,
            group_of_task=group_of_task,
            coarse=coarse,
            coarse_gamma=_def_coarse_gamma(machine),
            map_time=map_time,
            prep_time=0.0,
        )


def _def_coarse_gamma(machine: Machine) -> np.ndarray:
    """DEF's group→node assignment: group i lives on allocation node i."""
    return machine.alloc_nodes.copy()


def _message_count_coarse(
    task_graph: TaskGraph, group_of_task: np.ndarray, machine: Machine
) -> TaskGraph:
    """Coarse graph whose edge weights count fine (rank-pair) messages."""
    unit = task_graph.unit_cost()
    coarse = coarse_task_graph(unit, group_of_task, machine.num_alloc_nodes)
    coarse.graph.vertex_weights = np.bincount(
        group_of_task, minlength=machine.num_alloc_nodes
    ).astype(np.float64)
    return coarse


def get_mapper(name: str, *, seed: int = 0, delta: int = 8) -> TwoPhaseMapper:
    """Look up a mapper by its paper name (case-insensitive).

    Accepts the paper's seven algorithms plus the UTH / UWHF extensions.
    """
    key = name.upper()
    if key not in EXTENDED_MAPPER_NAMES:
        raise ValueError(
            f"unknown mapper {name!r}; available: {EXTENDED_MAPPER_NAMES}"
        )
    return TwoPhaseMapper(algorithm=key, seed=seed, delta=delta)
