"""Algorithm 2 — WH Refinement (``UWH`` = UG + this pass).

Kernighan–Lin-type *swap* refinement of a one-to-one group↔node mapping:

* ``whHeap`` ranks tasks by the WH they individually incur
  (``TASKWHOPS``); the top task ``t_wh`` is the likeliest to profit from
  moving closer to its neighbours;
* candidate partners are discovered by BFS on ``Gm`` started from
  ``Γ[nghbor(t_wh)]`` (the nodes of ``t_wh``'s neighbours), visiting
  allocated nodes in BFS order — the order makes near-neighbour swaps be
  tried first;
* at most ``Δ`` candidates are evaluated per task (early exit); the first
  *improving* swap is committed and the pass moves on;
* a pass ends when ``whHeap`` empties; passes repeat while the previous
  pass improved WH by more than ``min_gain`` (paper: 0.5%).

Swaps are restricted to equal-weight task groups (with uniform
processors-per-node every group weighs the same, so this is vacuous in
the paper's setting but keeps heterogeneous configurations feasible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.task_graph import TaskGraph
from repro.mapping.base import Mapping, validate_mapping, wh_of
from repro.topology.machine import Machine
from repro.util.heap import AddressableMaxHeap

__all__ = ["WHRefiner"]


@dataclass
class WHRefiner:
    """Algorithm 2 with the paper's Δ=8 early exit and 0.5% pass gate."""

    delta: int = 8
    min_gain: float = 0.005
    max_passes: int = 50

    name: str = "UWH"

    def refine(self, task_graph: TaskGraph, mapping: Mapping) -> Mapping:
        """Refine *mapping* in a copy; the input is left untouched."""
        gamma = mapping.gamma.copy()
        machine = mapping.machine
        sym = task_graph.symmetrized()
        weights = task_graph.loads
        torus = machine.torus
        gm = machine.graph()

        # task currently hosted by each node (one-to-one at group level).
        host = np.full(torus.num_nodes, -1, dtype=np.int64)
        host[gamma] = np.arange(task_graph.num_tasks)

        wh = wh_of(task_graph, machine, gamma)
        if wh <= 0:
            return Mapping(gamma, machine)

        for _ in range(self.max_passes):
            pass_start_wh = wh
            heap = AddressableMaxHeap()
            for t in range(task_graph.num_tasks):
                heap.insert(t, _task_whops(t, sym, torus, gamma))
            while heap:
                twh, _ = heap.pop()
                gain = self._try_swap(
                    twh, sym, weights, torus, gm, machine, gamma, host, heap
                )
                wh -= gain
            if pass_start_wh <= 0:
                break
            improvement = (pass_start_wh - wh) / pass_start_wh
            if improvement <= self.min_gain:
                break
        validate_mapping(gamma, machine, weights)
        return Mapping(gamma, machine)

    # ------------------------------------------------------------------
    def _try_swap(
        self,
        twh: int,
        sym,
        weights: np.ndarray,
        torus,
        gm,
        machine: Machine,
        gamma: np.ndarray,
        host: np.ndarray,
        heap: AddressableMaxHeap,
    ) -> float:
        """Search ≤Δ BFS-ordered candidates; commit the first improving swap.

        Returns the WH gain achieved (0.0 when no swap was committed).
        """
        nbrs = sym.neighbors(twh)
        if nbrs.size == 0:
            return 0.0
        seeds = np.unique(gamma[nbrs])
        alloc_mask = machine.alloc_mask()
        na = int(gamma[twh])

        checked = 0
        n_nodes = gm.num_vertices
        seen = np.zeros(n_nodes, dtype=bool)
        frontier = seeds.astype(np.int64)
        seen[frontier] = True
        while frontier.size and checked < self.delta:
            for m in np.sort(frontier).tolist():
                if checked >= self.delta:
                    break
                if not alloc_mask[m] or m == na:
                    continue
                t = int(host[m])
                if t < 0 or t == twh:
                    continue
                if weights[t] != weights[twh]:
                    continue  # swap must preserve capacities
                gain = _swap_gain(twh, t, sym, torus, gamma)
                checked += 1
                if gain > 1e-12:
                    nb = int(gamma[t])
                    gamma[twh] = nb
                    gamma[t] = na
                    host[na] = t
                    host[nb] = twh
                    _update_heap_around(heap, (twh, t), sym, torus, gamma)
                    return gain
            nxt = []
            for v in frontier.tolist():
                for u in gm.neighbors(v).tolist():
                    if not seen[u]:
                        seen[u] = True
                        nxt.append(u)
            frontier = np.asarray(sorted(set(nxt)), dtype=np.int64)
        return 0.0


def _task_whops(t: int, sym, torus, gamma: np.ndarray) -> float:
    """TASKWHOPS: the WH incurred by task *t* under Γ."""
    nbrs = sym.neighbors(t)
    if nbrs.size == 0:
        return 0.0
    hops = torus.hop_distance(np.full(nbrs.shape[0], gamma[t]), gamma[nbrs])
    return float((hops * sym.neighbor_weights(t)).sum())


def _swap_gain(t1: int, t2: int, sym, torus, gamma: np.ndarray) -> float:
    """Exact WH change (positive = improvement) of swapping Γ[t1] ↔ Γ[t2].

    The direct t1–t2 edge keeps its dilation under a swap, so it is
    excluded from both sides of the difference.
    """
    n1, n2 = int(gamma[t1]), int(gamma[t2])

    def cost(task: int, node: int, exclude: int) -> float:
        nbrs = sym.neighbors(task)
        w = sym.neighbor_weights(task)
        keep = nbrs != exclude
        nbrs = nbrs[keep]
        if nbrs.size == 0:
            return 0.0
        hops = torus.hop_distance(np.full(nbrs.shape[0], node), gamma[nbrs])
        return float((hops * w[keep]).sum())

    before = cost(t1, n1, t2) + cost(t2, n2, t1)
    after = cost(t1, n2, t2) + cost(t2, n1, t1)
    return before - after


def _update_heap_around(
    heap: AddressableMaxHeap, swapped, sym, torus, gamma: np.ndarray
) -> None:
    """Refresh whHeap priorities of the swapped tasks' neighbourhoods.

    Only entries still *in* the heap are updated (popped tasks stay
    processed for this pass, as in the paper's Algorithm 2 lines 5–6).
    """
    touched = set()
    for t in swapped:
        touched.update(sym.neighbors(t).tolist())
        touched.add(t)
    for u in touched:
        if u in heap:
            heap.update(u, _task_whops(u, sym, torus, gamma))
