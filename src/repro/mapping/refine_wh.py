"""Algorithm 2 — WH Refinement (``UWH`` = UG + this pass).

Kernighan–Lin-type *swap* refinement of a one-to-one group↔node mapping:

* ``whHeap`` ranks tasks by the WH they individually incur
  (``TASKWHOPS``); the top task ``t_wh`` is the likeliest to profit from
  moving closer to its neighbours;
* candidate partners are discovered by BFS on ``Gm`` started from
  ``Γ[nghbor(t_wh)]`` (the nodes of ``t_wh``'s neighbours), visiting
  allocated nodes in BFS order — the order makes near-neighbour swaps be
  tried first;
* at most ``Δ`` candidates are evaluated per task (early exit); the first
  *improving* swap is committed and the pass moves on;
* a pass ends when ``whHeap`` empties; passes repeat while the previous
  pass improved WH by more than ``min_gain`` (paper: 0.5%).

Swaps are restricted to equal-weight task groups (with uniform
processors-per-node every group weighs the same, so this is vacuous in
the paper's setting but keeps heterogeneous configurations feasible).

Hot-path layout (behaviour-identical to the scalar reference, pinned by
the golden-equivalence tests): the ≤Δ BFS-ordered candidates of a popped
task are collected level by level with the vectorized
:func:`repro.graph.csr.expand_frontier` kernel and scored in **one**
:func:`repro.kernels.batched_swap_gains` call; per-task ``TASKWHOPS``
rows are cached in a flat array and refreshed only around committed
swaps, feeding both the bulk ``whHeap`` build of each pass and the
post-swap heap updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.graph.csr import expand_frontier
from repro.graph.task_graph import TaskGraph
from repro.kernels import (
    all_task_whops,
    batched_swap_gains,
    hop_table_for,
    refresh_whops_around,
)
from repro.mapping.base import Mapping, validate_mapping, wh_of
from repro.util.heap import IntKeyMaxHeap

__all__ = ["WHRefiner"]


@dataclass
class WHRefiner:
    """Algorithm 2 with the paper's Δ=8 early exit and 0.5% pass gate."""

    delta: int = 8
    min_gain: float = 0.005
    max_passes: int = 50

    name: str = "UWH"

    def refine(self, task_graph: TaskGraph, mapping: Mapping) -> Mapping:
        """Refine *mapping* in a copy; the input is left untouched."""
        gamma = mapping.gamma.copy()
        machine = mapping.machine
        sym = task_graph.symmetrized()
        weights = task_graph.loads
        gm = machine.graph()
        table = hop_table_for(machine.torus)
        alloc_mask = machine.alloc_mask()

        # task currently hosted by each node (one-to-one at group level).
        host = np.full(machine.torus.num_nodes, -1, dtype=np.int64)
        host[gamma] = np.arange(task_graph.num_tasks)

        wh = wh_of(task_graph, machine, gamma)
        if wh <= 0:
            return Mapping(gamma, machine)

        # Cached TASKWHOPS rows; invalidated only around committed swaps.
        whops = all_task_whops(sym, table, gamma)
        # With uniform group weights (the paper's setting) the equal-weight
        # swap restriction is vacuous; skip the per-level filter then.
        uniform = bool(np.all(weights == weights[0])) if weights.size else True
        seen_buf = np.zeros(gm.num_vertices, dtype=bool)
        for _ in range(self.max_passes):
            pass_start_wh = wh
            heap = IntKeyMaxHeap.from_priorities(whops)
            while heap:
                twh, _ = heap.pop()
                gain = self._try_swap(
                    twh,
                    sym,
                    weights,
                    table,
                    gm,
                    alloc_mask,
                    gamma,
                    host,
                    heap,
                    whops,
                    uniform,
                    seen_buf,
                )
                wh -= gain
            if pass_start_wh <= 0:
                break
            improvement = (pass_start_wh - wh) / pass_start_wh
            if improvement <= self.min_gain:
                break
        validate_mapping(gamma, machine, weights)
        return Mapping(gamma, machine)

    # ------------------------------------------------------------------
    def _try_swap(
        self,
        twh: int,
        sym,
        weights: np.ndarray,
        table,
        gm,
        alloc_mask: np.ndarray,
        gamma: np.ndarray,
        host: np.ndarray,
        heap: IntKeyMaxHeap,
        whops: np.ndarray,
        uniform: bool,
        seen: np.ndarray,
    ) -> float:
        """Score ≤Δ BFS-ordered candidates; commit the first improving swap.

        Returns the WH gain achieved (0.0 when no swap was committed).
        The candidate *filtering* (allocation membership, hosting a task,
        equal weights) consumes no Δ budget — only scored candidates do —
        matching the scalar reference exactly.
        """
        nbrs = sym.neighbors(twh)
        if nbrs.size == 0:
            return 0.0
        seeds = np.unique(gamma[nbrs])

        # ---- collect the first ≤Δ eligible partners in BFS order ----
        batches: List[np.ndarray] = []
        budget = self.delta
        seen[:] = False
        frontier = seeds
        seen[frontier] = True
        while frontier.size and budget > 0:
            hosts = host[frontier]
            # host[Γ[twh]] == twh, so the "skip our own node" test of the
            # scalar path is subsumed by hosts != twh.
            ok = alloc_mask[frontier] & (hosts >= 0) & (hosts != twh)
            cand = hosts[ok]
            if not uniform:
                cand = cand[weights[cand] == weights[twh]]
            if cand.size:
                take = cand[:budget]
                batches.append(take)
                budget -= take.size
                if budget <= 0:
                    break
            frontier = expand_frontier(gm, frontier, seen)
        if not batches:
            return 0.0
        partners = batches[0] if len(batches) == 1 else np.concatenate(batches)
        na = int(gamma[twh])

        # ---- one batched gain evaluation for the whole candidate set ----
        gains = batched_swap_gains(
            sym, table, gamma, twh, partners, whops_t1=float(whops[twh])
        )
        improving = np.flatnonzero(gains > 1e-12)
        if improving.size == 0:
            return 0.0
        j = int(improving[0])
        t = int(partners[j])
        gain = float(gains[j])

        nb = int(gamma[t])
        gamma[twh] = nb
        gamma[t] = na
        host[na] = t
        host[nb] = twh
        refresh_whops_around(heap, sym, table, gamma, (twh, t), whops=whops)
        return gain


# ----------------------------------------------------------------------
# Scalar reference implementations.
#
# The batched kernels above must agree with these term for term; the
# equivalence tests exercise both paths side by side.  They are not on
# the hot path.
# ----------------------------------------------------------------------
def _task_whops(t: int, sym, torus, gamma: np.ndarray) -> float:
    """TASKWHOPS: the WH incurred by task *t* under Γ (scalar reference)."""
    nbrs = sym.neighbors(t)
    if nbrs.size == 0:
        return 0.0
    hops = torus.hop_distance(np.full(nbrs.shape[0], gamma[t]), gamma[nbrs])
    return float((hops * sym.neighbor_weights(t)).sum())


def _swap_gain(t1: int, t2: int, sym, torus, gamma: np.ndarray) -> float:
    """Exact WH change (positive = improvement) of swapping Γ[t1] ↔ Γ[t2].

    The direct t1–t2 edge keeps its dilation under a swap, so it is
    excluded from both sides of the difference.  Scalar reference for
    :func:`repro.kernels.batched_swap_gains`.
    """
    n1, n2 = int(gamma[t1]), int(gamma[t2])

    def cost(task: int, node: int, exclude: int) -> float:
        nbrs = sym.neighbors(task)
        w = sym.neighbor_weights(task)
        keep = nbrs != exclude
        nbrs = nbrs[keep]
        if nbrs.size == 0:
            return 0.0
        hops = torus.hop_distance(np.full(nbrs.shape[0], node), gamma[nbrs])
        return float((hops * w[keep]).sum())

    before = cost(t1, n1, t2) + cost(t2, n2, t1)
    after = cost(t1, n2, t2) + cost(t2, n1, t1)
    return before - after
