"""``SMAP`` — Scotch-like dual recursive bipartitioning mapper.

Scotch's ``SMAP`` [Pellegrini & Roman] performs *simultaneous* recursive
bipartitioning of the process graph and the architecture graph.  The
paper used Scotch 5.1.0 (the last version supporting sparse allocations)
and found its mappings "worse than DEF mappings for most of the cases"
while being among the fastest.

We reuse the dual recursion of :mod:`repro.mapping.topomap` with Scotch's
characteristics: the *architecture* side is split by graph bisection of
the induced machine subgraph (Scotch models the machine as a graph, not
geometry), the engine runs in its fast/weak configuration, and there is
no DEF fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.task_graph import TaskGraph
from repro.mapping.base import Mapping
from repro.mapping.topomap import dual_recursive_map
from repro.partition.driver import EngineConfig
from repro.topology.machine import Machine

__all__ = ["ScotchMapper"]


@dataclass
class ScotchMapper:
    """Fast dual-recursive-bipartitioning mapping (no fallback)."""

    seed: int = 0
    engine: EngineConfig = EngineConfig(
        fm_passes=1, initial_attempts=1, coarse_target=96, strict_fm_limit=0
    )

    name: str = "SMAP"

    def map(self, task_graph: TaskGraph, machine: Machine) -> Mapping:
        """Map one task group per allocated node (Scotch-style)."""
        gamma = dual_recursive_map(
            task_graph,
            machine,
            seed=self.seed,
            engine=self.engine,
            split="graph",
        )
        return Mapping(gamma, machine)
