"""Topology-aware task mapping (the paper's contribution, Sec. III).

Algorithms
----------
* :class:`repro.mapping.greedy.GreedyMapper` — Algorithm 1 (``UG``):
  greedy graph-growing placement minimizing weighted hops, with
  ``NBFS ∈ {0, 1}`` best-of-two seeding.
* :class:`repro.mapping.refine_wh.WHRefiner` — Algorithm 2 (``UWH``):
  Kernighan–Lin-style task swaps driven by per-task WH contributions.
* :class:`repro.mapping.refine_mc.MCRefiner` — Algorithm 3 (``UMC`` /
  ``UMMC``): congestion-driven swaps on the most congested link.

Baselines
---------
* :class:`repro.mapping.default.DefaultMapper` — ``DEF``: Hopper's
  SMP-style placement of consecutive MPI ranks along the allocation order.
* :class:`repro.mapping.topomap.TopoMapper` — ``TMAP``: LibTopoMap-like
  dual recursive bipartitioning with DEF fallback on MC.
* :class:`repro.mapping.scotchmap.ScotchMapper` — ``SMAP``: Scotch-like
  simultaneous dual recursive bipartitioning.

Extended families
-----------------
* :class:`repro.mapping.hier.HierMapper` — ``HIER``/``HIERWH``:
  hierarchical per-dimension recursive partitioning (Schulz & Woydt's
  shared-memory hierarchical mapping, adapted to the torus geometry).
* :class:`repro.mapping.sfc.SFCMapper` — ``SFC``/``SFCWH``: geometric
  space-filling-curve zip placement (Deveci et al.'s ordering
  strategies), promoted from ``examples/custom_mapper.py``.

The two-phase driver (:mod:`repro.mapping.pipeline`) glues partitioning,
coarsening, mapping and refinement together and expands the node-level
mapping back to MPI ranks.
"""

from repro.mapping.base import Mapping, expand_mapping, validate_mapping
from repro.mapping.greedy import GreedyMapper
from repro.mapping.refine_wh import WHRefiner
from repro.mapping.refine_mc import MCRefiner
from repro.mapping.default import DefaultMapper
from repro.mapping.topomap import TopoMapper
from repro.mapping.scotchmap import ScotchMapper
from repro.mapping.hier import HierMapper
from repro.mapping.sfc import SFCMapper
from repro.mapping.pipeline import (
    FAMILY_MAPPER_NAMES,
    MAPPER_NAMES,
    MapperResult,
    TwoPhaseMapper,
    get_mapper,
)

__all__ = [
    "Mapping",
    "expand_mapping",
    "validate_mapping",
    "GreedyMapper",
    "WHRefiner",
    "MCRefiner",
    "DefaultMapper",
    "TopoMapper",
    "ScotchMapper",
    "HierMapper",
    "SFCMapper",
    "TwoPhaseMapper",
    "MapperResult",
    "MAPPER_NAMES",
    "FAMILY_MAPPER_NAMES",
    "get_mapper",
]
