"""``HIER`` — hierarchical per-dimension partition→placement pipeline.

Schulz & Woydt's *Shared-Memory Hierarchical Process Mapping* maps in
stages that mirror the machine's hierarchy: processes are k-way
partitioned into the top hierarchy level's modules, each part is
recursively partitioned into the next level, and only the leaves place
individual processes.  Our torus analogue treats the allocation's
geometry as the hierarchy: at every level the current node subset is
sliced into its coordinate planes along the widest dimension, the task
groups are k-way partitioned to the slices (target weights = slice
capacities, multilevel engine), and the recursion descends per slice
until single nodes remain.

Compared to ``TMAP``/``SMAP``'s binary dual recursion this runs *one*
k-way partition per torus dimension level (k = plane count), so its
cut decisions see the whole axis at once and the recursion is only as
deep as the torus has dimensions with extent > 1.

The placement expects the standard coarse setup (one group per
allocated node, group weights sized to the capacity multiset by the
shared grouping stage).  A final swap-repair pass resolves the rare
capacity violations a cardinality-exact partition can leave on
heterogeneous machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.graph.task_graph import TaskGraph
from repro.mapping.base import Mapping, validate_mapping
from repro.partition.driver import EngineConfig, partition_graph
from repro.topology.machine import Machine
from repro.util.rng import mix_seed

__all__ = ["HierMapper", "hierarchical_map"]


def hierarchical_map(
    task_graph: TaskGraph,
    machine: Machine,
    *,
    seed: int = 0,
    engine: EngineConfig = EngineConfig(fm_passes=2, initial_attempts=2),
) -> np.ndarray:
    """Recursive per-dimension partitioning of groups onto nodes; returns Γ."""
    n = task_graph.num_tasks
    if n != machine.num_alloc_nodes:
        raise ValueError(
            "hierarchical placement expects one task group per allocated node "
            f"({n} groups, {machine.num_alloc_nodes} nodes)"
        )
    sym = task_graph.symmetrized()
    gamma = np.full(n, -1, dtype=np.int64)
    _recurse(
        sym,
        np.arange(n, dtype=np.int64),
        machine.alloc_nodes.copy(),
        machine,
        gamma,
        seed,
        engine,
    )
    _repair_capacities(gamma, task_graph.graph.vertex_weights, machine)
    validate_mapping(gamma, machine, task_graph.graph.vertex_weights)
    return gamma


def _recurse(
    sym,
    group_ids: np.ndarray,
    node_ids: np.ndarray,
    machine: Machine,
    gamma: np.ndarray,
    seed: int,
    engine: EngineConfig,
) -> None:
    if node_ids.shape[0] == 0 or group_ids.shape[0] == 0:
        return
    if node_ids.shape[0] == 1:
        gamma[group_ids] = node_ids[0]
        return

    # ---- slice the node subset into planes of its widest dimension ----
    coords = machine.torus.coords()[node_ids]
    spans = coords.max(axis=0) - coords.min(axis=0)
    dim = int(np.argmax(spans))
    # Distinct allocated node ids always differ in some coordinate, so
    # the widest dimension of a >1-node subset has extent > 0.
    values = np.unique(coords[:, dim])
    buckets = [node_ids[coords[:, dim] == v] for v in values]
    caps = machine.node_capacities().astype(np.float64)
    targets = [float(caps[b].sum()) for b in buckets]

    # ---- k-way partition the groups to the slices ----------------------
    sub, _ = sym.subgraph(group_ids)
    part = partition_graph(
        sub,
        len(buckets),
        target_weights=targets,
        seed=mix_seed(seed, dim * 8191 + int(node_ids[0])),
        config=engine,
        tool="grouping",
    ).part
    part = _fix_counts(sub, part, [b.shape[0] for b in buckets])

    for i, bucket in enumerate(buckets):
        _recurse(
            sym,
            group_ids[part == i],
            bucket,
            machine,
            gamma,
            seed + i + 1,
            engine,
        )


def _fix_counts(sub, part: np.ndarray, counts: List[int]) -> np.ndarray:
    """Enforce exact per-part cardinalities (one group per node downstream).

    Moves the group with the weakest attachment to its over-full part
    toward the under-full part it is most attached to, until every part
    holds exactly its slice's node count.  Ties break on the lower group
    id, keeping the placement deterministic.
    """
    part = part.astype(np.int64).copy()
    k = len(counts)
    have = np.bincount(part, minlength=k)
    if np.array_equal(have, np.asarray(counts)):
        return part

    def attachment(g: int, side: int) -> float:
        nbrs = sub.neighbors(g)
        wts = sub.neighbor_weights(g)
        return float(
            sum(w for u, w in zip(nbrs.tolist(), wts.tolist()) if part[u] == side)
        )

    while True:
        over = [i for i in range(k) if have[i] > counts[i]]
        under = [i for i in range(k) if have[i] < counts[i]]
        if not over:
            break
        best = None
        for g in np.flatnonzero(np.isin(part, over)).tolist():
            src = int(part[g])
            for dst in under:
                gain = attachment(g, dst) - attachment(g, src)
                cand = (-gain, g, dst)
                if best is None or cand < best:
                    best = cand
        _, g, dst = best
        have[part[g]] -= 1
        part[g] = dst
        have[dst] += 1
    return part


def _repair_capacities(
    gamma: np.ndarray, weights: np.ndarray, machine: Machine
) -> None:
    """Swap-repair capacity violations in a group↔node bijection, in place.

    The grouping stage sizes group weights to the capacity multiset, so
    a feasible bijection always exists; on (heterogeneous) machines the
    cardinality-exact partition can still pair a heavy group with a
    small node.  Greedily applies the swap that shrinks the total
    overflow ``Σ max(0, w - cap)`` the most (ties broken on the lower
    group ids) — single direct swaps are the common case, and the
    strictly decreasing integer potential also resolves the chain
    shapes where a heavy group must displace a medium one first.
    """
    caps = machine.node_capacities().astype(np.float64)
    w = np.asarray(weights, dtype=np.float64)

    def over(weight: float, node: int) -> float:
        return max(0.0, weight - caps[node])

    total = float(sum(over(w[g], gamma[g]) for g in range(gamma.shape[0])))
    while total > 1e-9:
        bad = np.flatnonzero(w > caps[gamma] + 1e-9)
        best = None  # (-improvement, g, h)
        for g in bad.tolist():
            cur_g = over(w[g], gamma[g])
            for h in range(gamma.shape[0]):
                if h == g:
                    continue
                delta = (
                    over(w[g], gamma[h])
                    + over(w[h], gamma[g])
                    - cur_g
                    - over(w[h], gamma[h])
                )
                if delta < -1e-9:
                    cand = (delta, g, h)
                    if best is None or cand < best:
                        best = cand
        if best is None:
            g = int(bad[0])
            raise ValueError(
                f"no overflow-reducing swap for group {g} "
                f"(weight {w[g]:.0f} on capacity {caps[gamma[g]]:.0f})"
            )
        delta, g, h = best
        gamma[g], gamma[h] = gamma[h], gamma[g]
        total += delta


@dataclass
class HierMapper:
    """Hierarchical per-dimension recursive partition placement."""

    seed: int = 0
    engine: EngineConfig = EngineConfig(fm_passes=2, initial_attempts=2)

    name: str = "HIER"

    def map(self, task_graph: TaskGraph, machine: Machine) -> Mapping:
        """Map one task group per allocated node (hierarchy-style)."""
        gamma = hierarchical_map(
            task_graph, machine, seed=self.seed, engine=self.engine
        )
        return Mapping(gamma, machine)
