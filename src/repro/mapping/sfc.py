"""``SFC`` — geometric space-filling-curve placement family.

Deveci et al.'s "Geometric Partitioning and Ordering Strategies for Task
Mapping" show that purely *geometric* placements — linearize the machine
along a locality-preserving curve, linearize the tasks, zip the two
orders — are competitive with graph-based mappers at a fraction of the
cost, because curve-adjacent nodes are physically close (the same
intuition behind Cray ALPS' allocation ordering).

This module promotes the ``examples/custom_mapper.py`` prototype into a
first-class family: the allocated nodes are ordered along a curve from
:mod:`repro.util.sfc` (Hilbert-over-(x,y) when the footprint allows it,
reflected-Gray or snake sweeps otherwise), the task groups are ordered
by a heaviest-edge-first traversal of the coarse graph, and the two
linear orders are zipped under the per-node capacity constraints.  The
registry composes it with the shared grouping and (for ``SFCWH``) the
Algorithm 2 WH swap refinement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.task_graph import TaskGraph
from repro.mapping.base import Mapping, validate_mapping
from repro.topology.machine import Machine
from repro.util.sfc import gray3d_order, sfc_node_order, snake3d_order

__all__ = ["SFCMapper", "sfc_map", "CURVES"]

#: Supported curve names: ``auto`` picks Hilbert-over-(x,y) when the
#: torus footprint is a power-of-two square and snakes otherwise.
CURVES = ("auto", "snake", "gray")


def _curve_order(dims, curve: str) -> np.ndarray:
    if curve == "snake":
        return snake3d_order(dims)
    if curve == "gray":
        return gray3d_order(dims)
    if curve == "auto":
        return sfc_node_order(dims)
    raise ValueError(f"unknown curve {curve!r}; choose from {CURVES}")


def _heavy_edge_order(coarse: TaskGraph) -> np.ndarray:
    """Linearize groups by a heaviest-edge-first DFS (deterministic).

    Components are entered at their highest-volume unvisited vertex;
    within the stack, heavier neighbors are expanded first (ties broken
    by the lower vertex id, matching ``np.argsort``'s stable order).
    """
    graph = coarse.symmetrized()
    n = coarse.num_tasks
    volume = np.zeros(n)
    np.add.at(volume, np.repeat(np.arange(n), np.diff(graph.indptr)), graph.weights)
    seen = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    while pos < n:
        start = int(np.argmax(np.where(seen, -np.inf, volume)))
        stack = [start]
        seen[start] = True
        while stack:
            u = stack.pop()
            order[pos] = u
            pos += 1
            nbrs = graph.indices[graph.indptr[u]:graph.indptr[u + 1]]
            wts = graph.weights[graph.indptr[u]:graph.indptr[u + 1]]
            for v in nbrs[np.argsort(wts, kind="stable")]:  # heaviest popped first
                if not seen[v]:
                    seen[v] = True
                    stack.append(int(v))
    return order


def sfc_map(
    task_graph: TaskGraph, machine: Machine, *, curve: str = "auto"
) -> np.ndarray:
    """Zip a heavy-edge group order onto an SFC node order; returns Γ.

    *task_graph* must be at node granularity (one group per allocated
    node).  Each curve node receives the first not-yet-placed group in
    traversal order that fits its capacity; groups left over by the
    first-fit walk (possible only on heterogeneous-capacity machines)
    are matched to the remaining nodes heaviest-group → roomiest-node,
    which is feasible because the grouping stage sizes groups to the
    capacity multiset exactly.
    """
    n = task_graph.num_tasks
    if n != machine.num_alloc_nodes:
        raise ValueError(
            "SFC placement expects one task group per allocated node "
            f"({n} groups, {machine.num_alloc_nodes} nodes)"
        )
    mask = machine.alloc_mask()
    order = _curve_order(machine.torus.dims, curve)
    curve_nodes = order[mask[order]]

    groups = _heavy_edge_order(task_graph)
    weights = task_graph.graph.vertex_weights
    caps = machine.node_capacities().astype(np.float64)

    gamma = np.full(n, -1, dtype=np.int64)
    pending = groups.tolist()
    free_nodes = []
    for node in curve_nodes.tolist():
        # An exact-weight match keeps the zip feasible on heterogeneous
        # machines: the grouping stage sizes group weights to the
        # capacity multiset, so matching weight classes never strands a
        # heavy group on a small node.  Within the class the earliest
        # group in traversal order wins, preserving curve locality.
        pick = None
        for i, g in enumerate(pending):
            if abs(weights[g] - caps[node]) <= 1e-9:
                pick = i
                break
        if pick is None:
            # Multiset mismatch (custom groupings): take the heaviest
            # fitting group, keeping the remainder as light as possible.
            best = -1.0
            for i, g in enumerate(pending):
                if weights[g] <= caps[node] + 1e-9 and weights[g] > best:
                    pick, best = i, float(weights[g])
        if pick is None:
            free_nodes.append(node)
        else:
            gamma[pending.pop(pick)] = node
    if pending:
        # Leftovers: big groups first onto the roomiest remaining nodes
        # (node id breaks capacity ties for determinism).
        pending.sort(key=lambda g: (-weights[g], g))
        free_nodes.sort(key=lambda v: (-caps[v], v))
        for g, node in zip(pending, free_nodes):
            gamma[g] = node
    validate_mapping(gamma, machine, weights)
    return gamma


@dataclass
class SFCMapper:
    """Space-filling-curve zip placement (the geometric family's base)."""

    curve: str = "auto"

    name: str = "SFC"

    def map(self, task_graph: TaskGraph, machine: Machine) -> Mapping:
        """Place one task group per allocated node along the curve."""
        return Mapping(sfc_map(task_graph, machine, curve=self.curve), machine)
