"""``TMAP`` — LibTopoMap-like recursive-bipartitioning mapper.

LibTopoMap [Hoefler & Snir, SC'11] first partitions the task graph into
the allocated nodes, then maps part ↔ node with one of several strategies;
the paper reports its *recursive graph bipartitioning* variant as the
best and notes two behaviours we reproduce:

* the primary metric is MC: "If TMAP's MC value is not smaller than the
  DEF mapping, it returns the DEF mapping";
* it is the slowest mapper (it runs a full partitioner per level of the
  node-set recursion).

The dual recursion: split the allocated nodes into two halves by their
position along the longest torus dimension of the current node subset
(geometric bisection of the machine), split the task groups with a
multilevel graph bisection of matching size, and recurse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.task_graph import TaskGraph
from repro.mapping.base import Mapping, validate_mapping
from repro.metrics.mapping import evaluate_mapping
from repro.partition.driver import EngineConfig, multilevel_bisect
from repro.topology.machine import Machine
from repro.util.rng import mix_seed

__all__ = ["TopoMapper", "dual_recursive_map"]


@dataclass
class TopoMapper:
    """Recursive-bipartitioning mapping with DEF fallback on MC."""

    seed: int = 0
    engine: EngineConfig = EngineConfig(fm_passes=4, initial_attempts=4)
    fallback_on_mc: bool = True

    name: str = "TMAP"

    def map(
        self,
        task_graph: TaskGraph,
        machine: Machine,
        *,
        reference_gamma: Optional[np.ndarray] = None,
    ) -> Mapping:
        """Map groups to nodes; falls back to *reference_gamma* (DEF) on MC.

        *task_graph* must already be at node granularity (one group per
        allocated node), as LibTopoMap's own partitioning phase produces.
        """
        gamma = dual_recursive_map(
            task_graph, machine, seed=self.seed, engine=self.engine,
            split="geometric",
        )
        if self.fallback_on_mc and reference_gamma is not None:
            ours = evaluate_mapping(task_graph, machine, gamma)
            ref = evaluate_mapping(task_graph, machine, reference_gamma)
            if ours.mc >= ref.mc:
                return Mapping(np.asarray(reference_gamma, dtype=np.int64).copy(), machine)
        return Mapping(gamma, machine)


def dual_recursive_map(
    task_graph: TaskGraph,
    machine: Machine,
    *,
    seed: int = 0,
    engine: EngineConfig = EngineConfig(),
    split: str = "geometric",
) -> np.ndarray:
    """Simultaneous recursive bipartition of tasks and allocated nodes.

    ``split='geometric'`` halves the node subset along its widest torus
    dimension (LibTopoMap-style); ``split='graph'`` bisects the induced
    machine subgraph with the multilevel engine (Scotch-style).
    """
    sym = task_graph.symmetrized()
    n_tasks = task_graph.num_tasks
    if n_tasks != machine.num_alloc_nodes:
        raise ValueError(
            "dual recursive mapping expects one task group per allocated node "
            f"({n_tasks} groups, {machine.num_alloc_nodes} nodes)"
        )
    gamma = np.full(n_tasks, -1, dtype=np.int64)
    _recurse(
        sym,
        np.arange(n_tasks, dtype=np.int64),
        machine.alloc_nodes.copy(),
        machine,
        gamma,
        seed,
        engine,
        split,
    )
    validate_mapping(gamma, machine, None)
    return gamma


def _recurse(
    sym,
    task_ids: np.ndarray,
    node_ids: np.ndarray,
    machine: Machine,
    gamma: np.ndarray,
    seed: int,
    engine: EngineConfig,
    split: str,
) -> None:
    k = node_ids.shape[0]
    if k == 0:
        return
    if k == 1:
        gamma[task_ids] = node_ids[0]
        return
    if task_ids.shape[0] == 1:
        gamma[task_ids[0]] = node_ids[0]
        return

    # ---- split the node subset ----------------------------------------
    left_nodes, right_nodes = _split_nodes(node_ids, machine, split, seed)
    k0 = left_nodes.shape[0]

    # ---- split the task subset to matching cardinality ------------------
    sub, _ = sym.subgraph(task_ids)
    # Target weight: proportion of nodes going left (groups are
    # node-sized, so cardinality tracks weight).
    total = float(sub.vertex_weights.sum())
    target0 = total * (k0 / k)
    side = multilevel_bisect(
        sub, target0, seed=mix_seed(seed, k * 131 + int(node_ids[0])),
        slack=max(total / (4.0 * k), float(sub.vertex_weights.max())),
        config=engine,
    )
    left_ids = np.flatnonzero(side == 0)
    right_ids = np.flatnonzero(side == 1)
    # Cardinality must match the node split exactly (one group per node):
    # move the least-attached tasks across if the bisection missed.
    left_ids, right_ids = _fix_cardinality(sub, left_ids, right_ids, k0)

    _recurse(sym, task_ids[left_ids], left_nodes, machine, gamma, seed + 1, engine, split)
    _recurse(sym, task_ids[right_ids], right_nodes, machine, gamma, seed + 2, engine, split)


def _split_nodes(node_ids: np.ndarray, machine: Machine, split: str, seed: int):
    """Halve the node subset, keeping each half topologically compact."""
    k = node_ids.shape[0]
    k0 = (k + 1) // 2
    coords = machine.torus.coords()[node_ids]
    if split == "graph":
        # Bisect the induced machine subgraph; fall back to geometry when
        # the subgraph is too sparse to bisect meaningfully.
        sub, _ = machine.graph().subgraph(node_ids)
        if sub.num_edges > 0:
            side = multilevel_bisect(
                sub,
                float(k0),
                seed=mix_seed(seed, 977),
                slack=1.0,
                config=EngineConfig(fm_passes=2, initial_attempts=2),
            )
            left = node_ids[side == 0]
            right = node_ids[side == 1]
            if left.shape[0] and right.shape[0]:
                # Rebalance cardinality geometrically if needed.
                if abs(left.shape[0] - k0) <= max(1, k // 8):
                    return left, right
    # Geometric: sort along the widest spread dimension, split in half.
    spans = coords.max(axis=0) - coords.min(axis=0)
    dim = int(np.argmax(spans))
    order = np.lexsort(
        (node_ids, coords[:, (dim + 2) % 3], coords[:, (dim + 1) % 3], coords[:, dim])
    )
    ordered = node_ids[order]
    return ordered[:k0], ordered[k0:]


def _fix_cardinality(sub, left_ids: np.ndarray, right_ids: np.ndarray, k0: int):
    """Move weakest-attached tasks between sides until |left| == k0."""
    left = list(left_ids.tolist())
    right = list(right_ids.tolist())
    side_of = {t: 0 for t in left}
    side_of.update({t: 1 for t in right})

    def attachment(t: int, side: int) -> float:
        nbrs = sub.neighbors(t)
        wts = sub.neighbor_weights(t)
        return float(sum(w for u, w in zip(nbrs.tolist(), wts.tolist()) if side_of[u] == side))

    while len(left) > k0:
        t = min(left, key=lambda x: (attachment(x, 0) - attachment(x, 1), x))
        left.remove(t)
        right.append(t)
        side_of[t] = 1
    while len(left) < k0:
        t = min(right, key=lambda x: (attachment(x, 1) - attachment(x, 0), x))
        right.remove(t)
        left.append(t)
        side_of[t] = 0
    return (
        np.asarray(sorted(left), dtype=np.int64),
        np.asarray(sorted(right), dtype=np.int64),
    )
