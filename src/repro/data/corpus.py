"""Manifest of the 25-matrix corpus (9 classes, UFL stand-in).

The paper selects 25 UFL matrices from 9 classes; this manifest defines
25 deterministic synthetic matrices across the same number of classes,
with per-profile size scaling: sizes are expressed in *units* that the
experiment profile multiplies (so the CI profile runs the identical
corpus at laptop scale while the "paper" profile grows it).

``cage`` and ``rgg`` carry the flagship roles of cage15 and
rgg_n_2_23_s0 — the two largest matrices, used for the communication-only
and SpMV experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.graph.generators import generate_matrix
from repro.graph.matrices import SparseMatrix
from repro.util.rng import mix_seed

__all__ = ["CorpusEntry", "CORPUS", "load_corpus", "load_matrix", "FLAGSHIPS"]


@dataclass(frozen=True)
class CorpusEntry:
    """One matrix of the evaluation corpus.

    ``size_units`` scales with the experiment profile's
    ``rows_per_unit``; ``seed_salt`` keeps same-class matrices distinct.
    """

    name: str
    group: str
    size_units: float
    seed_salt: int


#: 25 matrices, 9 classes, size spread roughly matching the UFL picks
#: (two flagship large instances + a tail of mid-sized ones).
CORPUS: Tuple[CorpusEntry, ...] = (
    # Flagships (the paper's cage15 / rgg_n_2_23_s0 analogues).
    CorpusEntry("cage15_like", "cage", 2.0, 1),
    CorpusEntry("rgg_n23_like", "rgg", 2.0, 2),
    # cage family
    CorpusEntry("cage12_like", "cage", 0.8, 3),
    CorpusEntry("cage13_like", "cage", 1.2, 4),
    # rgg family
    CorpusEntry("rgg_n21_like", "rgg", 1.0, 5),
    CorpusEntry("rgg_n22_like", "rgg", 1.4, 6),
    # 2-D stencils / structured meshes
    CorpusEntry("ecology_like", "stencil2d", 1.2, 7),
    CorpusEntry("apache_like", "stencil2d", 0.9, 8),
    CorpusEntry("thermal_like", "stencil2d", 1.1, 9),
    # 3-D stencils
    CorpusEntry("atmosmodd_like", "stencil3d", 1.3, 10),
    CorpusEntry("poisson3d_like", "stencil3d", 0.9, 11),
    CorpusEntry("nlpkkt_like", "stencil3d", 1.5, 12),
    # power-law / web / social
    CorpusEntry("webbase_like", "powerlaw", 1.2, 13),
    CorpusEntry("wikipedia_like", "powerlaw", 0.9, 14),
    CorpusEntry("ljournal_like", "powerlaw", 1.4, 15),
    # FEM
    CorpusEntry("af_shell_like", "fem", 1.2, 16),
    CorpusEntry("audikw_like", "fem", 1.4, 17),
    CorpusEntry("bone_like", "fem", 0.8, 18),
    # circuits
    CorpusEntry("freescale_like", "circuit", 1.1, 19),
    CorpusEntry("memchip_like", "circuit", 0.9, 20),
    CorpusEntry("circuit5m_like", "circuit", 1.3, 21),
    # road networks
    CorpusEntry("roadnet_like", "road", 1.1, 22),
    CorpusEntry("europe_osm_like", "road", 1.4, 23),
    # economics
    CorpusEntry("econ_fwd_like", "econ", 0.9, 24),
    CorpusEntry("econ_mac_like", "econ", 1.1, 25),
)

#: The two matrices driving the comm-only / SpMV experiments.
FLAGSHIPS: Tuple[str, str] = ("cage15_like", "rgg_n23_like")


def load_matrix(entry: CorpusEntry, rows_per_unit: int, base_seed: int = 0) -> SparseMatrix:
    """Instantiate one corpus matrix at the profile's scale."""
    n = max(64, int(entry.size_units * rows_per_unit))
    mat = generate_matrix(entry.group, n, seed=mix_seed(base_seed, entry.seed_salt))
    # Rebrand with the corpus name for readable experiment reports.
    mat.name = entry.name
    return mat


def load_corpus(
    rows_per_unit: int,
    base_seed: int = 0,
    names: Tuple[str, ...] = (),
) -> List[SparseMatrix]:
    """Instantiate the corpus (optionally a named subset) at a scale."""
    selected = [e for e in CORPUS if not names or e.name in names]
    if names and len(selected) != len(names):
        missing = set(names) - {e.name for e in selected}
        raise ValueError(f"unknown corpus entries: {sorted(missing)}")
    return [load_matrix(e, rows_per_unit, base_seed) for e in selected]
