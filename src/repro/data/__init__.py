"""The 25-matrix evaluation corpus (UFL-collection stand-in)."""

from repro.data.corpus import CORPUS, CorpusEntry, load_corpus, load_matrix

__all__ = ["CORPUS", "CorpusEntry", "load_corpus", "load_matrix"]
