"""Content fingerprints for ndarray-backed artifacts.

Cache keys across the repo (the :class:`repro.api.cache.ArtifactCache`
namespaces, shared :class:`repro.topology.routing.RouteTable` entries)
are *content* fingerprints rather than object identities, so two
structurally identical inputs hit the same entry regardless of how they
were constructed and nothing keeps stale references alive by identity.

This lives in :mod:`repro.util` (not the API layer) because every layer
fingerprints arrays: topology keys route tables, the mapping refiners
and metrics share them, and the API cache keys everything else.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["fingerprint_arrays"]


def fingerprint_arrays(*arrays: np.ndarray) -> int:
    """64-bit content fingerprint of a sequence of ndarrays.

    Chains CRC-32 and Adler-32 over each array's bytes and shape; the two
    checksums land in separate halves of the result so single-checksum
    collisions do not collide the combined key.
    """
    crc = 0
    adl = 1
    for a in arrays:
        arr = np.ascontiguousarray(a)
        meta = f"{arr.dtype.str}{arr.shape}".encode()
        data = arr.tobytes()
        crc = zlib.crc32(data, zlib.crc32(meta, crc))
        adl = zlib.adler32(data, zlib.adler32(meta, adl))
    return (crc << 32) | adl
