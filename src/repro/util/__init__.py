"""Shared low-level utilities.

This subpackage hosts the small data structures and helpers every other
layer builds on:

* :mod:`repro.util.heap` -- addressable binary max-heaps used by all three
  mapping algorithms (``conn`` in Algorithm 1, ``whHeap`` in Algorithm 2 and
  ``congHeap`` in Algorithm 3 of the paper).
* :mod:`repro.util.rng` -- deterministic seeding helpers so that every
  experiment in the harness is reproducible bit-for-bit.
* :mod:`repro.util.sfc` -- space-filling-curve orderings used by the
  Cray-like allocator and the DEF mapping baseline.
* :mod:`repro.util.validation` -- argument checking helpers shared by the
  public API surface.
* :mod:`repro.util.timing` -- tiny wall-clock timer used by the Figure 3
  experiment (mapping times).
"""

from repro.util.heap import AddressableMaxHeap, AddressableMinHeap, IntKeyMaxHeap
from repro.util.rng import seeded_rng, spawn_seeds
from repro.util.sfc import hilbert2d_order, snake3d_order, sfc_node_order
from repro.util.timing import Timer
from repro.util.validation import (
    check_array_1d,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
)

__all__ = [
    "AddressableMaxHeap",
    "AddressableMinHeap",
    "IntKeyMaxHeap",
    "seeded_rng",
    "spawn_seeds",
    "hilbert2d_order",
    "snake3d_order",
    "sfc_node_order",
    "Timer",
    "check_array_1d",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "check_probability",
]
