"""Space-filling-curve orderings for node placement.

The paper (Sec. IV-B) explains why Hopper's *default* mapping is already a
decent baseline: "Hopper places the consecutive MPI ranks within a single
node, then it moves to the closer nodes using space filling curves".  The
Cray ALPS scheduler orders nodes along a curve through the torus so that
consecutively allocated nodes tend to be physically close [Albing et al.,
CUG 2011].

We provide two orderings over a 3-D grid:

* :func:`snake3d_order` -- boustrophedon ("snake") sweep: x fastest with
  alternating direction per y row, y alternating per z plane.  This is the
  classic xyz-ordering approximation of ALPS' linear ordering (and exactly
  the mixed-radix reflected-Gray enumeration of the grid).
* :func:`gray3d_order` -- binary-reflected Gray-coded Morton order on
  power-of-two grids: the combined bit index walks a Gray sequence, so
  every step flips a single bit of a single coordinate.  Steps are
  power-of-two jumps along one axis — single *wrap-hierarchy* moves on a
  power-of-two torus rather than the snake's unit steps — which is the
  Gray-code embedding the geometric-mapping literature uses to spread
  consecutive ranks across wrap links.  Falls back to the snake sweep
  when an extent is not a power of two.
* :func:`hilbert2d_order` -- true Hilbert curve on a 2^k x 2^k grid, used by
  :func:`sfc_node_order` to order the (x, y) footprint when the torus has a
  shallow z dimension (as Gemini's torus does: two nodes share a router).

Both return a permutation of node ids such that walking the permutation
visits physically nearby nodes consecutively.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["snake3d_order", "gray3d_order", "hilbert2d_order", "sfc_node_order"]


def snake3d_order(dims: Tuple[int, int, int]) -> np.ndarray:
    """Boustrophedon ordering of a ``dims = (nx, ny, nz)`` grid.

    Returns an int64 array ``order`` of length ``nx*ny*nz`` where
    ``order[i]`` is the node id (``x + nx*(y + ny*z)``) visited at step
    ``i``.  Consecutive steps differ by exactly one hop in the grid (the
    wrap-around links of a torus are not needed).
    """
    nx, ny, nz = dims
    if nx <= 0 or ny <= 0 or nz <= 0:
        raise ValueError(f"dims must be positive, got {dims}")
    order = np.empty(nx * ny * nz, dtype=np.int64)
    i = 0
    for z in range(nz):
        ys = range(ny) if z % 2 == 0 else range(ny - 1, -1, -1)
        for y in ys:
            # Alternate x direction so consecutive nodes stay adjacent.
            flip = (y + z) % 2 == 1
            xs = range(nx - 1, -1, -1) if flip else range(nx)
            for x in xs:
                order[i] = x + nx * (y + ny * z)
                i += 1
    return order


def gray3d_order(dims: Tuple[int, int, int]) -> np.ndarray:
    """Gray-coded Morton ordering of a power-of-two ``(nx, ny, nz)`` grid.

    The curve position's binary-reflected Gray code ``d ^ (d >> 1)`` is
    de-interleaved (Morton-style, LSB-first round-robin over the
    dimensions that still have bits) into the cell coordinates.
    Consecutive positions differ in exactly one Gray bit, so every step
    changes exactly one coordinate by a power of two — a single move in
    the torus's wrap hierarchy.  Non-power-of-two extents fall back to
    :func:`snake3d_order` (itself the mixed-radix reflected-Gray sweep).
    """
    nx, ny, nz = dims
    if nx <= 0 or ny <= 0 or nz <= 0:
        raise ValueError(f"dims must be positive, got {dims}")
    if any(d & (d - 1) for d in dims):
        return snake3d_order(dims)
    bits = [d.bit_length() - 1 for d in dims]
    # Bit j of the combined index belongs to (dimension, local bit):
    # round-robin from the LSB across dimensions with bits remaining.
    assignment = []
    taken = [0, 0, 0]
    while len(assignment) < sum(bits):
        for axis in range(3):
            if taken[axis] < bits[axis]:
                assignment.append((axis, taken[axis]))
                taken[axis] += 1
    order = np.empty(nx * ny * nz, dtype=np.int64)
    for d in range(order.shape[0]):
        g = d ^ (d >> 1)
        coord = [0, 0, 0]
        for j, (axis, local_bit) in enumerate(assignment):
            coord[axis] |= ((g >> j) & 1) << local_bit
        order[d] = coord[0] + nx * (coord[1] + ny * coord[2])
    return order


def _hilbert_d2xy(k: int, d: int) -> Tuple[int, int]:
    """Convert distance *d* along a 2^k x 2^k Hilbert curve to (x, y)."""
    x = y = 0
    t = d
    s = 1
    while s < (1 << k):
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        # Rotate quadrant.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def hilbert2d_order(k: int) -> np.ndarray:
    """Hilbert ordering of a ``2^k x 2^k`` grid.

    Returns ``order`` with ``order[d] = x + 2^k * y`` for curve position
    ``d``.  Every consecutive pair of visited cells is grid-adjacent, which
    is the locality property ALPS exploits.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    n = 1 << k
    order = np.empty(n * n, dtype=np.int64)
    for d in range(n * n):
        x, y = _hilbert_d2xy(k, d)
        order[d] = x + n * y
    return order


def sfc_node_order(dims: Tuple[int, int, int]) -> np.ndarray:
    """Locality-preserving linear ordering of the torus nodes.

    Uses a Hilbert curve over (x, y) when both are equal powers of two
    (interleaving z fastest, since Gemini routers stack two nodes in z),
    and falls back to the snake ordering otherwise.  The returned array is
    a permutation of ``range(nx*ny*nz)``.
    """
    nx, ny, nz = dims
    if nx == ny and nx > 0 and (nx & (nx - 1)) == 0:
        k = int(nx).bit_length() - 1
        xy = hilbert2d_order(k)
        order = np.empty(nx * ny * nz, dtype=np.int64)
        i = 0
        for d in range(nx * ny):
            cell = int(xy[d])
            x, y = cell % nx, cell // nx
            # Snake through z within each (x, y) column.
            zs = range(nz) if d % 2 == 0 else range(nz - 1, -1, -1)
            for z in zs:
                order[i] = x + nx * (y + ny * z)
                i += 1
        return order
    return snake3d_order(dims)
