"""Addressable binary heaps.

All three mapping algorithms of the paper rely on priority queues whose
entries must be *updated in place*:

* Algorithm 1 keeps a max-heap ``conn`` of the total connectivity of each
  unmapped task to the already-mapped tasks, and calls
  ``conn.update(t, c(t_best, t))`` whenever a neighbour is mapped.
* Algorithm 2 keeps ``whHeap``, a max-heap of per-task weighted-hop
  contributions, updated after every swap.
* Algorithm 3 keeps ``congHeap``, a max-heap of per-link congestions.

The classic :mod:`heapq` module cannot update keys, so we implement a small
addressable binary heap with a position index.  Keys are arbitrary hashable
items; priorities are floats.  Ties are broken deterministically by a
monotonically increasing insertion counter so that runs are reproducible
across platforms.

The heaps here are used on *coarse* graphs (one vertex per allocated node),
so they hold at most a few thousand entries; a pure-Python implementation is
more than fast enough and keeps the hot NumPy paths elsewhere uncluttered.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

import numpy as np

__all__ = ["AddressableMaxHeap", "AddressableMinHeap", "IntKeyMaxHeap"]


class AddressableMaxHeap:
    """Binary max-heap with O(log n) insert/pop/update and O(1) lookup.

    Entries are ``(priority, tiebreak, item)`` triples stored in an array
    ``_a`` with a companion ``item -> index`` map ``_pos``.  ``tiebreak`` is
    a sequence number: among equal priorities the *earliest inserted* item
    wins, which pins down the otherwise unspecified pop order of the paper's
    C++ heaps and makes every experiment deterministic.

    Examples
    --------
    >>> h = AddressableMaxHeap()
    >>> h.insert("a", 1.0); h.insert("b", 3.0); h.insert("c", 2.0)
    >>> h.pop()
    ('b', 3.0)
    >>> h.update("a", 10.0)        # absolute update
    >>> h.increase("c", 9.5)       # additive update
    >>> h.pop()
    ('c', 11.5)
    """

    __slots__ = ("_a", "_pos", "_counter")

    def __init__(self) -> None:
        self._a: List[Tuple[float, int, Any]] = []
        self._pos: Dict[Any, int] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._a)

    def __bool__(self) -> bool:
        return bool(self._a)

    def __contains__(self, item: Any) -> bool:
        return item in self._pos

    def __iter__(self) -> Iterator[Any]:
        """Iterate over items in arbitrary (heap) order."""
        for _, _, item in self._a:
            yield item

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def priority(self, item: Any) -> float:
        """Return the current priority of *item* (KeyError if absent)."""
        return self._a[self._pos[item]][0]

    def peek(self) -> Tuple[Any, float]:
        """Return ``(item, priority)`` of the maximum without removing it."""
        if not self._a:
            raise IndexError("peek from an empty heap")
        prio, _, item = self._a[0]
        return item, prio

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, item: Any, priority: float) -> None:
        """Insert *item*; raises ValueError if it is already present."""
        if item in self._pos:
            raise ValueError(f"item {item!r} already in heap")
        self._counter += 1
        self._a.append((float(priority), -self._counter, item))
        self._pos[item] = len(self._a) - 1
        self._sift_up(len(self._a) - 1)

    def pop(self) -> Tuple[Any, float]:
        """Remove and return ``(item, priority)`` with the maximum priority."""
        if not self._a:
            raise IndexError("pop from an empty heap")
        prio, _, item = self._a[0]
        self._remove_at(0)
        return item, prio

    def remove(self, item: Any) -> float:
        """Remove *item*, returning its priority (KeyError if absent)."""
        idx = self._pos[item]
        prio = self._a[idx][0]
        self._remove_at(idx)
        return prio

    def update(self, item: Any, priority: float) -> None:
        """Set the priority of *item* to an absolute value (insert if new)."""
        if item not in self._pos:
            self.insert(item, priority)
            return
        idx = self._pos[item]
        old, tie, _ = self._a[idx]
        self._a[idx] = (float(priority), tie, item)
        if priority > old:
            self._sift_up(idx)
        elif priority < old:
            self._sift_down(idx)

    def increase(self, item: Any, delta: float) -> None:
        """Add *delta* to the priority of *item* (insert at *delta* if new).

        This is exactly the ``conn.update(tn, c(t0, tn))`` accumulation of
        Algorithm 1: connectivity is summed over mapped neighbours.
        """
        if item not in self._pos:
            self.insert(item, delta)
        else:
            self.update(item, self.priority(item) + delta)

    def clear(self) -> None:
        self._a.clear()
        self._pos.clear()

    def items(self) -> List[Tuple[Any, float]]:
        """Snapshot of ``(item, priority)`` pairs in arbitrary order."""
        return [(item, prio) for prio, _, item in self._a]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _remove_at(self, idx: int) -> None:
        a = self._a
        del self._pos[a[idx][2]]
        last = a.pop()
        if idx < len(a):
            a[idx] = last
            self._pos[last[2]] = idx
            # Restore invariant in whichever direction is needed.
            self._sift_up(idx)
            self._sift_down(idx)

    def _sift_up(self, idx: int) -> None:
        a, pos = self._a, self._pos
        entry = a[idx]
        while idx > 0:
            parent = (idx - 1) >> 1
            if a[parent] < entry:
                a[idx] = a[parent]
                pos[a[idx][2]] = idx
                idx = parent
            else:
                break
        a[idx] = entry
        pos[entry[2]] = idx

    def _sift_down(self, idx: int) -> None:
        a, pos = self._a, self._pos
        n = len(a)
        entry = a[idx]
        while True:
            left = 2 * idx + 1
            if left >= n:
                break
            best = left
            right = left + 1
            if right < n and a[right] > a[left]:
                best = right
            if a[best] > entry:
                a[idx] = a[best]
                pos[a[idx][2]] = idx
                idx = best
            else:
                break
        a[idx] = entry
        pos[entry[2]] = idx

    def validate(self) -> bool:
        """Check the heap invariant and position index (for tests)."""
        a = self._a
        for i in range(1, len(a)):
            if a[(i - 1) >> 1] < a[i]:
                return False
        for item, idx in self._pos.items():
            if a[idx][2] != item:
                return False
        return len(self._pos) == len(a)


class IntKeyMaxHeap:
    """Array-backed addressable max-heap over a dense int id space.

    Drop-in for :class:`AddressableMaxHeap` when items are integers in
    ``[0, capacity)`` — the case of ``conn`` (task ids) in Algorithm 1
    and ``whHeap`` in Algorithm 2.  State lives in four flat arrays
    (float64 priorities, int64 tie-breaks, int32 positions, int32 heap
    order), so no per-entry tuples or dict buckets are allocated and a
    full heap can be bulk-built from a priority vector in O(n)
    (:meth:`from_priorities`).

    Tie-breaking matches :class:`AddressableMaxHeap` exactly: among equal
    priorities the earliest-inserted item pops first.  Because
    ``(priority, tiebreak)`` is a total order, the pop sequence is
    independent of the internal array layout — bulk heapify and
    incremental inserts yield identical runs.
    """

    __slots__ = ("_prio", "_tie", "_pos", "_heap", "_size", "_counter")

    def __init__(self, capacity: int) -> None:
        capacity = int(capacity)
        self._prio = np.zeros(capacity, dtype=np.float64)
        self._tie = np.zeros(capacity, dtype=np.int64)
        self._pos = np.full(capacity, -1, dtype=np.int32)
        self._heap = np.empty(capacity, dtype=np.int32)
        self._size = 0
        self._counter = 0

    @classmethod
    def from_priorities(cls, priorities) -> "IntKeyMaxHeap":
        """Heap holding items ``0..n-1`` at the given priorities (O(n)).

        Equivalent to inserting the items in id order, so ties pop
        lowest-id first — the order every pass of Algorithm 2 uses.
        """
        p = np.asarray(priorities, dtype=np.float64)
        n = p.shape[0]
        h = cls(n)
        h._prio[:] = p
        h._tie[:] = -np.arange(1, n + 1, dtype=np.int64)
        h._counter = n
        h._heap[:] = np.arange(n, dtype=np.int32)
        h._pos[:] = np.arange(n, dtype=np.int32)
        h._size = n
        for i in range((n >> 1) - 1, -1, -1):
            h._sift_down(i)
        return h

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, item: int) -> bool:
        # Negative ids are never members (a bare _pos[item] would wrap
        # around and report some other item's membership).
        return item >= 0 and self._pos[item] >= 0

    def priority(self, item: int) -> float:
        if item < 0 or self._pos[item] < 0:
            raise KeyError(item)
        return float(self._prio[item])

    def peek(self) -> Tuple[int, float]:
        if self._size == 0:
            raise IndexError("peek from an empty heap")
        item = int(self._heap[0])
        return item, float(self._prio[item])

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, item: int, priority: float) -> None:
        if item < 0:
            raise IndexError(f"item ids must be non-negative, got {item}")
        if self._pos[item] >= 0:
            raise ValueError(f"item {item!r} already in heap")
        self._counter += 1
        self._prio[item] = priority
        self._tie[item] = -self._counter
        idx = self._size
        self._heap[idx] = item
        self._pos[item] = idx
        self._size += 1
        self._sift_up(idx)

    def pop(self) -> Tuple[int, float]:
        if self._size == 0:
            raise IndexError("pop from an empty heap")
        item = int(self._heap[0])
        prio = float(self._prio[item])
        self._remove_at(0)
        return item, prio

    def remove(self, item: int) -> float:
        if item < 0:
            raise KeyError(item)
        idx = int(self._pos[item])
        if idx < 0:
            raise KeyError(item)
        prio = float(self._prio[item])
        self._remove_at(idx)
        return prio

    def update(self, item: int, priority: float) -> None:
        idx = int(self._pos[item]) if item >= 0 else -1
        if idx < 0:
            self.insert(item, priority)  # raises IndexError for item < 0
            return
        old = float(self._prio[item])
        self._prio[item] = priority
        if priority > old:
            self._sift_up(idx)
        elif priority < old:
            self._sift_down(idx)

    def increase(self, item: int, delta: float) -> None:
        idx = int(self._pos[item]) if item >= 0 else -1
        if idx < 0:
            self.insert(item, delta)  # raises IndexError for item < 0
            return
        self._prio[item] += delta
        if delta > 0:
            self._sift_up(idx)
        elif delta < 0:
            self._sift_down(idx)

    def clear(self) -> None:
        self._pos[:] = -1
        self._size = 0

    def items(self) -> List[Tuple[int, float]]:
        """Snapshot of ``(item, priority)`` pairs in arbitrary order."""
        live = self._heap[: self._size]
        return [(int(i), float(self._prio[i])) for i in live]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _greater(self, a: int, b: int) -> bool:
        """Does item *a* outrank item *b* in pop order?"""
        pa = self._prio[a]
        pb = self._prio[b]
        if pa != pb:
            return pa > pb
        return self._tie[a] > self._tie[b]

    def _remove_at(self, idx: int) -> None:
        heap, pos = self._heap, self._pos
        pos[heap[idx]] = -1
        self._size -= 1
        last = heap[self._size]
        if idx < self._size:
            heap[idx] = last
            pos[last] = idx
            self._sift_up(idx)
            self._sift_down(idx)

    def _sift_up(self, idx: int) -> None:
        heap, pos = self._heap, self._pos
        item = int(heap[idx])
        while idx > 0:
            parent = (idx - 1) >> 1
            other = int(heap[parent])
            if self._greater(item, other):
                heap[idx] = other
                pos[other] = idx
                idx = parent
            else:
                break
        heap[idx] = item
        pos[item] = idx

    def _sift_down(self, idx: int) -> None:
        heap, pos = self._heap, self._pos
        n = self._size
        item = int(heap[idx])
        while True:
            left = 2 * idx + 1
            if left >= n:
                break
            best = left
            right = left + 1
            if right < n and self._greater(int(heap[right]), int(heap[left])):
                best = right
            child = int(heap[best])
            if self._greater(child, item):
                heap[idx] = child
                pos[child] = idx
                idx = best
            else:
                break
        heap[idx] = item
        pos[item] = idx

    def validate(self) -> bool:
        """Check the heap invariant and position index (for tests)."""
        for i in range(1, self._size):
            if self._greater(int(self._heap[i]), int(self._heap[(i - 1) >> 1])):
                return False
        live = set()
        for i in range(self._size):
            item = int(self._heap[i])
            if self._pos[item] != i:
                return False
            live.add(item)
        return int(np.count_nonzero(self._pos >= 0)) == len(live) == self._size


class AddressableMinHeap:
    """Min-heap facade over :class:`AddressableMaxHeap` (priority negation).

    Used where the smallest value must pop first (e.g. candidate-node
    selection by weighted-hop overhead in ``GETBESTNODE`` tie handling).
    """

    __slots__ = ("_h",)

    def __init__(self) -> None:
        self._h = AddressableMaxHeap()

    def __len__(self) -> int:
        return len(self._h)

    def __bool__(self) -> bool:
        return bool(self._h)

    def __contains__(self, item: Any) -> bool:
        return item in self._h

    def insert(self, item: Any, priority: float) -> None:
        self._h.insert(item, -float(priority))

    def pop(self) -> Tuple[Any, float]:
        item, prio = self._h.pop()
        return item, -prio

    def peek(self) -> Tuple[Any, float]:
        item, prio = self._h.peek()
        return item, -prio

    def priority(self, item: Any) -> float:
        return -self._h.priority(item)

    def update(self, item: Any, priority: float) -> None:
        self._h.update(item, -float(priority))

    def remove(self, item: Any) -> float:
        return -self._h.remove(item)

    def clear(self) -> None:
        self._h.clear()

    def items(self) -> List[Tuple[Any, float]]:
        return [(item, -prio) for item, prio in self._h.items()]

    def validate(self) -> bool:
        return self._h.validate()
