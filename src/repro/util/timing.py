"""Wall-clock timing helper used by the Figure 3 experiment.

Figure 3 of the paper reports the (geometric) mean *mapping times* of each
algorithm.  The experiment harness wraps each mapper invocation in a
:class:`Timer` so the reported time covers exactly the mapping work (not
graph construction or metric evaluation), mirroring how the authors timed
their UMPA variants.
"""

from __future__ import annotations

import time
from typing import List, Optional

__all__ = ["Timer"]


class Timer:
    """Context-manager stopwatch accumulating multiple timed sections.

    Examples
    --------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True
    >>> with t:                     # accumulates
    ...     _ = sum(range(1000))
    >>> len(t.laps)
    2
    """

    __slots__ = ("elapsed", "laps", "_start")

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self.laps: List[float] = []
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None, "Timer.__exit__ without __enter__"
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.elapsed += lap
        self._start = None

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None
