"""Deterministic random-number helpers.

Every stochastic component in the library (graph generators, the allocator,
partitioner tie-breaking, simulator noise) takes an integer ``seed`` and
builds its generator through :func:`seeded_rng`, so a fixed experiment
configuration always produces identical output.  :func:`spawn_seeds` derives
independent child seeds for sub-components without correlated streams.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

__all__ = ["seeded_rng", "spawn_seeds", "mix_seed"]

_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def seeded_rng(seed: Optional[Union[int, np.random.Generator]]) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts ``None`` (fresh entropy), an ``int`` seed, or an existing
    generator (returned unchanged) so APIs can take either form.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def mix_seed(seed: int, salt: int) -> int:
    """Mix *salt* into *seed* with a splitmix64-style bijection.

    Used to derive per-component seeds (e.g. per-matrix, per-allocation)
    that differ even for consecutive base seeds.
    """
    z = (seed * 0x100000001B3 + salt * _GOLDEN + 0x632BE59BD9B4E019) & _MASK64
    z ^= z >> 27
    z = (z * 0x94D049BB133111EB) & _MASK64
    z ^= z >> 31
    return z & _MASK64


def spawn_seeds(seed: int, n: int, salt: int = 0) -> List[int]:
    """Derive *n* independent child seeds from *seed*.

    Parameters
    ----------
    seed:
        Base seed of the parent component.
    n:
        Number of child seeds.
    salt:
        Distinguishes different *families* of children derived from the
        same parent (e.g. salt=1 for matrices, salt=2 for allocations).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return [mix_seed(seed, salt * 1_000_003 + i + 1) for i in range(n)]
