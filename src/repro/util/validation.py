"""Argument-validation helpers for the public API surface.

The library is used both programmatically and from the experiment harness;
failing early with a precise message is cheaper than debugging a vectorized
NumPy traceback three layers down.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_probability",
    "check_array_1d",
    "check_same_length",
]


def check_positive(name: str, value: float) -> None:
    """Raise ValueError unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Raise ValueError unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_in_range(name: str, value: float, lo: float, hi: float) -> None:
    """Raise ValueError unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise ValueError unless *value* is a probability in [0, 1]."""
    check_in_range(name, value, 0.0, 1.0)


def check_array_1d(
    name: str,
    arr: Any,
    *,
    length: Optional[int] = None,
    dtype: Optional[type] = None,
) -> np.ndarray:
    """Coerce *arr* to a 1-D ndarray, optionally checking length/dtype kind.

    Returns the coerced array so callers can write
    ``weights = check_array_1d("weights", weights, length=n)``.
    """
    out = np.asarray(arr)
    if out.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {out.shape}")
    if length is not None and out.shape[0] != length:
        raise ValueError(f"{name} must have length {length}, got {out.shape[0]}")
    if dtype is not None:
        out = out.astype(dtype, copy=False)
    return out


def check_same_length(names: Sequence[str], arrays: Sequence[Any]) -> None:
    """Raise ValueError unless all arrays have identical length."""
    lengths = [len(a) for a in arrays]
    if len(set(lengths)) > 1:
        pairs = ", ".join(f"{n}={l}" for n, l in zip(names, lengths))
        raise ValueError(f"length mismatch: {pairs}")
