"""Analysis helpers: NNLS regression and summary statistics."""

from repro.analysis.regression import (
    RegressionResult,
    nnls_regression,
    standardize_columns,
    pearson_matrix,
    METRIC_COLUMNS,
)
from repro.analysis.stats import geometric_mean, normalize_to

__all__ = [
    "RegressionResult",
    "nnls_regression",
    "standardize_columns",
    "pearson_matrix",
    "METRIC_COLUMNS",
    "geometric_mean",
    "normalize_to",
]
