"""NNLS regression analysis (paper Sec. IV-E).

"In NNLS, given a variable matrix V and a vector t, we want to find a
dependency vector d which minimizes ‖Vd − t‖ s.t. d ≥ 0."  The 14 columns
are the partitioning metrics MSV, TV, MSM, TM; the mapping metrics WH,
TH, MC, MMC, AC, AMC; and the node metrics ICV, ICM, MNRV, MNRM.  Each
column is standardized (subtract mean, divide by standard deviation) so
coefficients are comparable; the paper solves with MATLAB ``lsqnonneg``
— we use SciPy's implementation of the same Lawson–Hanson algorithm.

The helper also computes pairwise Pearson correlations, which the paper
uses to explain why highly correlated metrics (AMC vs MNRM/ICM/TM) can
hide each other's coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy.optimize import nnls

__all__ = [
    "METRIC_COLUMNS",
    "RegressionResult",
    "standardize_columns",
    "nnls_regression",
    "pearson_matrix",
]

#: Column order of the paper's variable matrix V.
METRIC_COLUMNS: Tuple[str, ...] = (
    "MSV",
    "TV",
    "MSM",
    "TM",
    "WH",
    "TH",
    "MC",
    "MMC",
    "AC",
    "AMC",
    "ICV",
    "ICM",
    "MNRV",
    "MNRM",
)


@dataclass(frozen=True)
class RegressionResult:
    """Outcome of one NNLS fit."""

    coefficients: Dict[str, float]
    residual: float

    def nonzero(self, threshold: float = 1e-9) -> Dict[str, float]:
        """Metrics with coefficients above *threshold*, sorted descending."""
        items = [(k, v) for k, v in self.coefficients.items() if v > threshold]
        return dict(sorted(items, key=lambda kv: -kv[1]))

    def top(self, k: int = 5) -> List[str]:
        """Names of the k largest-coefficient metrics."""
        return list(self.nonzero())[:k]


def standardize_columns(v: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance columns ("make them equally important").

    Constant columns (zero variance) become all-zero rather than NaN.
    """
    v = np.asarray(v, dtype=np.float64)
    mean = v.mean(axis=0)
    std = v.std(axis=0)
    out = v - mean
    nonconst = std > 0
    out[:, nonconst] /= std[nonconst]
    out[:, ~nonconst] = 0.0
    return out


def nnls_regression(
    v: np.ndarray,
    t: np.ndarray,
    columns: Sequence[str] = METRIC_COLUMNS,
) -> RegressionResult:
    """Standardize V, solve ``min ‖Vd − t‖, d ≥ 0``; name the coefficients."""
    v = np.asarray(v, dtype=np.float64)
    t = np.asarray(t, dtype=np.float64)
    if v.ndim != 2:
        raise ValueError("V must be 2-D")
    if v.shape[0] != t.shape[0]:
        raise ValueError("V rows must match t length")
    if v.shape[1] != len(columns):
        raise ValueError(f"V has {v.shape[1]} columns for {len(columns)} names")
    vs = standardize_columns(v)
    coef, residual = nnls(vs, t)
    return RegressionResult(
        coefficients={name: float(c) for name, c in zip(columns, coef)},
        residual=float(residual),
    )


def pearson_matrix(
    v: np.ndarray, columns: Sequence[str] = METRIC_COLUMNS
) -> Dict[Tuple[str, str], float]:
    """Pairwise Pearson correlations of the metric columns."""
    v = np.asarray(v, dtype=np.float64)
    if v.shape[1] != len(columns):
        raise ValueError("column count mismatch")
    std = v.std(axis=0)
    corr = np.corrcoef(v, rowvar=False)
    out: Dict[Tuple[str, str], float] = {}
    for i, a in enumerate(columns):
        for j, b in enumerate(columns):
            if i < j:
                val = corr[i, j] if std[i] > 0 and std[j] > 0 else float("nan")
                out[(a, b)] = float(val)
    return out
