"""Summary statistics used throughout the experiment harness.

The paper reports geometric means of metric ratios ("Geometric means of
the partition metrics w.r.t PATOH", "(Geometric) mean execution times")
— the right average for normalized quantities.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

__all__ = ["geometric_mean", "normalize_to", "geo_mean_ratio"]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (NaN-tolerant: NaNs are dropped)."""
    arr = np.asarray(list(values), dtype=np.float64)
    arr = arr[~np.isnan(arr)]
    if arr.size == 0:
        return float("nan")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def normalize_to(values: Mapping[str, float], reference_key: str) -> Dict[str, float]:
    """Normalize a dict of values by one entry (e.g. everything / PATOH)."""
    ref = values[reference_key]
    if ref == 0:
        raise ValueError(f"reference {reference_key!r} is zero")
    return {k: v / ref for k, v in values.items()}


def geo_mean_ratio(numerators: Sequence[float], denominators: Sequence[float]) -> float:
    """Geometric mean of pairwise ratios num/den."""
    num = np.asarray(numerators, dtype=np.float64)
    den = np.asarray(denominators, dtype=np.float64)
    if num.shape != den.shape:
        raise ValueError("numerators and denominators must align")
    ok = (num > 0) & (den > 0)
    if not np.any(ok):
        return float("nan")
    return float(np.exp(np.mean(np.log(num[ok] / den[ok]))))
