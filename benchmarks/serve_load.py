"""Deterministic load generator for the network serving front end.

Drives a :class:`~repro.serve.server.MappingServer` with closed-loop
client threads (each sends its next request only after the previous
reply) and reports exact latency percentiles per phase.  Closed-loop
load is *deterministic in structure*: the number of clients bounds the
number of requests ever pending, so the nominal phase cannot shed by
construction and the overload phase (more clients than ``max_pending``)
must shed — the tail-latency gate in ``compare_bench.py --gate-tail``
leans on both invariants, which hold on any hardware.

Three phases (standalone mode):

``nominal``
    Few clients against a generously provisioned server.  Expected:
    zero shed, the p50/p95/p99 that describe healthy serving.
``overload``
    Many clients against ``max_pending=1`` with a single in-flight
    plan.  Expected: structural load shedding; the phase separates the
    latency of *answered* requests from the latency of *shed* replies —
    admission control is working iff the latter is far below the
    former.
``coalesce``
    A barrier-synchronized burst of identical requests into a long
    batching window.  Expected: one dispatch folding the burst, one
    grouping-stage miss in the artifact cache (the planner deduped the
    rest).

Usage::

    PYTHONPATH=src python benchmarks/serve_load.py [--json]
        [--backend thread] [--workers 2] [--update BENCH_n.json]
    PYTHONPATH=src python benchmarks/serve_load.py \
        --connect HOST:PORT [--clients 2] [--requests 8] [--expect-no-shed]

``--update`` merges the measured ``serving`` section into an existing
snapshot (``emit_bench.py`` embeds the same section natively).
``--connect`` drives an already-running server (the CI smoke job) with
the nominal phase only; ``--expect-no-shed`` exits non-zero if the
server shed anything.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.serve.client import ServeClient, parse_address
from repro.serve.metrics import summarize_latencies

#: The one request every phase sends: small enough that the CI host
#: serves a phase in seconds, identical across clients so the planner's
#: dedup (and the coalesce phase's cache assertion) has work to do.
ENTRY = {
    "matrix": "cage12_like",
    "algos": "UG",
    "procs": 16,
    "ppn": 2,
    "rows_per_unit": 40,
    "seed": 0,
}

NOMINAL_CLIENTS = 2
NOMINAL_REQUESTS = 8
OVERLOAD_CLIENTS = 8
OVERLOAD_REQUESTS = 4
COALESCE_CLIENTS = 6
COALESCE_WINDOW_S = 0.3


def drive(
    address: Tuple[str, int],
    clients: int,
    requests_per_client: int,
    *,
    tenant_prefix: str = "load",
    start_barrier: bool = False,
) -> dict:
    """Closed-loop phase: *clients* threads, each sending sequentially.

    Returns completed/shed/error counts, exact latency summaries (one
    for answered requests, one for shed replies) and the coalesce
    counts reported in the replies themselves.
    """
    ok_lat: List[float] = []
    shed_lat: List[float] = []
    errors: List[dict] = []
    coalesced: List[int] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients) if start_barrier else None

    def worker(index: int) -> None:
        with ServeClient(
            address[0], address[1], tenant=f"{tenant_prefix}-{index}", timeout=300.0
        ) as client:
            if barrier is not None:
                barrier.wait(timeout=60)
            for _ in range(requests_per_client):
                t0 = time.perf_counter()
                reply = client.map([dict(ENTRY)])
                dt = time.perf_counter() - t0
                with lock:
                    if reply.get("ok"):
                        ok_lat.append(dt)
                        coalesced.append(int(reply.get("coalesced", 1)))
                    elif (reply.get("error") or {}).get("kind") == "overloaded":
                        shed_lat.append(dt)
                    else:
                        errors.append(reply.get("error") or {})

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"load-{i}")
        for i in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0

    total = clients * requests_per_client
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "total": total,
        "completed": len(ok_lat),
        "shed": len(shed_lat),
        "errors": len(errors),
        "elapsed_s": elapsed,
        "requests_per_s": total / elapsed if elapsed > 0 else 0.0,
        "latency": summarize_latencies(ok_lat),
        "shed_latency": summarize_latencies(shed_lat),
        "max_coalesced": max(coalesced, default=0),
    }


def _server_snapshot(address: Tuple[str, int]) -> dict:
    with ServeClient(address[0], address[1], timeout=30.0) as client:
        return client.stats()


def measure_serving(backend: str = "thread", workers: Optional[int] = 2) -> dict:
    """The snapshot's ``serving`` section: nominal / overload / coalesce.

    Each phase gets a fresh in-process :class:`ThreadedServer` so its
    counters describe exactly that phase.  The ``thread`` backend is
    the default: it supports per-node deadlines (serial does not) and
    keeps the measurement free of process-spawn noise.
    """
    from repro.serve.server import ThreadedServer

    out: Dict[str, object] = {"backend": backend, "workers": workers}

    with ThreadedServer(
        backend=backend,
        workers=workers,
        max_pending=64,
        coalesce_window=0.01,
        max_in_flight=2,
    ) as ts:
        phase = drive(ts.address, NOMINAL_CLIENTS, NOMINAL_REQUESTS)
        stats = _server_snapshot(ts.address)
        phase["server"] = {
            "counters": stats["counters"],
            "coalesce": stats["coalesce"],
            "map_latency": stats["latency"]["map"],
        }
        out["nominal"] = phase

    # max_pending=1 + one in-flight plan + a batching window: with 8
    # closed-loop clients the queue is structurally always contended,
    # so admission control must shed.
    with ThreadedServer(
        backend=backend,
        workers=workers,
        max_pending=1,
        coalesce_window=0.05,
        max_batch=1,
        max_in_flight=1,
    ) as ts:
        out["overload"] = drive(
            ts.address, OVERLOAD_CLIENTS, OVERLOAD_REQUESTS, tenant_prefix="ovl"
        )

    # A synchronized burst of identical requests into one long window:
    # the dispatcher folds them into one batch and the planner computes
    # the shared grouping once.
    with ThreadedServer(
        backend=backend,
        workers=workers,
        max_pending=64,
        coalesce_window=COALESCE_WINDOW_S,
        max_batch=16,
        max_in_flight=1,
    ) as ts:
        phase = drive(
            ts.address,
            COALESCE_CLIENTS,
            1,
            tenant_prefix="burst",
            start_barrier=True,
        )
        stats = _server_snapshot(ts.address)
        grouping = stats["cache"].get("grouping", {})
        out["coalesce"] = {
            "requests": COALESCE_CLIENTS,
            "window_s": COALESCE_WINDOW_S,
            "completed": phase["completed"],
            "dispatches": stats["coalesce"]["dispatches"],
            "coalesced_requests": stats["coalesce"]["coalesced_requests"],
            "mean_batch": stats["coalesce"]["mean_batch"],
            "max_coalesced": phase["max_coalesced"],
            "grouping_misses": grouping.get("misses"),
            "grouping_hits": grouping.get("hits"),
            "latency": phase["latency"],
        }
    return out


def _print_summary(section: dict, stream=sys.stdout) -> None:
    for name in ("nominal", "overload"):
        phase = section.get(name)
        if not phase:
            continue
        lat = phase["latency"]
        line = (
            f"  {name}: {phase['completed']}/{phase['total']} answered, "
            f"{phase['shed']} shed, {phase['errors']} errors; "
        )
        if lat.get("count"):
            line += (
                f"p50 {lat['p50_ms']:.1f} ms, p95 {lat['p95_ms']:.1f} ms, "
                f"p99 {lat['p99_ms']:.1f} ms"
            )
        else:
            line += "no answered requests"
        print(line, file=stream)
        shed_lat = phase.get("shed_latency", {})
        if shed_lat.get("count"):
            print(
                f"    shed replies: p95 {shed_lat['p95_ms']:.2f} ms "
                f"(admission says no fast)",
                file=stream,
            )
    coalesce = section.get("coalesce")
    if coalesce:
        print(
            f"  coalesce: {coalesce['requests']} identical requests -> "
            f"{coalesce['dispatches']} dispatch(es), "
            f"grouping misses {coalesce['grouping_misses']}, "
            f"max batch {coalesce['max_coalesced']}",
            file=stream,
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Closed-loop load generator for the mapping server."
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="drive an already-running server (nominal phase only) "
        "instead of starting in-process servers",
    )
    parser.add_argument(
        "--backend", default="thread", help="engine backend (standalone mode)"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="engine workers (standalone mode)"
    )
    parser.add_argument(
        "--clients", type=int, default=NOMINAL_CLIENTS, help="--connect: client threads"
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=NOMINAL_REQUESTS,
        help="--connect: requests per client",
    )
    parser.add_argument(
        "--expect-no-shed",
        action="store_true",
        help="exit 1 if anything was shed (CI smoke assertion)",
    )
    parser.add_argument("--json", action="store_true", help="emit the section as JSON")
    parser.add_argument(
        "--update",
        default=None,
        metavar="SNAPSHOT.json",
        help="merge the measured section into an existing snapshot "
        "as its 'serving' key",
    )
    args = parser.parse_args(argv)

    if args.connect:
        address = parse_address(args.connect)
        phase = drive(address, args.clients, args.requests, tenant_prefix="smoke")
        stats = _server_snapshot(address)
        phase["server"] = {
            "counters": stats["counters"],
            "coalesce": stats["coalesce"],
        }
        section: dict = {"mode": "connect", "nominal": phase}
    else:
        section = measure_serving(args.backend, args.workers)

    if args.update:
        with open(args.update) as fh:
            snapshot = json.load(fh)
        snapshot["serving"] = section
        with open(args.update, "w") as fh:
            json.dump(snapshot, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"updated {args.update}", file=sys.stderr)

    if args.json:
        print(json.dumps(section, indent=1, sort_keys=True))
    else:
        print("serving load:")
        _print_summary(section)

    if args.expect_no_shed:
        shed = sum(
            phase.get("shed", 0)
            for name, phase in section.items()
            if isinstance(phase, dict) and name in ("nominal",)
        )
        if shed:
            print(f"error: {shed} requests shed at nominal load", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
