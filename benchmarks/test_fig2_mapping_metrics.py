"""Benchmark regenerating Figure 2 (mapping metrics vs DEF on PATOH graphs).

Checks the paper's qualitative claims: the UMPA variants improve WH/TH
over DEF; UMC achieves the lowest MC; UMMC the lowest MMC; TMAP never
worsens MC (DEF fallback).
"""

from repro.analysis.stats import geometric_mean
from repro.experiments.fig2 import format_fig2, run_fig2
from repro.mapping.pipeline import MAPPER_NAMES


def test_fig2_mapping_metrics(benchmark, profile, cache):
    result = benchmark.pedantic(
        lambda: run_fig2(profile, cache), rounds=1, iterations=1
    )
    print()
    print(format_fig2(result))

    procs = result.proc_counts

    def overall(algo, metric):
        return geometric_mean([result.values[(p, algo, metric)] for p in procs])

    # WH: the greedy family beats DEF on average.
    assert overall("UG", "WH") < 1.0
    assert overall("UWH", "WH") <= overall("UG", "WH") * 1.02
    # MC: UMC is the strongest congestion reducer among all algorithms.
    assert overall("UMC", "MC") == min(overall(a, "MC") for a in MAPPER_NAMES)
    # MMC: UMMC leads the UMPA family.
    assert overall("UMMC", "MMC") <= min(
        overall("UG", "MMC"), overall("UWH", "MMC")
    ) * 1.02
    # TMAP's fallback guarantees MC no worse than DEF.
    assert overall("TMAP", "MC") <= 1.0 + 1e-9
