"""Benchmarks regenerating Figure 4 (communication-only app, cage & rgg).

Shape checks (paper Sec. IV-C): execution time correlates with WH; the
best times come from the WH/MC-minimizing mappers; UMMC is the weakest
UMPA variant once messages are scaled (volume-bound regime).
"""

import numpy as np

from repro.experiments.fig4 import FIG4_MAPPERS, FIG4_PARTITIONERS, format_fig4, run_fig4


def _best_umpa_time(result):
    return min(
        result.values[(pt, al, "time")]
        for pt in FIG4_PARTITIONERS
        for al in ("UG", "UWH", "UMC")
    )


def test_fig4a_commonly_cage(benchmark, profile, cache):
    result = benchmark.pedantic(
        lambda: run_fig4("cage15_like", profile, cache), rounds=1, iterations=1
    )
    print()
    print(format_fig4(result))
    # The WH-minimizing family finds a mapping faster than DEF-on-PATOH.
    assert _best_umpa_time(result) < 1.0
    # Time correlates with WH across the grid (positive rank correlation).
    whs = [result.values[(pt, al, "WH")] for pt in FIG4_PARTITIONERS for al in FIG4_MAPPERS]
    ts = [result.values[(pt, al, "time")] for pt in FIG4_PARTITIONERS for al in FIG4_MAPPERS]
    corr = np.corrcoef(whs, ts)[0, 1]
    assert corr > 0.2, f"time should correlate with WH, got r={corr:.2f}"


def test_fig4b_commonly_rgg(benchmark, profile, cache):
    result = benchmark.pedantic(
        lambda: run_fig4("rgg_n23_like", profile, cache), rounds=1, iterations=1
    )
    print()
    print(format_fig4(result))
    assert _best_umpa_time(result) < 1.0
    # UWH should improve on DEF for most partitioner graphs.
    wins = sum(
        result.values[(pt, "UWH", "time")] <= result.values[(pt, "DEF", "time")] * 1.02
        for pt in FIG4_PARTITIONERS
    )
    assert wins >= len(FIG4_PARTITIONERS) // 2
