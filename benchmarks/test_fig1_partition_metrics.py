"""Benchmark regenerating Figure 1 (partition metrics vs PATOH).

Prints the normalized TV/TM/MSV/MSM table and checks the paper's shape:
PATOH is the TV reference nobody beats by much; the edge-cut tools
(SCOTCH, KAFFPA) trail on volume quality; UMPA-MM leads MSM; UMPA-MV
leads MSV.
"""

from repro.analysis.stats import geometric_mean
from repro.experiments.fig1 import PARTITIONERS, format_fig1, run_fig1


def test_fig1_partition_metrics(benchmark, profile, cache):
    result = benchmark.pedantic(
        lambda: run_fig1(profile, cache), rounds=1, iterations=1
    )
    print()
    print(format_fig1(result))

    procs_list = result.proc_counts

    def mean_over_counts(tool, metric):
        return geometric_mean(
            [result.values[(p, tool, metric)] for p in procs_list]
        )

    # PATOH is the TV baseline: no tool beats it by more than ~8% on average.
    for tool in PARTITIONERS:
        assert mean_over_counts(tool, "TV") > 0.90, (tool, "TV")

    # Edge-cut minimizers pay a TV penalty vs PATOH.
    assert mean_over_counts("SCOTCH", "TV") >= 1.0
    assert mean_over_counts("KAFFPA", "TV") >= 0.99

    # The UMPA personalities lead their own primary metrics.
    assert mean_over_counts("UMPAMM", "MSM") == min(
        mean_over_counts(t, "MSM") for t in PARTITIONERS
    )
    assert mean_over_counts("UMPAMV", "MSV") <= 1.05
