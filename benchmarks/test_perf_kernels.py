"""Microbenchmarks for the vectorized kernel layer.

Tracks the primitives the mapping hot paths are built from:

* hop-table lookup (``pairwise_hops`` / ``cross_hops``) vs the
  coordinate-formula ``Torus3D.hop_distance``;
* one vectorized ``expand_frontier`` BFS level on the torus graph;
* one ``batched_swap_gains`` call (Δ=8 candidates) vs Δ scalar
  ``_swap_gain`` invocations;
* one ``CongestionModel.evaluate_swaps`` call (Δ=8 candidates) vs Δ
  scalar ``swap_improves`` probes — Algorithm 3's inner loop.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_perf_kernels.py``;
pytest-benchmark prints the comparison table.
"""

import numpy as np
import pytest

from repro.graph.csr import expand_frontier
from repro.graph.task_graph import TaskGraph
from repro.kernels import HopTable, batched_swap_gains, hop_table_for
from repro.mapping.refine_wh import _swap_gain, _task_whops
from repro.topology.torus import Torus3D

N_PAIRS = 10_000


@pytest.fixture(scope="module")
def torus():
    return Torus3D((12, 10, 8))  # 960 nodes, Hopper-job scale


@pytest.fixture(scope="module")
def pairs(torus):
    rng = np.random.default_rng(7)
    a = rng.integers(0, torus.num_nodes, size=N_PAIRS)
    b = rng.integers(0, torus.num_nodes, size=N_PAIRS)
    return a, b


def test_hop_formula_baseline(benchmark, torus, pairs):
    a, b = pairs
    benchmark(lambda: torus.hop_distance(a, b))


def test_hop_table_pairwise(benchmark, torus, pairs):
    a, b = pairs
    table = hop_table_for(torus)
    assert table.has_matrix
    benchmark(lambda: table.pairwise_hops(a, b))


def test_hop_table_ring_fallback(benchmark, torus, pairs):
    a, b = pairs
    table = HopTable(torus, matrix_max_nodes=0)
    benchmark(lambda: table.pairwise_hops(a, b))


def test_hop_table_cross(benchmark, torus):
    rng = np.random.default_rng(9)
    cands = rng.integers(0, torus.num_nodes, size=100)
    nbrs = rng.integers(0, torus.num_nodes, size=100)
    table = hop_table_for(torus)
    benchmark(lambda: table.cross_hops(cands, nbrs))


def test_frontier_expansion(benchmark, torus):
    gm = torus.graph()
    assert gm.padded_neighbors() is not None
    frontier0 = np.arange(0, torus.num_nodes, 97, dtype=np.int64)

    def one_level():
        seen = np.zeros(gm.num_vertices, dtype=bool)
        seen[frontier0] = True
        return expand_frontier(gm, frontier0, seen)

    out = benchmark(one_level)
    assert out.size > 0


@pytest.fixture(scope="module")
def swap_workload(torus):
    rng = np.random.default_rng(11)
    n = 256
    src = rng.integers(0, n, size=2500)
    dst = rng.integers(0, n, size=2500)
    keep = src != dst
    vol = rng.integers(1, 20, size=2500).astype(np.float64)
    tg = TaskGraph.from_edges(n, src[keep], dst[keep], vol[keep])
    gamma = rng.choice(torus.num_nodes, size=n, replace=False).astype(np.int64)
    partners = np.asarray([3, 17, 42, 88, 101, 150, 199, 230], dtype=np.int64)
    return tg.symmetrized(), gamma, partners


def test_swap_gain_scalar_baseline(benchmark, torus, swap_workload):
    sym, gamma, partners = swap_workload

    def scalar():
        return [_swap_gain(0, int(t), sym, torus, gamma) for t in partners]

    benchmark(scalar)


def test_swap_gain_batched(benchmark, torus, swap_workload):
    sym, gamma, partners = swap_workload
    table = hop_table_for(torus)
    whops0 = _task_whops(0, sym, torus, gamma)

    def batched():
        return batched_swap_gains(sym, table, gamma, 0, partners, whops_t1=whops0)

    got = benchmark(batched)
    want = [_swap_gain(0, int(t), sym, torus, gamma) for t in partners]
    np.testing.assert_allclose(got, want, rtol=0, atol=1e-9)


@pytest.fixture(scope="module")
def congestion_workload(torus):
    from repro.kernels.congestion import CongestionModel

    rng = np.random.default_rng(13)
    n = 256
    src = rng.integers(0, n, size=2500)
    dst = rng.integers(0, n, size=2500)
    keep = src != dst
    vol = rng.integers(1, 20, size=2500).astype(np.float64)
    tg = TaskGraph.from_edges(n, src[keep], dst[keep], vol[keep])
    gamma = rng.choice(torus.num_nodes, size=n, replace=False).astype(np.int64)
    src_t, dst_t, vols = tg.graph.edge_list()
    model = CongestionModel(torus, src_t, dst_t, vols, gamma)
    partners = np.asarray([3, 17, 42, 88, 101, 150, 199, 230], dtype=np.int64)
    return model, partners


def test_congestion_probe_scalar_baseline(benchmark, congestion_workload):
    model, partners = congestion_workload

    def scalar():
        return [model.swap_improves(0, int(t)) for t in partners]

    benchmark(scalar)


def test_congestion_probe_batched(benchmark, congestion_workload):
    model, partners = congestion_workload

    def batched():
        return model.evaluate_swaps(0, partners)

    got = benchmark(batched)
    want = [model.swap_improves(0, int(t)) for t in partners]
    assert got.tolist() == want
