"""Microbenchmarks for the vectorized kernel layer.

Tracks the primitives the mapping hot paths are built from:

* hop-table lookup (``pairwise_hops`` / ``cross_hops``) vs the
  coordinate-formula ``Torus3D.hop_distance``;
* one vectorized ``expand_frontier`` BFS level on the torus graph;
* one ``batched_swap_gains`` call (Δ=8 candidates) vs Δ scalar
  ``_swap_gain`` invocations;
* one ``CongestionModel.evaluate_swaps`` call (Δ=8 candidates) vs Δ
  scalar ``swap_improves`` probes — Algorithm 3's inner loop;
* ``RouteTable.accumulate`` / ``replace_routes`` — the congestion
  model's per-commit route maintenance.

Every benchmark that sits on a dispatching call site takes the
``kernel_backend`` axis (``benchmarks/conftest.py``), so with numba
installed the table shows each kernel's numpy and (pre-warmed) native
timings side by side — the per-kernel comparison behind the
``kernel_backends`` section of the committed snapshots.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_perf_kernels.py``;
pytest-benchmark prints the comparison table.
"""

import numpy as np
import pytest

from repro.graph.csr import expand_frontier
from repro.graph.task_graph import TaskGraph
from repro.kernels import HopTable, batched_swap_gains, hop_table_for
from repro.mapping.refine_wh import _swap_gain, _task_whops
from repro.topology.routing import RouteTable, routes_bulk
from repro.topology.torus import Torus3D

N_PAIRS = 10_000


@pytest.fixture(scope="module")
def torus():
    return Torus3D((12, 10, 8))  # 960 nodes, Hopper-job scale


@pytest.fixture(scope="module")
def pairs(torus):
    rng = np.random.default_rng(7)
    a = rng.integers(0, torus.num_nodes, size=N_PAIRS)
    b = rng.integers(0, torus.num_nodes, size=N_PAIRS)
    return a, b


def test_hop_formula_baseline(benchmark, torus, pairs):
    a, b = pairs
    benchmark(lambda: torus.hop_distance(a, b))


def test_hop_table_pairwise(benchmark, torus, pairs, kernel_backend):
    a, b = pairs
    table = hop_table_for(torus)
    assert table.has_matrix
    benchmark(lambda: table.pairwise_hops(a, b))


def test_hop_table_ring_fallback(benchmark, torus, pairs):
    a, b = pairs
    table = HopTable(torus, matrix_max_nodes=0)
    benchmark(lambda: table.pairwise_hops(a, b))


def test_hop_table_cross(benchmark, torus):
    rng = np.random.default_rng(9)
    cands = rng.integers(0, torus.num_nodes, size=100)
    nbrs = rng.integers(0, torus.num_nodes, size=100)
    table = hop_table_for(torus)
    benchmark(lambda: table.cross_hops(cands, nbrs))


def test_frontier_expansion(benchmark, torus, kernel_backend):
    gm = torus.graph()
    assert gm.padded_neighbors() is not None
    frontier0 = np.arange(0, torus.num_nodes, 97, dtype=np.int64)

    def one_level():
        seen = np.zeros(gm.num_vertices, dtype=bool)
        seen[frontier0] = True
        return expand_frontier(gm, frontier0, seen)

    out = benchmark(one_level)
    assert out.size > 0


@pytest.fixture(scope="module")
def swap_workload(torus):
    rng = np.random.default_rng(11)
    n = 256
    src = rng.integers(0, n, size=2500)
    dst = rng.integers(0, n, size=2500)
    keep = src != dst
    vol = rng.integers(1, 20, size=2500).astype(np.float64)
    tg = TaskGraph.from_edges(n, src[keep], dst[keep], vol[keep])
    gamma = rng.choice(torus.num_nodes, size=n, replace=False).astype(np.int64)
    partners = np.asarray([3, 17, 42, 88, 101, 150, 199, 230], dtype=np.int64)
    return tg.symmetrized(), gamma, partners


def test_swap_gain_scalar_baseline(benchmark, torus, swap_workload):
    sym, gamma, partners = swap_workload

    def scalar():
        return [_swap_gain(0, int(t), sym, torus, gamma) for t in partners]

    benchmark(scalar)


def test_swap_gain_batched(benchmark, torus, swap_workload, kernel_backend):
    sym, gamma, partners = swap_workload
    table = hop_table_for(torus)
    whops0 = _task_whops(0, sym, torus, gamma)

    def batched():
        return batched_swap_gains(sym, table, gamma, 0, partners, whops_t1=whops0)

    got = benchmark(batched)
    want = [_swap_gain(0, int(t), sym, torus, gamma) for t in partners]
    np.testing.assert_allclose(got, want, rtol=0, atol=1e-9)


@pytest.fixture(scope="module")
def congestion_workload(torus):
    from repro.kernels.congestion import CongestionModel

    rng = np.random.default_rng(13)
    n = 256
    src = rng.integers(0, n, size=2500)
    dst = rng.integers(0, n, size=2500)
    keep = src != dst
    vol = rng.integers(1, 20, size=2500).astype(np.float64)
    tg = TaskGraph.from_edges(n, src[keep], dst[keep], vol[keep])
    gamma = rng.choice(torus.num_nodes, size=n, replace=False).astype(np.int64)
    src_t, dst_t, vols = tg.graph.edge_list()
    model = CongestionModel(torus, src_t, dst_t, vols, gamma)
    partners = np.asarray([3, 17, 42, 88, 101, 150, 199, 230], dtype=np.int64)
    return model, partners


def test_congestion_probe_scalar_baseline(benchmark, congestion_workload):
    model, partners = congestion_workload

    def scalar():
        return [model.swap_improves(0, int(t)) for t in partners]

    benchmark(scalar)


def test_congestion_probe_batched(benchmark, congestion_workload, kernel_backend):
    model, partners = congestion_workload

    def batched():
        return model.evaluate_swaps(0, partners)

    got = benchmark(batched)
    want = [model.swap_improves(0, int(t)) for t in partners]
    assert got.tolist() == want


@pytest.fixture(scope="module")
def route_workload(torus):
    rng = np.random.default_rng(17)
    m = 2500
    src = rng.integers(0, torus.num_nodes, size=m)
    dst = rng.integers(0, torus.num_nodes, size=m)
    table = RouteTable.build(torus, src, dst)
    volumes = rng.integers(1, 20, size=m).astype(np.float64)
    pairs = np.unique(rng.integers(0, m, size=64))
    links, msg = routes_bulk(torus, dst[pairs], src[pairs])  # reversed routes
    order = np.argsort(msg, kind="stable")
    counts = np.bincount(msg, minlength=pairs.size)
    return table, volumes, pairs, links[order], counts


def test_route_accumulate(benchmark, route_workload, kernel_backend):
    table, volumes, _, _, _ = route_workload
    benchmark(lambda: table.accumulate(volumes))


def test_route_splice(benchmark, route_workload, kernel_backend):
    table, _, pairs, new_links, new_counts = route_workload

    def splice():
        table.replace_routes(pairs, new_links, new_counts)

    benchmark(splice)
