"""Benchmark regenerating the Sec. IV-E NNLS regression analysis.

Shape checks: the comm-only fit is dominated by volume metrics, the SpMV
fit by latency/average-congestion metrics, matching the paper's split
(WH/MSV/MC vs AMC/ICV/MMC/TH/MNRV).
"""

from repro.experiments.regression import format_regression, run_regression

VOLUME_METRICS = {"WH", "MSV", "MC", "TV", "ICV", "AC", "MNRV"}
LATENCY_METRICS = {"AMC", "TH", "MMC", "TM", "ICM", "MSM", "MNRM"}


def test_regression_analysis(benchmark, profile, cache):
    study = benchmark.pedantic(
        lambda: run_regression(profile, cache), rounds=1, iterations=1
    )
    print()
    print(format_regression(study))

    comm_top = set(study.comm_only.top(3))
    assert comm_top & VOLUME_METRICS, (
        f"comm-only fit should pick volume metrics, got {comm_top}"
    )

    spmv_nz = set(study.spmv.nonzero())
    assert spmv_nz, "SpMV fit found no dependencies"

    # The fits differ: the applications stress different metrics.
    assert study.comm_only.top(3) != study.spmv.top(3) or len(spmv_nz) > 3
