"""Emit a perf snapshot (``BENCH_<n>.json``) of per-algorithm map times.

Runs the Figure 3 harness sweep (the Figure 2 runs carry the timing
data) on the profile selected by ``REPRO_PROFILE`` (default ``ci``) and
writes geometric-mean mapping times per algorithm — overall and per
processor count — so the repo's performance trajectory is tracked commit
over commit.

Usage::

    PYTHONPATH=src python benchmarks/emit_bench.py [output.json]

The default output name is ``BENCH_<n>.json`` in the repository root,
where ``<n>`` is one past the highest existing snapshot index.
"""

from __future__ import annotations

import json
import os
import platform
import re
import sys

from repro.analysis.stats import geometric_mean
from repro.experiments.fig2 import run_fig2
from repro.experiments.harness import WorkloadCache
from repro.experiments.profiles import profile_from_env
from repro.mapping.pipeline import MAPPER_NAMES

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def next_snapshot_path() -> str:
    taken = [
        int(m.group(1))
        for name in os.listdir(REPO_ROOT)
        if (m := re.fullmatch(r"BENCH_(\d+)\.json", name))
    ]
    return os.path.join(REPO_ROOT, f"BENCH_{max(taken, default=0) + 1}.json")


def main(argv) -> str:
    out_path = argv[1] if len(argv) > 1 else next_snapshot_path()
    # Fail on an unwritable destination *before* the minutes-long sweep,
    # without leaving a stray empty snapshot behind if the sweep dies.
    existed = os.path.exists(out_path)
    with open(out_path, "a"):
        pass
    try:
        profile = profile_from_env(default="ci")
        cache = WorkloadCache(profile)
        result = run_fig2(profile, cache)
    except BaseException:
        if not existed:
            os.unlink(out_path)
        raise

    per_procs = {
        str(procs): {a: result.times[(procs, a)] for a in MAPPER_NAMES}
        for procs in result.proc_counts
    }
    overall = {
        a: geometric_mean([result.times[(p, a)] for p in result.proc_counts])
        for a in MAPPER_NAMES
    }
    snapshot = {
        "profile": profile.name,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "geo_mean_map_time_s": overall,
        "geo_mean_map_time_s_by_procs": per_procs,
        # Shared-artifact reuse during the sweep (MappingService batching).
        "artifact_cache": {
            ns: {"hits": s.hits, "misses": s.misses, "size": s.size}
            for ns, s in cache.artifacts.stats().items()
        },
    }
    with open(out_path, "w") as fh:
        json.dump(snapshot, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path}")
    for a in MAPPER_NAMES:
        print(f"  {a:>5s}: {overall[a] * 1e3:8.2f} ms")
    return out_path


if __name__ == "__main__":
    main(sys.argv)
