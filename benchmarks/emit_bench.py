"""Emit a perf snapshot (``BENCH_<n>.json``) of per-algorithm map times.

Runs the Figure 3 harness sweep (the Figure 2 runs carry the timing
data) on the profile selected by ``REPRO_PROFILE`` (default ``ci``) and
writes geometric-mean mapping times per algorithm — overall and per
processor count — so the repo's performance trajectory is tracked commit
over commit.

Since the parallel execution engine the snapshot also carries a
``batch_throughput`` section: the same Fig. 3 sweep expressed as one
request list and pushed through ``MappingService.map_batch`` on every
backend (``serial`` reference, ``thread``/``process`` at several worker
counts), reporting requests/sec and the speedup over sequential
execution.  Each measurement runs on a fresh service (cold caches) so
the backends compete on equal footing.

Since the serving layer the section additionally carries a
``persistent`` block: the sweep served *repeatedly* through one
long-lived :class:`~repro.api.pool.ExecutorPool` (fresh front-end
service per batch, pool + store kept hot), reporting per-batch and
amortized wall time — the number a job-launch-time mapping service
actually pays.  The sweep itself includes the HIER/SFC families next
to the paper's seven algorithms, and ``cpus`` records the *usable*
(affinity-respecting) CPU count so snapshots from quota-limited
containers read correctly.

Since the network front end the snapshot also carries a ``serving``
section (measured by ``benchmarks/serve_load.py``): closed-loop client
load against the TCP server under nominal provisioning, under forced
overload (admission-control shedding) and as a synchronized identical
burst (request coalescing), with exact p50/p95/p99 latency per phase.
``compare_bench.py --gate-tail`` gates on its structural invariants.

Usage::

    PYTHONPATH=src python benchmarks/emit_bench.py [output.json]

The default output name is ``BENCH_<n>.json`` in the repository root,
where ``<n>`` is one past the highest existing snapshot index.
``benchmarks/compare_bench.py`` diffs two snapshots and fails on large
geo-mean regressions (the scheduled CI job runs it against the latest
committed snapshot).
"""

from __future__ import annotations

import json
import os
import platform
import re
import sys
import time

import serve_load

from repro.analysis.stats import geometric_mean
from repro.api.cache import ArtifactCache
from repro.api.executor import default_workers
from repro.api.pool import ExecutorPool
from repro.api.service import MappingService
from repro.experiments.fig2 import run_fig2, sweep_requests
from repro.experiments.harness import WorkloadCache
from repro.experiments.profiles import profile_from_env
from repro.mapping.pipeline import FAMILY_MAPPER_NAMES, MAPPER_NAMES

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Pool widths measured for the thread/process backends.
WORKER_COUNTS = (2, 4)

#: Batches served through one persistent pool per measurement; batch 1
#: pays spawn + warm-up, the rest show the amortized steady state.
PERSISTENT_BATCHES = 3

#: Snapshot sweep: the paper's seven algorithms + the registered
#: families, so HIER/SFC get Figure 3 entries commit over commit.
BENCH_MAPPERS = MAPPER_NAMES + FAMILY_MAPPER_NAMES


def next_snapshot_path() -> str:
    taken = [
        int(m.group(1))
        for name in os.listdir(REPO_ROOT)
        if (m := re.fullmatch(r"BENCH_(\d+)\.json", name))
    ]
    return os.path.join(REPO_ROOT, f"BENCH_{max(taken, default=0) + 1}.json")


def measure_batch_throughput(profile, cache: WorkloadCache) -> dict:
    """Requests/sec of the sweep per backend, on fresh (cold) services.

    ``sweep_requests`` is the same constructor ``run_fig2`` maps with,
    so the throughput numbers describe exactly the sweep the map-time
    section times.  The spawn-per-call backends pay pool spawn + store
    warm-up on every batch; the ``persistent`` block amortizes both
    over :data:`PERSISTENT_BATCHES` repeats through one
    :class:`ExecutorPool` (fresh front-end service each batch, pool and
    store kept hot — the serving layer's steady state).
    """
    requests = sweep_requests(profile, cache, mappers=BENCH_MAPPERS)

    def run(backend: str, workers) -> dict:
        service = MappingService()
        t0 = time.perf_counter()
        responses = service.map_batch(requests, backend=backend, workers=workers)
        elapsed = time.perf_counter() - t0
        assert len(responses) == len(requests) * len(BENCH_MAPPERS)
        return {
            "elapsed_s": elapsed,
            "requests_per_s": len(requests) / elapsed,
        }

    out = {"requests": len(requests), "algorithms_per_request": len(BENCH_MAPPERS)}
    out["serial"] = run("serial", None)
    serial_s = out["serial"]["elapsed_s"]
    for backend in ("thread", "process"):
        out[backend] = {}
        for workers in WORKER_COUNTS:
            m = run(backend, workers)
            m["speedup_vs_serial"] = serial_s / m["elapsed_s"]
            out[backend][str(workers)] = m

    out["persistent"] = {}
    for backend in ("thread", "process"):
        out["persistent"][backend] = {}
        for workers in WORKER_COUNTS:
            per_batch = []
            with ExecutorPool(backend, workers=workers) as pool:
                for _ in range(PERSISTENT_BATCHES):
                    service = MappingService(
                        cache=ArtifactCache(store=pool.store), pool=pool
                    )
                    t0 = time.perf_counter()
                    responses = service.map_batch(requests)
                    per_batch.append(time.perf_counter() - t0)
                    assert len(responses) == len(requests) * len(BENCH_MAPPERS)
            amortized = sum(per_batch) / len(per_batch)
            spawn_ref = out[backend][str(workers)]["elapsed_s"]
            out["persistent"][backend][str(workers)] = {
                "batches": PERSISTENT_BATCHES,
                "per_batch_s": per_batch,
                "first_batch_s": per_batch[0],
                "warm_batch_s": min(per_batch[1:]),
                "amortized_elapsed_s": amortized,
                "requests_per_s": len(requests) / amortized,
                "speedup_vs_serial": serial_s / amortized,
                # vs paying spawn + cold store on every batch (same
                # backend, same width) — the serving layer's headline.
                "speedup_vs_spawn_per_call": spawn_ref / amortized,
            }
    return out


def main(argv) -> str:
    out_path = argv[1] if len(argv) > 1 else next_snapshot_path()
    # Fail on an unwritable destination *before* the minutes-long sweep,
    # without leaving a stray empty snapshot behind if the sweep dies.
    existed = os.path.exists(out_path)
    with open(out_path, "a"):
        pass
    try:
        profile = profile_from_env(default="ci")
        cache = WorkloadCache(profile)
        result = run_fig2(profile, cache, mappers=BENCH_MAPPERS)
        throughput = measure_batch_throughput(profile, cache)
        serving = serve_load.measure_serving()
    except BaseException:
        if not existed:
            os.unlink(out_path)
        raise

    per_procs = {
        str(procs): {a: result.times[(procs, a)] for a in BENCH_MAPPERS}
        for procs in result.proc_counts
    }
    overall = {
        a: geometric_mean([result.times[(p, a)] for p in result.proc_counts])
        for a in BENCH_MAPPERS
    }
    snapshot = {
        "profile": profile.name,
        "python": platform.python_version(),
        "machine": platform.machine(),
        # Parallel-backend speedups are bounded by this: a 1-CPU host
        # can only show engine overhead, not scaling.  Usable CPUs
        # (cgroup/affinity-aware), not the host's physical count.
        "cpus": default_workers(),
        "cpus_total": os.cpu_count(),
        "geo_mean_map_time_s": overall,
        "geo_mean_map_time_s_by_procs": per_procs,
        # map_batch requests/sec per backend (parallel execution engine).
        "batch_throughput": throughput,
        # Network front end: tail latency under nominal/overload load
        # plus the coalescing burst (benchmarks/serve_load.py).
        "serving": serving,
        # Shared-artifact reuse during the sweep (MappingService batching).
        "artifact_cache": {
            ns: {"hits": s.hits, "misses": s.misses, "size": s.size}
            for ns, s in cache.artifacts.stats().items()
        },
    }
    with open(out_path, "w") as fh:
        json.dump(snapshot, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path}")
    for a in BENCH_MAPPERS:
        print(f"  {a:>6s}: {overall[a] * 1e3:8.2f} ms")
    print(
        f"  batch: {throughput['requests']} requests, "
        f"serial {throughput['serial']['elapsed_s']:.2f} s"
    )
    for backend in ("thread", "process"):
        for workers, m in throughput[backend].items():
            print(
                f"    {backend}@{workers}: {m['elapsed_s']:.2f} s "
                f"({m['speedup_vs_serial']:.2f}x, "
                f"{m['requests_per_s']:.2f} req/s)"
            )
    for backend in ("thread", "process"):
        for workers, m in throughput["persistent"][backend].items():
            print(
                f"    persistent {backend}@{workers}: "
                f"{m['amortized_elapsed_s']:.2f} s/batch amortized "
                f"(first {m['first_batch_s']:.2f} s, warm "
                f"{m['warm_batch_s']:.2f} s, "
                f"{m['speedup_vs_spawn_per_call']:.2f}x vs spawn-per-call)"
            )
    print("  serving:")
    serve_load._print_summary(serving)
    return out_path


if __name__ == "__main__":
    main(sys.argv)
